//! The streaming `Engine`: the production entry point of the crate.
//!
//! The paper's detector is inherently *online* — a passive monitor
//! watches frames and must flag devices per 5-minute detection window
//! (§V-A) — so the production API is frame-at-a-time, not batch.
//! [`Engine`] is a builder-configured facade over the whole
//! ingest → window → match path: push every [`CapturedFrame`] once, in
//! capture order, and receive typed [`Event`]s as detection windows
//! close. Matching runs through the same tiled `f32` SIMD sweep
//! ([`ReferenceDb::match_tile`]) as the batch paths, incrementally, one
//! window at a time, with one reused [`MatchScratch`] — no end-of-trace
//! sweep and no whole-trace buffering.
//!
//! `Engine` runs **one** network parameter. The paper's headline results
//! combine all five, and [`MultiEngine`] is the production entry point
//! for that: a single fused frame parse ([`crate::FusedExtractor`])
//! feeding all five parameters on one shared window clock, with
//! per-parameter *and* fused (weighted-average) scores per event — see
//! the [`multi`] module docs.
//!
//! Both engines are frame-driven *and* clock-driven: windows normally
//! seal when a later frame arrives, and [`Engine::advance_to`] /
//! [`Engine::tick`] seal them on wall clock instead, so a channel that
//! goes quiet cannot stall the final decision.
//!
//! # Lifecycle
//!
//! An engine is in one of three phases ([`EnginePhase`]):
//!
//! * **Training** — entered with [`EngineBuilder::train_for`]: frames
//!   enroll devices into a [`SignatureBuilder`]. When the configured
//!   duration elapses (on the stream's own clock), the learned devices
//!   are enrolled into a [`ReferenceDb`], the database is frozen
//!   ([`ReferenceDb::freeze`]), one [`Event::Enrolled`] fires per
//!   device, and the engine moves to detection. A training phase that
//!   enrolls nobody degrades to an all-[`Event::NewDevice`] detector
//!   rather than killing a live capture session.
//! * **Detecting** — entered directly with [`EngineBuilder::reference`]
//!   (the database is frozen on entry), or from training. Frames build
//!   per-device candidate signatures inside sliding detection windows;
//!   when a frame lands past the current window's end, the window seals
//!   and every qualifying candidate is matched against the reference:
//!   [`Event::Match`] for enrolled devices, [`Event::NewDevice`] for
//!   strangers (scored too — "who does this newcomer most resemble" is
//!   the MAC-randomisation tracking question), then one
//!   [`Event::WindowClosed`] terminator.
//! * **Finished** — after [`Engine::finish`] seals the trailing window.
//!   `finish()` is idempotent: a second call returns no events.
//!
//! # Degraded captures
//!
//! Real monitor paths lose, reorder, duplicate and truncate frames. By
//! default both engines keep the strict historical contract — frames
//! must arrive in capture order ([`EngineError::NonMonotonicFrame`])
//! and are trusted verbatim — but a [`ResilienceConfig`] (set via
//! [`EngineBuilder::resilience`]) relaxes it explicitly:
//!
//! * [`LateFramePolicy::Drop`] counts and discards late frames instead
//!   of erroring; [`LateFramePolicy::Reorder`] re-sequences frames
//!   shuffled within a bounded horizon through a watermark buffer, so
//!   the engine sees capture order again (bit-identical events to the
//!   in-order stream, property-tested);
//! * duplicate suppression and a runt-size gate drop re-delivered and
//!   truncated frames before they can poison signatures;
//! * every dropped frame is accounted for in [`EngineHealth`]
//!   ([`Engine::health`]), so ingest-side counters reconcile exactly
//!   with capture-side fault statistics.
//!
//! The fused [`MultiEngine`] adds graceful degradation on top: a fusion
//! quorum ([`ResilienceConfig::fusion_quorum`]) lets it fuse over the
//! parameters that survived a sparse window, marking the event with the
//! parameters that were missing. See the [`resilience`] module docs.
//!
//! # Overload & supervision
//!
//! [`ResilienceConfig`] protects against degraded *frames*; the
//! [`ingest`] module protects against degraded *flow*. An
//! [`IngestPipeline`] owns either engine on a supervised worker behind
//! a bounded ring: an [`OverloadPolicy`] sheds (and counts) frames a
//! burst submits faster than the sweep drains; `catch_unwind` isolates
//! a frame whose sweep panics into a capped [`Quarantine`] buffer and
//! restarts the worker; a stall watchdog drives [`Engine::tick`] on a
//! wall-clock deadline so a silent source cannot stall window
//! decisions; and an [`EventSequencer`] keeps delivered events in
//! submission order — bit-identical to synchronous [`Engine::observe`]
//! under [`OverloadPolicy::Block`] with no faults (property-tested).
//! Shed and quarantined frames reconcile exactly through
//! [`EngineHealth::conserves`]:
//! `seen = delivered + dropped + shed + quarantined + pending`.
//!
//! # MAC randomization & linking
//!
//! Both engines key everything on the claimed transmitter address —
//! which modern clients rotate precisely to defeat that keying. The
//! [`linker`] module closes the loop: a [`RotationLinker`] consumes
//! sightings (an address plus the per-parameter signatures observed
//! under it — exactly what [`Event::NewDevice`] /
//! [`MultiEvent::FusedNewDevice`](multi::MultiEvent::FusedNewDevice)
//! carry, see [`RotationLinker::observe_event`] /
//! [`RotationLinker::observe_multi`]) and chains rotated addresses
//! back to stable [`IdentityId`]s: exact MAC bindings first
//! (universally-administered addresses bypass the gallery entirely),
//! then a fused sweep of per-parameter identity galleries through the
//! pruned [`ReferenceDb::match_topk`] path, with accept-threshold +
//! ambiguity-margin gating and TTL/capacity eviction. Every decision
//! is a typed [`LinkEvent`] and the [`LinkerStats`] counters obey a
//! conservation law (`sightings = linked + new_identities +
//! ambiguous`) — see the [`linker`] module docs.
//!
//! # Example
//!
//! ```
//! use wifiprint_core::engine::{Engine, Event};
//! use wifiprint_core::{EvalConfig, NetworkParameter};
//! use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
//! use wifiprint_radiotap::CapturedFrame;
//!
//! let mut cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
//!     .with_min_observations(20);
//! cfg.window = Nanos::from_secs(1);
//! let mut engine = Engine::builder()
//!     .config(cfg)
//!     .train_for(Nanos::from_secs(2))
//!     .build()
//!     .expect("valid engine configuration");
//!
//! // One station sending every 10 ms: 2 s of training, 3 s of detection.
//! let sta = MacAddr::from_index(1);
//! let ap = MacAddr::from_index(2);
//! let mut events = Vec::new();
//! for i in 0..500u64 {
//!     let f = Frame::data_to_ds(sta, ap, ap, 400);
//!     let cap = CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_millis(10 * (i + 1)), -50);
//!     events.extend(engine.observe(&cap).expect("in-order frame"));
//! }
//! events.extend(engine.finish().expect("finish once"));
//!
//! assert!(matches!(events[0], Event::Enrolled { device, .. } if device == sta));
//! let matches = events.iter().filter(|e| matches!(e, Event::Match { .. })).count();
//! assert!(matches >= 3, "one match per closed detection window");
//! ```

pub mod ingest;
pub mod linker;
pub mod multi;
pub mod resilience;

pub use ingest::{
    EventSequencer, IngestConfig, IngestHandle, IngestPipeline, IngestReport, IngestStats,
    OverloadPolicy, Quarantine, Quarantined, StreamEngine, SubmitOutcome,
};
pub use linker::{
    enroll_signatures, IdentityId, LinkEvent, LinkerConfig, LinkerStats, RotationLinker,
};
pub use multi::{MultiConfig, MultiEngine, MultiEngineBuilder, MultiEvent, ParameterDecision};
pub use resilience::{
    EngineHealth, LateFramePolicy, ResilienceConfig, MIN_PLAUSIBLE_FRAME_SIZE,
};

use resilience::IngestFront;

use std::collections::BTreeMap;
use std::fmt;

use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_radiotap::CapturedFrame;

use crate::config::EvalConfig;
use crate::error::CoreError;
use crate::matching::{MatchOutcome, MatchScratch, ReferenceDb, MATCH_TILE};
use crate::signature::{Signature, SignatureBuilder};
use crate::windows::{CandidateWindow, WindowedSignatures};

/// A failure of the streaming ingest facade.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// [`EngineBuilder::build`] without an [`EngineBuilder::config`].
    MissingConfig,
    /// [`EngineBuilder::build`] with neither a pre-learned
    /// [`EngineBuilder::reference`] nor an online
    /// [`EngineBuilder::train_for`] phase: the engine would have nothing
    /// to match against and no way to learn.
    MissingReference,
    /// [`EngineBuilder::build`] with *both* a reference database and a
    /// training phase — it is ambiguous which should win.
    ConflictingReference,
    /// A frame older than its predecessor was observed. Frames must
    /// arrive in capture order (monitor taps and pcap files both
    /// guarantee this); reordered input would silently corrupt window
    /// attribution, so under the default
    /// [`LateFramePolicy::Reject`] it is rejected instead.
    /// [`ResilienceConfig`] selects more tolerant policies for degraded
    /// captures ([`LateFramePolicy::Drop`] /
    /// [`LateFramePolicy::Reorder`]).
    NonMonotonicFrame {
        /// Timestamp of the previously observed frame.
        last: Nanos,
        /// The offending earlier timestamp.
        got: Nanos,
    },
    /// [`Engine::observe`], [`Engine::advance_to`] or [`Engine::tick`]
    /// after [`Engine::finish`] sealed the session.
    Finished,
    /// A frame inside an [`Engine::observe_all`] /
    /// [`MultiEngine::observe_all`] batch failed; `index` is its
    /// position in the batch, so callers can resume after it or skip
    /// it.
    Batch {
        /// Zero-based position of the failing frame in the batch.
        index: usize,
        /// The underlying per-frame failure.
        source: Box<EngineError>,
    },
    /// The supervised ingest front failed outside its panic isolation:
    /// the worker thread could not be spawned, or it died in a way the
    /// supervisor could not contain (a supervision bug, not a poison
    /// frame — poison frames are quarantined, never surfaced as
    /// errors).
    Supervisor {
        /// What the supervisor observed.
        reason: String,
    },
    /// A data-level failure from the underlying primitives.
    Core(CoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MissingConfig => write!(f, "engine builder needs a config"),
            EngineError::MissingReference => {
                write!(f, "engine builder needs a reference database or a training phase")
            }
            EngineError::ConflictingReference => {
                write!(f, "engine builder got both a reference database and a training phase")
            }
            EngineError::NonMonotonicFrame { last, got } => write!(
                f,
                "frame at {} ns arrived after one at {} ns; frames must be in capture order",
                got.as_nanos(),
                last.as_nanos()
            ),
            EngineError::Finished => write!(f, "engine session is already finished"),
            EngineError::Batch { index, source } => {
                write!(f, "frame #{index} of batch: {source}")
            }
            EngineError::Supervisor { reason } => {
                write!(f, "ingest supervisor failure: {reason}")
            }
            EngineError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Batch { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

/// A typed notification emitted by [`Engine::observe`] /
/// [`Engine::finish`].
///
/// Per closed window the order is: one [`Event::Match`] or
/// [`Event::NewDevice`] per qualifying candidate (ascending device
/// address), then exactly one [`Event::WindowClosed`] terminator —
/// consumers that batch per window can flush on it. [`Event::Enrolled`]
/// events (ascending address) precede all window events.
#[derive(Debug, Clone)]
pub enum Event {
    /// A device's signature entered the reference database at the end of
    /// the training phase.
    Enrolled {
        /// The enrolled device.
        device: MacAddr,
        /// Observations backing its reference signature.
        observations: u64,
    },
    /// An *enrolled* device produced a qualifying candidate signature in
    /// the window that just closed.
    Match {
        /// Index of the closed detection window.
        window: usize,
        /// The candidate device (its claimed source address).
        device: MacAddr,
        /// Algorithm 1's similarity vector against every reference —
        /// `view.best()` is the identification-test argmax,
        /// `view.above_threshold(t)` the similarity-test set.
        view: MatchOutcome,
    },
    /// A device *not* in the reference database produced a qualifying
    /// candidate signature.
    NewDevice {
        /// Index of the closed detection window.
        window: usize,
        /// The unknown device's claimed source address.
        device: MacAddr,
        /// The candidate signature itself, handed over so callers can
        /// enroll it (track-then-enroll) without rebuilding it.
        signature: Signature,
        /// Similarities against the existing references — the closest
        /// one is who this "new" device most behaves like (the paper's
        /// §VII privacy scenario: re-identifying rotated MAC addresses).
        /// Empty when stranger scoring is disabled
        /// ([`EngineBuilder::score_unknown`]).
        view: MatchOutcome,
    },
    /// Terminator: the window sealed and all its candidate events (if
    /// any) have been emitted.
    WindowClosed {
        /// Index of the closed detection window.
        window: usize,
        /// Qualifying candidates the window produced.
        candidates: usize,
        /// How many of them were enrolled devices ([`Event::Match`]).
        known: usize,
        /// How many were strangers ([`Event::NewDevice`]).
        unknown: usize,
    },
}

/// Which stage of its lifecycle an [`Engine`] is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePhase {
    /// Accumulating the reference database from the stream.
    Training,
    /// Matching per-window candidates against the frozen reference.
    Detecting,
    /// [`Engine::finish`] sealed the session.
    Finished,
}

/// Configures and validates an [`Engine`]; obtained from
/// [`Engine::builder`].
#[derive(Debug)]
pub struct EngineBuilder {
    config: Option<EvalConfig>,
    reference: Option<ReferenceDb>,
    train_duration: Option<Nanos>,
    score_unknown: bool,
    resilience: ResilienceConfig,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            config: None,
            reference: None,
            train_duration: None,
            score_unknown: true,
            resilience: ResilienceConfig::default(),
        }
    }
}

impl EngineBuilder {
    /// Sets the evaluation configuration (parameter, bins, filter,
    /// observation floor, window length, similarity measure). Required.
    #[must_use]
    pub fn config(mut self, config: EvalConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Starts the engine directly in the detection phase against a
    /// pre-learned reference database (frozen on entry). Mutually
    /// exclusive with [`EngineBuilder::train_for`].
    #[must_use]
    pub fn reference(mut self, db: ReferenceDb) -> Self {
        self.reference = Some(db);
        self
    }

    /// Starts the engine with an online enrollment phase: the first
    /// `duration` of the stream (measured from its first frame) trains
    /// the reference database, which is then frozen for detection.
    /// Mutually exclusive with [`EngineBuilder::reference`].
    #[must_use]
    pub fn train_for(mut self, duration: Nanos) -> Self {
        self.train_duration = Some(duration);
        self
    }

    /// Whether [`Event::NewDevice`] candidates are scored against the
    /// reference matrix (default `true`). Scoring strangers answers
    /// "who does this newcomer most resemble" — the MAC-randomisation
    /// tracking question — but costs one full reference sweep per
    /// stranger per window; consumers that only *count* new devices
    /// (e.g. the accuracy pipeline) can turn it off, in which case
    /// `NewDevice.view` is empty.
    #[must_use]
    pub fn score_unknown(mut self, score: bool) -> Self {
        self.score_unknown = score;
        self
    }

    /// Sets the degraded-capture resilience configuration (late-frame
    /// policy, duplicate suppression, runt gate; see
    /// [`ResilienceConfig`]). Defaults to the strict historical
    /// behavior: late frames rejected, nothing gated.
    #[must_use]
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// * [`EngineError::MissingConfig`] without a config;
    /// * [`EngineError::MissingReference`] with neither reference nor
    ///   training phase, [`EngineError::ConflictingReference`] with both;
    /// * [`EngineError::Core`]([`CoreError::EmptyDatabase`]) for an
    ///   empty reference database;
    /// * [`EngineError::Core`]([`CoreError::InvalidConfig`]) for a
    ///   config that cannot drive an evaluation (zero-length window,
    ///   empty bins, zero-length training phase).
    pub fn build(self) -> Result<Engine, EngineError> {
        let cfg = self.config.ok_or(EngineError::MissingConfig)?;
        cfg.validate()?;
        let score_unknown = self.score_unknown;
        let phase = match (self.reference, self.train_duration) {
            (Some(_), Some(_)) => return Err(EngineError::ConflictingReference),
            (None, None) => return Err(EngineError::MissingReference),
            (Some(mut db), None) => {
                if db.is_empty() {
                    return Err(CoreError::EmptyDatabase.into());
                }
                db.freeze();
                Phase::Detecting { db, windows: WindowedSignatures::new(&cfg) }
            }
            (None, Some(duration)) => {
                if duration == Nanos::ZERO {
                    return Err(CoreError::InvalidConfig {
                        reason: "training phase must be longer than zero",
                    }
                    .into());
                }
                Phase::Training { builder: SignatureBuilder::new(&cfg), duration }
            }
        };
        Ok(Engine {
            cfg,
            phase,
            score_unknown,
            scratch: MatchScratch::new(),
            origin: None,
            front: IngestFront::new(self.resilience),
            frames: 0,
            train_frames: 0,
            windows_closed: 0,
        })
    }
}

/// Internal lifecycle state (the public projection is [`EnginePhase`]).
// One instance per engine; boxing the (sharded) database to shrink the
// enum would only add a pointer chase to the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Phase {
    Training { builder: SignatureBuilder, duration: Nanos },
    Detecting { db: ReferenceDb, windows: WindowedSignatures },
    Finished { db: Option<ReferenceDb> },
}

/// The streaming ingest → window → match facade (see the [module
/// docs](self)).
#[derive(Debug)]
pub struct Engine {
    cfg: EvalConfig,
    phase: Phase,
    /// See [`EngineBuilder::score_unknown`].
    score_unknown: bool,
    /// Reused across every window: matching stays allocation-free in the
    /// steady state.
    scratch: MatchScratch,
    /// Timestamp of the first observed frame; anchors the training
    /// boundary (detection windows re-anchor at the first detection
    /// frame, like the batch pipeline's validation split).
    origin: Option<Nanos>,
    /// The resilience gatekeeper: owns the monotonicity watermark, the
    /// reorder buffer and the ingest-health counters.
    front: IngestFront,
    frames: u64,
    train_frames: u64,
    windows_closed: u64,
}

impl Engine {
    /// Starts configuring an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Processes one captured frame, returning the events it triggered
    /// (usually none: events fire when a detection window closes or the
    /// training phase ends).
    ///
    /// # Errors
    ///
    /// * [`EngineError::NonMonotonicFrame`] for a frame older than its
    ///   predecessor under the default [`LateFramePolicy::Reject`] (the
    ///   engine state is unchanged; the frame may be re-sent in order —
    ///   the other policies drop or re-sequence late frames instead,
    ///   counting them in [`Engine::health`]);
    /// * [`EngineError::Finished`] after [`Engine::finish`];
    /// * [`EngineError::Core`] when ending the training phase fails for
    ///   a reason other than an empty enrollment (which instead degrades
    ///   to an empty, all-`NewDevice` reference).
    pub fn observe(&mut self, frame: &CapturedFrame) -> Result<Vec<Event>, EngineError> {
        if matches!(self.phase, Phase::Finished { .. }) {
            return Err(EngineError::Finished);
        }
        let delivered = self.front.admit(frame)?;
        let mut events = Vec::new();
        if let Some(frame) = delivered {
            self.ingest(&frame, &mut events)?;
        }
        Ok(events)
    }

    /// Processes one in-order frame the ingest front delivered: training
    /// accumulation or window building, sealing windows a later frame
    /// closes.
    fn ingest(&mut self, frame: &CapturedFrame, events: &mut Vec<Event>) -> Result<(), EngineError> {
        let origin = *self.origin.get_or_insert(frame.t_end);
        self.frames += 1;
        if let Phase::Training { builder, duration } = &mut self.phase {
            if frame.t_end.saturating_sub(origin) < *duration {
                self.train_frames += 1;
                builder.push(frame);
                return Ok(());
            }
            // First frame past the boundary: enroll, freeze, switch to
            // detection, then treat this frame as the first detection
            // frame below.
            self.end_training(events)?;
        }

        let Phase::Detecting { db, windows } = &mut self.phase else {
            unreachable!("ingest is never called on a finished engine");
        };
        if let Some(sealed) = windows.push(frame) {
            let candidates = windows.drain_sealed();
            let window = SealedWindowArgs { db, cfg: &self.cfg, score_unknown: self.score_unknown };
            close_window(&window, &mut self.scratch, sealed, candidates, events);
            self.windows_closed += 1;
        }
        Ok(())
    }

    /// [`Engine::observe`] over a frame sequence, concatenating the
    /// events.
    ///
    /// # Errors
    ///
    /// The first per-frame error, wrapped in [`EngineError::Batch`] with
    /// the failing frame's position in the batch, so callers can resume
    /// after it or skip it. Events from frames already processed are
    /// lost, so prefer per-frame calls when partial results matter.
    pub fn observe_all<'a>(
        &mut self,
        frames: impl IntoIterator<Item = &'a CapturedFrame>,
    ) -> Result<Vec<Event>, EngineError> {
        let mut events = Vec::new();
        for (index, frame) in frames.into_iter().enumerate() {
            match self.observe(frame) {
                Ok(mut ev) => events.append(&mut ev),
                Err(source) => {
                    return Err(EngineError::Batch { index, source: Box::new(source) })
                }
            }
        }
        Ok(events)
    }

    /// Advances the engine's clock to wall-clock time `t` **without a
    /// frame** — the event-driven close for quiet channels. Windows
    /// normally seal when a *later frame* arrives; on a silent channel
    /// that later frame may never come, stalling the open window's
    /// decision indefinitely. `advance_to(t)` asserts that the capture
    /// clock has reached `t` (same clock domain as the frame timestamps)
    /// and emits exactly the events a frame at `t` would have triggered,
    /// minus the frame: the training phase ends when `t` passes its
    /// boundary, and an open detection window whose end lies at or
    /// before `t` seals and scores.
    ///
    /// A tick at or before the newest frame's timestamp is a no-op
    /// (monitor wall clocks may lag the capture path slightly); a tick
    /// *ahead* of the stream advances the monotonicity floor, so frames
    /// older than `t` are subsequently rejected as
    /// [`EngineError::NonMonotonicFrame`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Finished`] after [`Engine::finish`], or
    /// [`EngineError::Core`] from ending the training phase.
    pub fn advance_to(&mut self, t: Nanos) -> Result<Vec<Event>, EngineError> {
        if matches!(self.phase, Phase::Finished { .. }) {
            return Err(EngineError::Finished);
        }
        let mut events = Vec::new();
        if self.front.last_t().is_some_and(|last| t <= last) {
            return Ok(events);
        }
        // Under a reorder policy, buffered frames at or before `t` are
        // now inside the watermark: deliver them first so they land in
        // their proper windows, then raise the floor to `t`.
        for frame in self.front.release_until(t) {
            self.ingest(&frame, &mut events)?;
        }
        if let Phase::Training { duration, .. } = &self.phase {
            // The training boundary is anchored at the first frame; with
            // no frame yet there is nothing the clock can conclude.
            let Some(origin) = self.origin else { return Ok(events) };
            if t.saturating_sub(origin) < *duration {
                return Ok(events);
            }
            self.end_training(&mut events)?;
        }
        let Phase::Detecting { db, windows } = &mut self.phase else {
            unreachable!("advance_to handled Training and Finished above");
        };
        if let Some(sealed) = windows.advance_to(t) {
            let candidates = windows.drain_sealed();
            let window = SealedWindowArgs { db, cfg: &self.cfg, score_unknown: self.score_unknown };
            close_window(&window, &mut self.scratch, sealed, candidates, &mut events);
            self.windows_closed += 1;
        }
        Ok(events)
    }

    /// Forces a decision on the still-open detection window *now*:
    /// advances the clock to the window's own end (see
    /// [`Engine::advance_to`]), sealing and scoring it immediately. A
    /// no-op while training (the training boundary needs a wall-clock
    /// timestamp, which a bare tick does not carry) or when no window is
    /// open.
    ///
    /// # Errors
    ///
    /// [`EngineError::Finished`] after [`Engine::finish`].
    pub fn tick(&mut self) -> Result<Vec<Event>, EngineError> {
        if matches!(self.phase, Phase::Finished { .. }) {
            return Err(EngineError::Finished);
        }
        let end = match &self.phase {
            Phase::Detecting { windows, .. } => windows.current_end(),
            _ => None,
        };
        match end {
            Some(t) => self.advance_to(t),
            None => Ok(Vec::new()),
        }
    }

    /// Ends the session: seals the still-open trailing window (emitting
    /// its events), or — when the stream never outlived the training
    /// phase — ends training and emits the [`Event::Enrolled`] events,
    /// which makes a training-only run the *enrollment* entry point:
    /// finish, then take the database with [`Engine::into_reference`].
    ///
    /// Under a reorder policy, frames still pending in the buffer are
    /// delivered (in timestamp order) before the trailing window seals.
    ///
    /// Idempotent: a second call returns no events (there is nothing
    /// left to seal) rather than an error — only `observe`,
    /// `advance_to` and `tick` reject a finished session.
    ///
    /// # Errors
    ///
    /// [`EngineError::Core`] from ending the training phase.
    pub fn finish(&mut self) -> Result<Vec<Event>, EngineError> {
        let mut events = Vec::new();
        if matches!(self.phase, Phase::Finished { .. }) {
            return Ok(events);
        }
        for frame in self.front.drain() {
            self.ingest(&frame, &mut events)?;
        }
        if matches!(self.phase, Phase::Training { .. }) {
            self.end_training(&mut events)?;
        }
        let Phase::Detecting { db, windows } =
            std::mem::replace(&mut self.phase, Phase::Finished { db: None })
        else {
            unreachable!("finish handled Training and Finished above");
        };
        // Force-seal the trailing window. Like a mid-stream seal, it
        // emits its WindowClosed terminator even when no candidate
        // qualified — but only if a detection frame ever opened it.
        let trailing = windows.current_index();
        let candidates = windows.finish();
        if let Some(sealed) = trailing {
            let window = SealedWindowArgs { db: &db, cfg: &self.cfg, score_unknown: self.score_unknown };
            close_window(&window, &mut self.scratch, sealed, candidates, &mut events);
            self.windows_closed += 1;
        }
        self.phase = Phase::Finished { db: Some(db) };
        Ok(events)
    }

    /// The engine's lifecycle phase.
    #[must_use]
    pub fn phase(&self) -> EnginePhase {
        match self.phase {
            Phase::Training { .. } => EnginePhase::Training,
            Phase::Detecting { .. } => EnginePhase::Detecting,
            Phase::Finished { .. } => EnginePhase::Finished,
        }
    }

    /// The evaluation configuration the engine runs.
    #[must_use]
    pub fn config(&self) -> &EvalConfig {
        &self.cfg
    }

    /// The (frozen) reference database, once one exists — `None` while
    /// still training or after a poisoned training transition.
    #[must_use]
    pub fn reference(&self) -> Option<&ReferenceDb> {
        match &self.phase {
            Phase::Training { .. } => None,
            Phase::Detecting { db, .. } => Some(db),
            Phase::Finished { db } => db.as_ref(),
        }
    }

    /// Consumes the engine, handing over the reference database (`None`
    /// while still training or after a poisoned training transition).
    #[must_use]
    pub fn into_reference(self) -> Option<ReferenceDb> {
        match self.phase {
            Phase::Training { .. } => None,
            Phase::Detecting { db, .. } => Some(db),
            Phase::Finished { db } => db,
        }
    }

    /// Frames delivered to the engine core so far (training +
    /// detection). Under a tolerant [`ResilienceConfig`] this excludes
    /// frames the ingest front dropped ([`Engine::health`]) and frames
    /// still pending in the reorder buffer.
    #[must_use]
    pub fn frames_observed(&self) -> u64 {
        self.frames
    }

    /// Frames that fell into the training phase.
    #[must_use]
    pub fn train_frames(&self) -> u64 {
        self.train_frames
    }

    /// Detection windows closed so far.
    #[must_use]
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Ingest-health counters: frames seen, deduplicated, gated as
    /// corrupt, dropped late, re-sequenced. With the default (strict)
    /// [`ResilienceConfig`] every counter except
    /// [`EngineHealth::frames_seen`] stays zero.
    #[must_use]
    pub fn health(&self) -> EngineHealth {
        self.front.health
    }

    /// The resilience configuration the engine runs.
    #[must_use]
    pub fn resilience(&self) -> &ResilienceConfig {
        self.front.config()
    }

    /// Frames admitted but still waiting in the reorder buffer (always 0
    /// outside [`LateFramePolicy::Reorder`]).
    #[must_use]
    pub fn pending_frames(&self) -> usize {
        self.front.pending_frames()
    }

    /// Training → detection: enroll the learned devices, freeze, emit
    /// [`Event::Enrolled`]s. An enrollment that qualified no device
    /// degrades to an empty (frozen) reference — the engine keeps
    /// running and flags everything as new — while other core failures
    /// poison the engine (phase becomes `Finished`) and propagate.
    fn end_training(&mut self, events: &mut Vec<Event>) -> Result<(), EngineError> {
        let Phase::Training { builder, .. } =
            std::mem::replace(&mut self.phase, Phase::Finished { db: None })
        else {
            unreachable!("end_training is only called while training");
        };
        let signatures = match builder.finish() {
            Ok(map) => map,
            Err(CoreError::NoQualifiedDevices { .. }) => BTreeMap::new(),
            Err(e) => return Err(e.into()),
        };
        // The online-trained reference uses the configured shard layout
        // (pre-learned references keep whatever layout they were built
        // with).
        let mut db = ReferenceDb::with_config(self.cfg.match_config);
        for (device, signature) in signatures {
            events.push(Event::Enrolled { device, observations: signature.observation_count() });
            db.insert(device, signature)?;
        }
        db.freeze();
        self.phase = Phase::Detecting { db, windows: WindowedSignatures::new(&self.cfg) };
        Ok(())
    }
}

/// The per-window context [`close_window`] needs from the engine.
struct SealedWindowArgs<'a> {
    db: &'a ReferenceDb,
    cfg: &'a EvalConfig,
    score_unknown: bool,
}

/// Matches one sealed window's candidates against the reference in
/// [`MATCH_TILE`]-wide tiles (each reference row is loaded once per
/// tile) and emits the per-candidate events plus the terminator. With
/// `score_unknown` off, strangers skip the sweep entirely and carry an
/// empty view.
fn close_window(
    args: &SealedWindowArgs<'_>,
    scratch: &mut MatchScratch,
    window: usize,
    candidates: Vec<CandidateWindow>,
    events: &mut Vec<Event>,
) {
    let SealedWindowArgs { db, cfg, score_unknown } = *args;
    let scored: Vec<bool> =
        candidates.iter().map(|c| score_unknown || db.contains(&c.device)).collect();
    let mut views = Vec::with_capacity(candidates.len());
    {
        // Tile only the candidates that need scoring, keeping the tiles
        // full even when strangers are interleaved with enrolled devices.
        let to_score: Vec<&Signature> = candidates
            .iter()
            .zip(&scored)
            .filter_map(|(c, &s)| s.then_some(&c.signature))
            .collect();
        let mut outcomes = Vec::with_capacity(to_score.len());
        for chunk in to_score.chunks(MATCH_TILE) {
            let tile = db.match_tile(chunk, cfg.measure, scratch);
            outcomes.extend(tile.views().map(|v| v.to_outcome()));
        }
        let mut outcomes = outcomes.into_iter();
        for &s in &scored {
            views.push(if s {
                outcomes.next().expect("one outcome per scored candidate")
            } else {
                MatchOutcome::empty()
            });
        }
    }
    let total = candidates.len();
    let mut known = 0usize;
    for (cand, view) in candidates.into_iter().zip(views) {
        if db.contains(&cand.device) {
            known += 1;
            events.push(Event::Match { window, device: cand.device, view });
        } else {
            events.push(Event::NewDevice {
                window,
                device: cand.device,
                signature: cand.signature,
                view,
            });
        }
    }
    events.push(Event::WindowClosed { window, candidates: total, known, unknown: total - known });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetworkParameter;
    use crate::similarity::SimilarityMeasure;
    use wifiprint_ieee80211::{Frame, FrameKind, Rate};

    fn cfg(window_secs: u64, min_obs: u64) -> EvalConfig {
        let mut cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize)
            .with_min_observations(min_obs);
        cfg.window = Nanos::from_secs(window_secs);
        cfg
    }

    fn frame(from: u64, t_us: u64, payload: usize) -> CapturedFrame {
        let sta = MacAddr::from_index(from);
        let ap = MacAddr::from_index(99);
        let f = Frame::data_to_ds(sta, ap, ap, payload);
        CapturedFrame::from_frame(&f, Rate::R24M, Nanos::from_micros(t_us), -55)
    }

    fn reference_db(cfg: &EvalConfig) -> ReferenceDb {
        let mut db = ReferenceDb::new();
        for (i, size) in [(1u64, 200.0), (2, 1200.0)] {
            let mut sig = Signature::new();
            for _ in 0..50 {
                sig.record(FrameKind::Data, size, cfg);
            }
            db.insert(MacAddr::from_index(i), sig).unwrap();
        }
        db
    }

    #[test]
    fn builder_rejects_incomplete_or_conflicting_setups() {
        assert!(matches!(Engine::builder().build(), Err(EngineError::MissingConfig)));
        assert!(matches!(
            Engine::builder().config(cfg(10, 1)).build(),
            Err(EngineError::MissingReference)
        ));
        let c = cfg(10, 1);
        assert!(matches!(
            Engine::builder()
                .config(c.clone())
                .reference(reference_db(&c))
                .train_for(Nanos::from_secs(5))
                .build(),
            Err(EngineError::ConflictingReference)
        ));
        assert!(matches!(
            Engine::builder().config(c.clone()).reference(ReferenceDb::new()).build(),
            Err(EngineError::Core(CoreError::EmptyDatabase))
        ));
        assert!(matches!(
            Engine::builder().config(c.clone()).train_for(Nanos::ZERO).build(),
            Err(EngineError::Core(CoreError::InvalidConfig { .. }))
        ));
        let mut zero_window = c;
        zero_window.window = Nanos::ZERO;
        assert!(matches!(
            Engine::builder().config(zero_window).train_for(Nanos::from_secs(5)).build(),
            Err(EngineError::Core(CoreError::InvalidConfig { .. }))
        ));
    }

    #[test]
    fn reference_mode_matches_per_window() {
        let c = cfg(1, 5);
        let mut engine =
            Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        assert_eq!(engine.phase(), EnginePhase::Detecting);
        assert!(engine.reference().unwrap().is_frozen());

        // Device 1 sends its signature size in windows 0 and 1; a
        // stranger (device 7) appears in window 1.
        let mut events = Vec::new();
        for i in 0..10u64 {
            events.extend(engine.observe(&frame(1, 1_000 + i * 10_000, 176)).unwrap());
        }
        assert!(events.is_empty(), "window 0 still open");
        for i in 0..10u64 {
            events.extend(engine.observe(&frame(1, 1_000_000 + i * 10_000, 176)).unwrap());
            events.extend(engine.observe(&frame(7, 1_001_000 + i * 10_000, 176)).unwrap());
        }
        // Window 0 sealed: one Match (device 1) + terminator.
        assert_eq!(events.len(), 2);
        let Event::Match { window: 0, device, view } = &events[0] else {
            panic!("expected Match, got {:?}", events[0]);
        };
        assert_eq!(*device, MacAddr::from_index(1));
        assert_eq!(view.best().unwrap().0, MacAddr::from_index(1));
        assert!(matches!(
            events[1],
            Event::WindowClosed { window: 0, candidates: 1, known: 1, unknown: 0 }
        ));

        // finish() seals window 1 with both devices.
        let tail = engine.finish().unwrap();
        assert_eq!(engine.phase(), EnginePhase::Finished);
        assert_eq!(tail.len(), 3);
        assert!(matches!(&tail[0], Event::Match { window: 1, device, .. }
            if *device == MacAddr::from_index(1)));
        let Event::NewDevice { window: 1, device, signature, view } = &tail[1] else {
            panic!("expected NewDevice, got {:?}", tail[1]);
        };
        assert_eq!(*device, MacAddr::from_index(7));
        assert_eq!(signature.observation_count(), 10);
        // The stranger sent device 1's frame size, so it resembles
        // device 1 most.
        assert_eq!(view.best().unwrap().0, MacAddr::from_index(1));
        assert!(matches!(
            tail[2],
            Event::WindowClosed { window: 1, candidates: 2, known: 1, unknown: 1 }
        ));
        assert_eq!(engine.windows_closed(), 2);
    }

    #[test]
    fn training_transition_enrolls_freezes_and_detects() {
        let c = cfg(1, 5);
        let mut engine =
            Engine::builder().config(c).train_for(Nanos::from_secs(2)).build().unwrap();
        assert_eq!(engine.phase(), EnginePhase::Training);
        assert!(engine.reference().is_none());

        let mut events = Vec::new();
        // Two devices during training (2 s), then device 1 again.
        for i in 0..20u64 {
            events.extend(engine.observe(&frame(1, 1_000 + i * 50_000, 300)).unwrap());
            events.extend(engine.observe(&frame(2, 2_000 + i * 50_000, 900)).unwrap());
        }
        assert!(events.is_empty());
        assert_eq!(engine.phase(), EnginePhase::Training);

        // First frame past 2 s triggers enrollment (address order).
        let transition = engine.observe(&frame(1, 2_001_000, 300)).unwrap();
        assert_eq!(engine.phase(), EnginePhase::Detecting);
        assert_eq!(transition.len(), 2);
        assert!(matches!(&transition[0], Event::Enrolled { device, observations }
            if *device == MacAddr::from_index(1) && *observations == 20));
        assert!(matches!(&transition[1], Event::Enrolled { device, .. }
            if *device == MacAddr::from_index(2)));
        assert!(engine.reference().unwrap().is_frozen());
        assert_eq!(engine.train_frames(), 40);

        // Detection: device 1 fills the first detection window.
        for i in 1..10u64 {
            let got = engine.observe(&frame(1, 2_001_000 + i * 20_000, 300)).unwrap();
            assert!(got.is_empty());
        }
        let tail = engine.finish().unwrap();
        assert!(matches!(&tail[0], Event::Match { window: 0, device, view }
            if *device == MacAddr::from_index(1)
                && view.best().unwrap().0 == MacAddr::from_index(1)));
    }

    #[test]
    fn empty_training_degrades_to_new_device_detection() {
        // Nobody reaches the 50-observation floor during training.
        let c = cfg(1, 50);
        let mut engine =
            Engine::builder().config(c).train_for(Nanos::from_secs(1)).build().unwrap();
        engine.observe(&frame(1, 0, 300)).unwrap();
        let transition = engine.observe(&frame(1, 1_000_100, 300)).unwrap();
        assert!(transition.is_empty(), "no Enrolled events");
        assert_eq!(engine.phase(), EnginePhase::Detecting);
        assert!(engine.reference().unwrap().is_empty());

        // A chatty device in detection is flagged as new, with an empty
        // similarity view.
        for i in 1..60u64 {
            engine.observe(&frame(1, 1_000_100 + i * 10_000, 300)).unwrap();
        }
        let tail = engine.finish().unwrap();
        assert!(matches!(&tail[0], Event::NewDevice { device, view, .. }
            if *device == MacAddr::from_index(1) && view.best().is_none()));
    }

    #[test]
    fn training_only_session_is_the_enrollment_entry_point() {
        let c = cfg(10, 5);
        let mut engine =
            Engine::builder().config(c).train_for(Nanos::from_secs(3600)).build().unwrap();
        for i in 0..10u64 {
            engine.observe(&frame(4, 1_000 + i * 1_000, 500)).unwrap();
        }
        let events = engine.finish().unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], Event::Enrolled { device, observations: 10 }
            if *device == MacAddr::from_index(4)));
        let db = engine.into_reference().expect("reference after finish");
        assert!(db.is_frozen());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn score_unknown_off_skips_the_stranger_sweep_but_keeps_events() {
        let c = cfg(1, 3);
        let db = reference_db(&c);
        let frames: Vec<CapturedFrame> = (0..40u64)
            .map(|i| frame(i % 4 + 1, 1_000 + i * 20_000, 176)) // devices 1,2 enrolled; 3,4 strangers
            .collect();

        let run = |score: bool| {
            let mut engine = Engine::builder()
                .config(c.clone())
                .reference(db.snapshot())
                .score_unknown(score)
                .build()
                .unwrap();
            let mut events = engine.observe_all(&frames).unwrap();
            events.extend(engine.finish().unwrap());
            events
        };
        let rich = run(true);
        let lean = run(false);
        assert_eq!(rich.len(), lean.len(), "same event sequence either way");
        for (a, b) in rich.iter().zip(&lean) {
            match (a, b) {
                // Enrolled devices score identically.
                (
                    Event::Match { view: va, device: da, window: wa },
                    Event::Match { view: vb, device: db_, window: wb },
                ) => {
                    assert_eq!((da, wa), (db_, wb));
                    assert_eq!(va.similarities(), vb.similarities());
                }
                // Strangers keep their event but lose the (costly) view.
                (
                    Event::NewDevice { view: va, device: da, .. },
                    Event::NewDevice { view: vb, device: db_, .. },
                ) => {
                    assert_eq!(da, db_);
                    assert!(!va.similarities().is_empty());
                    assert!(vb.similarities().is_empty());
                }
                (Event::WindowClosed { .. }, Event::WindowClosed { .. }) => {}
                other => panic!("event sequences diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn finish_terminates_a_candidateless_trailing_window() {
        // A trailing window whose devices all miss the observation floor
        // still gets its WindowClosed terminator from finish(), exactly
        // as a mid-stream seal would have emitted it.
        let c = cfg(1, 5);
        let mut engine =
            Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        for i in 0..3u64 {
            assert!(engine.observe(&frame(1, 1_000 + i * 10_000, 176)).unwrap().is_empty());
        }
        let tail = engine.finish().unwrap();
        assert_eq!(tail.len(), 1);
        assert!(matches!(
            tail[0],
            Event::WindowClosed { window: 0, candidates: 0, known: 0, unknown: 0 }
        ));
        assert_eq!(engine.windows_closed(), 1);

        // With no detection frame at all, there is no trailing window.
        let mut idle =
            Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        assert!(idle.finish().unwrap().is_empty());
        assert_eq!(idle.windows_closed(), 0);
    }

    #[test]
    fn advance_to_closes_a_window_exactly_like_a_later_frame() {
        // Streaming == batch parity, extended to tick-driven closes: a
        // bare advance_to(t) must emit the same sealed-window events a
        // frame at t would have (minus the frame's own contribution).
        let c = cfg(1, 5);
        let db = reference_db(&c);
        let mut by_frame =
            Engine::builder().config(c.clone()).reference(db.snapshot()).build().unwrap();
        let mut by_tick =
            Engine::builder().config(c.clone()).reference(db.snapshot()).build().unwrap();
        for i in 0..10u64 {
            let f = frame(1, 1_000 + i * 10_000, 176);
            assert!(by_frame.observe(&f).unwrap().is_empty());
            assert!(by_tick.observe(&f).unwrap().is_empty());
        }
        let later = Nanos::from_micros(2_500_000);
        let frame_events = by_frame.observe(&frame(2, 2_500_000, 176)).unwrap();
        let tick_events = by_tick.advance_to(later).unwrap();
        assert_eq!(frame_events.len(), tick_events.len());
        for (a, b) in frame_events.iter().zip(&tick_events) {
            match (a, b) {
                (
                    Event::Match { window: wa, device: da, view: va },
                    Event::Match { window: wb, device: db_, view: vb },
                ) => {
                    assert_eq!((wa, da), (wb, db_));
                    assert_eq!(va.similarities(), vb.similarities());
                }
                (Event::WindowClosed { window: wa, .. }, Event::WindowClosed { window: wb, .. }) => {
                    assert_eq!(wa, wb);
                }
                other => panic!("tick-driven close diverged: {other:?}"),
            }
        }
        assert_eq!(by_tick.windows_closed(), 1);
        // The tick advanced the monotonicity floor...
        assert!(matches!(
            by_tick.observe(&frame(1, 2_000_000, 176)),
            Err(EngineError::NonMonotonicFrame { .. })
        ));
        // ...a repeat tick is a no-op, and finish() does not re-close
        // the already-sealed trailing window.
        assert!(by_tick.advance_to(later).unwrap().is_empty());
        assert!(by_tick.finish().unwrap().is_empty());
    }

    #[test]
    fn advance_to_ends_an_elapsed_training_phase() {
        let c = cfg(1, 5);
        let mut engine =
            Engine::builder().config(c).train_for(Nanos::from_secs(2)).build().unwrap();
        for i in 0..20u64 {
            engine.observe(&frame(1, 1_000 + i * 50_000, 300)).unwrap();
        }
        assert_eq!(engine.phase(), EnginePhase::Training);
        // Before the boundary: still training. After: enrollment fires
        // from the clock alone, with no frame needed.
        assert!(engine.advance_to(Nanos::from_millis(1_500)).unwrap().is_empty());
        assert_eq!(engine.phase(), EnginePhase::Training);
        let events = engine.advance_to(Nanos::from_secs(3)).unwrap();
        assert_eq!(engine.phase(), EnginePhase::Detecting);
        assert!(matches!(&events[0], Event::Enrolled { device, observations: 20 }
            if *device == MacAddr::from_index(1)));
    }

    #[test]
    fn tick_forces_the_pending_window_decision() {
        let c = cfg(1, 5);
        let mut engine =
            Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        assert!(engine.tick().unwrap().is_empty(), "no open window yet");
        for i in 0..10u64 {
            engine.observe(&frame(1, 1_000 + i * 10_000, 176)).unwrap();
        }
        let events = engine.tick().unwrap();
        assert!(matches!(&events[0], Event::Match { window: 0, device, .. }
            if *device == MacAddr::from_index(1)));
        assert!(engine.tick().unwrap().is_empty(), "nothing further to seal");
        assert_eq!(engine.windows_closed(), 1);
    }

    #[test]
    fn finish_scores_the_trailing_partial_window() {
        // Regression (quiet-channel fix): frames in a window that never
        // saw a successor still produce their Match decision at
        // finish(), score and all.
        let c = cfg(1, 5);
        let db = reference_db(&c);
        let mut engine =
            Engine::builder().config(c.clone()).reference(db.snapshot()).build().unwrap();
        for i in 0..10u64 {
            assert!(engine.observe(&frame(1, 1_000 + i * 10_000, 176)).unwrap().is_empty());
        }
        let tail = engine.finish().unwrap();
        let Event::Match { window: 0, device, view } = &tail[0] else {
            panic!("expected a scored trailing-window Match, got {tail:?}");
        };
        assert_eq!(*device, MacAddr::from_index(1));
        assert_eq!(view.best().unwrap().0, MacAddr::from_index(1));
        assert!(matches!(
            tail[1],
            Event::WindowClosed { window: 0, candidates: 1, known: 1, unknown: 0 }
        ));
    }

    #[test]
    fn out_of_order_frames_are_rejected_without_corrupting_state() {
        let c = cfg(1, 1);
        let mut engine =
            Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        engine.observe(&frame(1, 5_000, 176)).unwrap();
        let err = engine.observe(&frame(1, 4_000, 176)).unwrap_err();
        assert!(matches!(err, EngineError::NonMonotonicFrame { .. }));
        assert!(err.to_string().contains("capture order"));
        // The engine keeps running; in-order frames still work.
        engine.observe(&frame(1, 6_000, 176)).unwrap();
        assert_eq!(engine.frames_observed(), 2);
    }

    #[test]
    fn finished_engine_rejects_further_use() {
        let c = cfg(1, 1);
        let mut engine =
            Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        engine.observe(&frame(1, 1_000, 176)).unwrap();
        let tail = engine.finish().unwrap();
        assert!(!tail.is_empty(), "first finish seals the trailing window");
        assert!(matches!(engine.observe(&frame(1, 2_000, 176)), Err(EngineError::Finished)));
        assert!(matches!(engine.advance_to(Nanos::from_secs(10)), Err(EngineError::Finished)));
        assert!(matches!(engine.tick(), Err(EngineError::Finished)));
        // finish() itself is idempotent: a second call has nothing left
        // to seal and returns no events (regression: it used to error).
        assert!(engine.finish().unwrap().is_empty());
        assert!(engine.finish().unwrap().is_empty());
        // The reference stays reachable after finish.
        assert!(engine.reference().is_some());
    }

    #[test]
    fn engine_decisions_equal_the_batch_sweep() {
        // The streaming path must produce exactly the batch path's
        // decisions: same windows, same candidates, same scores.
        let c = cfg(1, 3);
        let db = reference_db(&c);
        let frames: Vec<CapturedFrame> = (0..200u64)
            .map(|i| {
                let dev = i % 3 + 1; // devices 1, 2 and a stranger 3
                frame(dev, 10_000 + i * 17_000, 150 + 500 * dev as usize)
            })
            .collect();

        // Batch: windowed candidates, then one evaluate-style sweep.
        let mut windows = WindowedSignatures::new(&c);
        for f in &frames {
            windows.push(f);
        }
        let batch: Vec<CandidateWindow> = windows.finish();

        // Streaming: the engine, frame at a time.
        let mut engine =
            Engine::builder().config(c).reference(db.snapshot()).build().unwrap();
        let mut streamed = engine.observe_all(&frames).unwrap();
        streamed.append(&mut engine.finish().unwrap());

        let decisions: Vec<(usize, MacAddr, MatchOutcome)> = streamed
            .into_iter()
            .filter_map(|e| match e {
                Event::Match { window, device, view }
                | Event::NewDevice { window, device, view, .. } => Some((window, device, view)),
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), batch.len());
        let mut scratch = MatchScratch::new();
        for (cand, (window, device, view)) in batch.iter().zip(&decisions) {
            assert_eq!(cand.index, *window);
            assert_eq!(cand.device, *device);
            let want =
                db.match_signature_with(&cand.signature, SimilarityMeasure::Cosine, &mut scratch);
            assert_eq!(view.similarities(), want.similarities());
        }
    }

    #[test]
    fn observe_all_reports_the_failing_frame_index() {
        let c = cfg(10, 1);
        let mut engine = Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        let frames = vec![frame(1, 5_000, 176), frame(1, 6_000, 176), frame(1, 4_000, 176)];
        let err = engine.observe_all(&frames).unwrap_err();
        let EngineError::Batch { index, source } = err else {
            panic!("expected a batch error, got {err:?}");
        };
        assert_eq!(index, 2);
        assert!(matches!(*source, EngineError::NonMonotonicFrame { .. }));
        // The two good frames were processed; the caller can skip past
        // the bad frame and resume the stream.
        assert_eq!(engine.frames_observed(), 2);
        engine.observe(&frame(1, 7_000, 176)).unwrap();
    }

    #[test]
    fn advance_to_exactly_on_the_window_boundary_seals_it() {
        let c = cfg(1, 1);
        let mut engine =
            Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        for i in 0..5u64 {
            assert!(engine.observe(&frame(1, 1_000 + i * 10_000, 176)).unwrap().is_empty());
        }
        // The first window spans [1 ms, 1 ms + 1 s); its end boundary is
        // exclusive, so advancing exactly to it seals the window.
        let boundary = Nanos::from_micros(1_000) + Nanos::from_secs(1);
        let events = engine.advance_to(boundary).unwrap();
        assert!(
            matches!(events.last(), Some(Event::WindowClosed { window: 0, candidates: 1, .. })),
            "boundary tick seals window 0: {events:?}"
        );
        // A second advance to the very same t is a no-op — the window
        // cannot close twice.
        assert!(engine.advance_to(boundary).unwrap().is_empty());
        assert_eq!(engine.windows_closed(), 1);
        // A frame exactly at the boundary lands in the next window.
        assert!(engine.observe(&frame(1, 1_001_000, 176)).unwrap().is_empty());
        let tail = engine.finish().unwrap();
        assert!(matches!(tail.last(), Some(Event::WindowClosed { window: 1, .. })), "{tail:?}");
    }

    #[test]
    fn advance_inside_the_reorder_watermark_keeps_buffered_frames() {
        // A tick landing *inside* the reorder buffer's horizon flushes
        // only the frames at or before it; the rest stay pending and are
        // delivered (in order) by the final drain.
        let c = cfg(1, 1);
        let resilience = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 16 });
        let mut engine = Engine::builder()
            .config(c.clone())
            .reference(reference_db(&c))
            .resilience(resilience)
            .build()
            .unwrap();
        for t_us in [50_000u64, 10_000, 30_000, 70_000, 20_000] {
            assert!(engine.observe(&frame(1, t_us, 176)).unwrap().is_empty());
        }
        assert_eq!(engine.pending_frames(), 5);
        // Tick at 35 ms: flushes 10/20/30 ms, keeps 50/70 ms pending.
        assert!(engine.advance_to(Nanos::from_micros(35_000)).unwrap().is_empty());
        assert_eq!(engine.frames_observed(), 3);
        assert_eq!(engine.pending_frames(), 2);
        // A frame older than the raised watermark is now dropped late…
        assert!(engine.observe(&frame(1, 25_000, 176)).unwrap().is_empty());
        assert_eq!(engine.health().frames_late_dropped, 1);
        // …and the drain delivers the stragglers before the window seals.
        let tail = engine.finish().unwrap();
        assert_eq!(engine.frames_observed(), 5);
        assert_eq!(engine.pending_frames(), 0);
        assert!(
            matches!(tail.last(), Some(Event::WindowClosed { window: 0, candidates: 1, .. })),
            "{tail:?}"
        );
    }

    #[test]
    fn batch_error_names_the_frame_index_and_exposes_its_source() {
        let c = cfg(1, 1);
        let mut engine =
            Engine::builder().config(c.clone()).reference(reference_db(&c)).build().unwrap();
        // Frame #2 of the batch travels back in time; the strict default
        // policy rejects it as non-monotonic.
        let batch =
            [frame(1, 10_000, 176), frame(1, 20_000, 176), frame(1, 5_000, 176)];
        let err = engine.observe_all(&batch).unwrap_err();
        let EngineError::Batch { index, ref source } = err else {
            panic!("expected Batch, got {err:?}");
        };
        assert_eq!(index, 2);
        assert!(matches!(**source, EngineError::NonMonotonicFrame { .. }));
        // Display names the failing index and chains the inner message…
        let shown = err.to_string();
        assert!(shown.contains("frame #2"), "display: {shown}");
        assert!(shown.contains("capture order"), "display: {shown}");
        // …and std::error::Error::source() exposes the inner error for
        // error-chain walkers.
        let source = std::error::Error::source(&err).expect("batch has a source");
        assert!(source.to_string().contains("capture order"), "source: {source}");
    }
}
