//! The five network parameters (§III) and their extraction from a capture
//! stream (§IV-A).

use core::fmt;
use core::str::FromStr;

use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos};
use wifiprint_radiotap::CapturedFrame;

use crate::config::{FrameFilter, TxTimeEstimator};

/// The global network parameters the paper evaluates as fingerprint
/// candidates. All are observable passively with a standard wireless card.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NetworkParameter {
    /// The PHY rate each frame was sent at (Mb/s).
    TransmissionRate,
    /// The on-air frame size (bytes).
    FrameSize,
    /// The idle gap before the frame: `mtimeᵢ = (tᵢ − ttᵢ) − tᵢ₋₁` (µs).
    MediumAccessTime,
    /// The estimated time to transmit the frame: `ttᵢ = sizeᵢ/rateᵢ` (µs).
    TransmissionTime,
    /// The gap between ends of reception: `iᵢ = tᵢ − tᵢ₋₁` (µs).
    InterArrivalTime,
}

impl NetworkParameter {
    /// How many network parameters the paper defines.
    pub const COUNT: usize = 5;

    /// All five parameters, in the paper's presentation order.
    pub const ALL: [NetworkParameter; NetworkParameter::COUNT] = [
        NetworkParameter::TransmissionRate,
        NetworkParameter::FrameSize,
        NetworkParameter::MediumAccessTime,
        NetworkParameter::TransmissionTime,
        NetworkParameter::InterArrivalTime,
    ];

    /// This parameter's position in [`NetworkParameter::ALL`] — the slot
    /// a [`FusedObservation`] stores its value under.
    pub const fn index(self) -> usize {
        match self {
            NetworkParameter::TransmissionRate => 0,
            NetworkParameter::FrameSize => 1,
            NetworkParameter::MediumAccessTime => 2,
            NetworkParameter::TransmissionTime => 3,
            NetworkParameter::InterArrivalTime => 4,
        }
    }

    /// Human-readable name matching the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            NetworkParameter::TransmissionRate => "transmission rate",
            NetworkParameter::FrameSize => "frame size",
            NetworkParameter::MediumAccessTime => "medium access time",
            NetworkParameter::TransmissionTime => "transmission time",
            NetworkParameter::InterArrivalTime => "inter-arrival time",
        }
    }

    /// Kebab-case identifier used in persisted databases and CLI flags.
    pub const fn slug(self) -> &'static str {
        match self {
            NetworkParameter::TransmissionRate => "transmission-rate",
            NetworkParameter::FrameSize => "frame-size",
            NetworkParameter::MediumAccessTime => "medium-access-time",
            NetworkParameter::TransmissionTime => "transmission-time",
            NetworkParameter::InterArrivalTime => "inter-arrival-time",
        }
    }

    /// `true` for the parameters that need the previous frame's timestamp.
    pub const fn needs_history(self) -> bool {
        matches!(
            self,
            NetworkParameter::MediumAccessTime | NetworkParameter::InterArrivalTime
        )
    }
}

impl fmt::Display for NetworkParameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a [`NetworkParameter`] slug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetworkParameterError(String);

impl fmt::Display for ParseNetworkParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown network parameter {:?}", self.0)
    }
}

impl std::error::Error for ParseNetworkParameterError {}

impl FromStr for NetworkParameter {
    type Err = ParseNetworkParameterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        NetworkParameter::ALL
            .into_iter()
            .find(|p| p.slug() == s)
            .ok_or_else(|| ParseNetworkParameterError(s.to_owned()))
    }
}

/// One extracted parameter value, attributed to a device and frame type
/// (the paper's `pᵢ` added to `P^ftype(sᵢ)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The transmitting device `sᵢ`.
    pub device: MacAddr,
    /// The frame type the observation is grouped under.
    pub kind: FrameKind,
    /// The parameter value (µs, bytes or Mb/s depending on the parameter).
    pub value: f64,
    /// End-of-reception time of the observed frame.
    pub t_end: Nanos,
}

/// Streaming extractor turning captured frames into [`Observation`]s for
/// one network parameter.
///
/// Frames must be pushed in increasing `t_end` order (capture order). The
/// extractor implements the attribution rules of §IV-A / Fig. 1:
///
/// * frames without a transmitter address (ACK, CTS) yield no observation
///   but **do** advance the previous-frame timestamp used by the
///   inter-arrival and medium-access parameters;
/// * filtered-out frames likewise advance time without being reported.
///
/// # Example
///
/// ```
/// use wifiprint_core::{NetworkParameter, ParameterExtractor};
/// use wifiprint_radiotap::CapturedFrame;
/// use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
///
/// let sta = MacAddr::from_index(1);
/// let ap = MacAddr::from_index(9);
/// let mut ex = ParameterExtractor::new(NetworkParameter::InterArrivalTime);
///
/// let data = Frame::data_to_ds(sta, ap, ap, 100);
/// let f0 = CapturedFrame::from_frame(&data, Rate::R54M, Nanos::from_micros(1000), -40);
/// let ack = CapturedFrame::from_frame(&Frame::ack(sta), Rate::R24M, Nanos::from_micros(1050), -45);
/// let f2 = CapturedFrame::from_frame(&data, Rate::R54M, Nanos::from_micros(1800), -40);
///
/// assert!(ex.push(&f0).is_none());        // no previous frame yet
/// assert!(ex.push(&ack).is_none());       // anonymous sender: dropped...
/// let obs = ex.push(&f2).expect("observation");
/// assert_eq!(obs.value, 750.0);           // ...but its timestamp counts.
/// ```
#[derive(Debug, Clone)]
pub struct ParameterExtractor {
    param: NetworkParameter,
    estimator: TxTimeEstimator,
    filter: FrameFilter,
    prev_t_end: Option<Nanos>,
}

impl ParameterExtractor {
    /// An extractor with the paper's defaults (size/rate transmission-time
    /// estimator, no frame filtering).
    pub fn new(param: NetworkParameter) -> Self {
        Self::with_options(param, TxTimeEstimator::SizeOverRate, FrameFilter::default())
    }

    /// An extractor with an explicit estimator and frame filter.
    pub fn with_options(
        param: NetworkParameter,
        estimator: TxTimeEstimator,
        filter: FrameFilter,
    ) -> Self {
        ParameterExtractor { param, estimator, filter, prev_t_end: None }
    }

    /// The parameter being extracted.
    pub fn parameter(&self) -> NetworkParameter {
        self.param
    }

    /// Processes the next captured frame, returning an observation when the
    /// frame has a known sender, passes the filter, and the parameter is
    /// computable (history-based parameters need a predecessor).
    pub fn push(&mut self, frame: &CapturedFrame) -> Option<Observation> {
        let prev = self.prev_t_end.replace(frame.t_end);
        let sender = frame.transmitter?;
        if !self.filter.matches(frame) {
            return None;
        }
        let value = match self.param {
            NetworkParameter::TransmissionRate => frame.rate.mbps(),
            NetworkParameter::FrameSize => frame.size as f64,
            NetworkParameter::TransmissionTime => self.estimator.tx_time_micros(frame),
            NetworkParameter::InterArrivalTime => {
                let prev = prev?;
                micros_between(prev, frame.t_end)
            }
            NetworkParameter::MediumAccessTime => {
                let prev = prev?;
                micros_between(prev, frame.t_end) - self.estimator.tx_time_micros(frame)
            }
        };
        Some(Observation { device: sender, kind: frame.kind, value, t_end: frame.t_end })
    }

    /// Forgets the previous-frame timestamp (e.g. at a capture gap).
    pub fn reset_history(&mut self) {
        self.prev_t_end = None;
    }
}

fn micros_between(earlier: Nanos, later: Nanos) -> f64 {
    later.saturating_sub(earlier).as_micros_f64()
}

/// All five parameter values extracted from one captured frame — the
/// output of [`FusedExtractor::push`].
///
/// Values are indexed by [`NetworkParameter::index`]; a `None` slot means
/// the parameter was not computable for this frame (the history-based
/// parameters need a predecessor). The rate, size and transmission-time
/// slots are always populated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedObservation {
    /// The transmitting device `sᵢ`.
    pub device: MacAddr,
    /// The frame type the observations are grouped under.
    pub kind: FrameKind,
    /// End-of-reception time of the observed frame.
    pub t_end: Nanos,
    /// Parameter values, indexed by [`NetworkParameter::index`].
    pub values: [Option<f64>; NetworkParameter::COUNT],
}

impl FusedObservation {
    /// The value extracted for one parameter, if computable.
    pub fn value(&self, param: NetworkParameter) -> Option<f64> {
        self.values[param.index()]
    }

    /// Projects one parameter's slot into a standalone [`Observation`] —
    /// exactly what a single-parameter [`ParameterExtractor`] would have
    /// produced for this frame.
    pub fn observation(&self, param: NetworkParameter) -> Option<Observation> {
        self.value(param).map(|value| Observation {
            device: self.device,
            kind: self.kind,
            value,
            t_end: self.t_end,
        })
    }
}

/// Streaming extractor producing **all five** parameter observations from
/// a single pass over each captured frame.
///
/// The per-parameter [`ParameterExtractor`]s each keep their own
/// previous-frame timestamp and re-derive the shared quantities (the gap
/// to the predecessor, the transmission-time estimate) per parameter.
/// Running five of them — as the pre-`MultiEngine` pipeline did — parses
/// every frame five times. `FusedExtractor` keeps **one** timing history
/// and computes every parameter from it in one shot; a property test pins
/// its output to the five independent extractors, parameter by parameter.
///
/// Attribution rules are identical to [`ParameterExtractor`]: anonymous
/// frames (ACK, CTS) and filtered-out frames yield no observation but
/// still advance the previous-frame timestamp.
///
/// # Example
///
/// ```
/// use wifiprint_core::{FusedExtractor, NetworkParameter};
/// use wifiprint_radiotap::CapturedFrame;
/// use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
///
/// let sta = MacAddr::from_index(1);
/// let ap = MacAddr::from_index(9);
/// let mut ex = FusedExtractor::new();
///
/// let data = Frame::data_to_ds(sta, ap, ap, 100);
/// let f0 = CapturedFrame::from_frame(&data, Rate::R54M, Nanos::from_micros(1000), -40);
/// let f1 = CapturedFrame::from_frame(&data, Rate::R54M, Nanos::from_micros(1800), -40);
///
/// let first = ex.push(&f0).expect("known sender");
/// assert!(first.value(NetworkParameter::TransmissionRate).is_some());
/// assert!(first.value(NetworkParameter::InterArrivalTime).is_none()); // no history yet
/// let second = ex.push(&f1).expect("known sender");
/// assert_eq!(second.value(NetworkParameter::InterArrivalTime), Some(800.0));
/// ```
#[derive(Debug, Clone)]
pub struct FusedExtractor {
    estimator: TxTimeEstimator,
    filter: FrameFilter,
    prev_t_end: Option<Nanos>,
}

impl Default for FusedExtractor {
    fn default() -> Self {
        FusedExtractor::new()
    }
}

impl FusedExtractor {
    /// A fused extractor with the paper's defaults (size/rate
    /// transmission-time estimator, no frame filtering).
    pub fn new() -> Self {
        Self::with_options(TxTimeEstimator::SizeOverRate, FrameFilter::default())
    }

    /// A fused extractor with an explicit estimator and frame filter.
    ///
    /// The filter and estimator are shared by all five parameters — the
    /// point of fusing is that one decision per frame covers every
    /// projection of it.
    pub fn with_options(estimator: TxTimeEstimator, filter: FrameFilter) -> Self {
        FusedExtractor { estimator, filter, prev_t_end: None }
    }

    /// Processes the next captured frame, returning all computable
    /// parameter values when the frame has a known sender and passes the
    /// filter.
    pub fn push(&mut self, frame: &CapturedFrame) -> Option<FusedObservation> {
        let prev = self.prev_t_end.replace(frame.t_end);
        let sender = frame.transmitter?;
        if !self.filter.matches(frame) {
            return None;
        }
        // The shared quantities each single-parameter extractor would
        // re-derive: one transmission-time estimate, one predecessor gap.
        let tx_time = self.estimator.tx_time_micros(frame);
        let gap = prev.map(|p| micros_between(p, frame.t_end));
        let mut values = [None; NetworkParameter::COUNT];
        values[NetworkParameter::TransmissionRate.index()] = Some(frame.rate.mbps());
        values[NetworkParameter::FrameSize.index()] = Some(frame.size as f64);
        values[NetworkParameter::TransmissionTime.index()] = Some(tx_time);
        values[NetworkParameter::InterArrivalTime.index()] = gap;
        values[NetworkParameter::MediumAccessTime.index()] = gap.map(|g| g - tx_time);
        Some(FusedObservation { device: sender, kind: frame.kind, t_end: frame.t_end, values })
    }

    /// Forgets the previous-frame timestamp (e.g. at a capture gap, or at
    /// the training → detection hand-over where the single-parameter path
    /// starts a fresh extractor).
    pub fn reset_history(&mut self) {
        self.prev_t_end = None;
    }
}

/// Convenience: runs an extractor over a whole capture, collecting all
/// observations.
pub fn extract_all<'a, I>(param: NetworkParameter, frames: I) -> Vec<Observation>
where
    I: IntoIterator<Item = &'a CapturedFrame>,
{
    let mut ex = ParameterExtractor::new(param);
    frames.into_iter().filter_map(|f| ex.push(f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::{Frame, Rate};

    fn sta(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn data_frame(from: MacAddr, t_us: u64, size: usize, rate: Rate) -> CapturedFrame {
        let f = Frame::data_to_ds(from, sta(99), sta(99), size.saturating_sub(28));
        CapturedFrame::from_frame(&f, rate, Nanos::from_micros(t_us), -50)
    }

    #[test]
    fn figure_1_scenario() {
        // DATA(A) ACK DATA(A) ACK RTS(C) CTS — the paper's Fig. 1.
        let a = sta(1);
        let c = sta(3);
        let t = [1000u64, 1100, 1500, 1600, 2000, 2100];
        let f0 = data_frame(a, t[0], 500, Rate::R11M);
        let f1 = CapturedFrame::from_frame(&Frame::ack(a), Rate::R11M, Nanos::from_micros(t[1]), -50);
        let f2 = data_frame(a, t[2], 500, Rate::R11M);
        let f3 = CapturedFrame::from_frame(&Frame::ack(a), Rate::R11M, Nanos::from_micros(t[3]), -50);
        let f4 = CapturedFrame::from_frame(&Frame::rts(sta(9), c, 300), Rate::R2M, Nanos::from_micros(t[4]), -50);
        let f5 = CapturedFrame::from_frame(&Frame::cts(c, 200), Rate::R2M, Nanos::from_micros(t[5]), -50);

        let mut ex = ParameterExtractor::new(NetworkParameter::InterArrivalTime);
        let obs: Vec<_> = [&f0, &f1, &f2, &f3, &f4, &f5].into_iter().filter_map(|f| ex.push(f)).collect();

        // f0 has no predecessor; f1/f3/f5 are anonymous; so observations
        // come from f2 (A, vs ACK f1) and f4 (C, vs ACK f3).
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].device, a);
        assert_eq!(obs[0].value, (t[2] - t[1]) as f64);
        assert_eq!(obs[0].kind, FrameKind::Data);
        assert_eq!(obs[1].device, c);
        assert_eq!(obs[1].value, (t[4] - t[3]) as f64);
        assert_eq!(obs[1].kind, FrameKind::Rts);
    }

    #[test]
    fn rate_and_size_parameters() {
        let a = sta(1);
        let f = data_frame(a, 1000, 528, Rate::R5_5M);
        let mut rate_ex = ParameterExtractor::new(NetworkParameter::TransmissionRate);
        assert_eq!(rate_ex.push(&f).unwrap().value, 5.5);
        let mut size_ex = ParameterExtractor::new(NetworkParameter::FrameSize);
        assert_eq!(size_ex.push(&f).unwrap().value, f.size as f64);
    }

    #[test]
    fn transmission_time_uses_size_over_rate() {
        let a = sta(1);
        let f = data_frame(a, 1000, 528, Rate::R11M);
        let mut ex = ParameterExtractor::new(NetworkParameter::TransmissionTime);
        let obs = ex.push(&f).unwrap();
        assert!((obs.value - 8.0 * f.size as f64 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn medium_access_time_subtracts_tx_time() {
        let a = sta(1);
        let f0 = data_frame(a, 1000, 300, Rate::R54M);
        let f1 = data_frame(a, 1400, 300, Rate::R54M);
        let mut ex = ParameterExtractor::new(NetworkParameter::MediumAccessTime);
        assert!(ex.push(&f0).is_none()); // needs history
        let obs = ex.push(&f1).unwrap();
        let tt = 8.0 * f1.size as f64 / 54.0;
        assert!((obs.value - (400.0 - tt)).abs() < 1e-9);
    }

    #[test]
    fn measured_estimator_includes_plcp() {
        let a = sta(1);
        let f = data_frame(a, 1000, 300, Rate::R54M);
        let mut paper = ParameterExtractor::with_options(
            NetworkParameter::TransmissionTime,
            TxTimeEstimator::SizeOverRate,
            FrameFilter::default(),
        );
        let mut measured = ParameterExtractor::with_options(
            NetworkParameter::TransmissionTime,
            TxTimeEstimator::MeasuredAirTime,
            FrameFilter::default(),
        );
        let p = paper.push(&f).unwrap().value;
        let m = measured.push(&f).unwrap().value;
        assert!(m > p, "air time {m} must exceed size/rate {p} (PLCP overhead)");
    }

    #[test]
    fn filter_drops_but_advances_history() {
        let a = sta(1);
        let filter = FrameFilter { exclude_retries: true, ..FrameFilter::default() };
        let mut ex = ParameterExtractor::with_options(
            NetworkParameter::InterArrivalTime,
            TxTimeEstimator::SizeOverRate,
            filter,
        );
        let f0 = data_frame(a, 1000, 100, Rate::R54M);
        let mut retry = data_frame(a, 1500, 100, Rate::R54M);
        retry.retry = true;
        let f2 = data_frame(a, 2100, 100, Rate::R54M);
        assert!(ex.push(&f0).is_none());
        assert!(ex.push(&retry).is_none(), "retry filtered");
        let obs = ex.push(&f2).unwrap();
        // History advanced past the retry: 2100 - 1500, not 2100 - 1000.
        assert_eq!(obs.value, 600.0);
    }

    #[test]
    fn reset_history_clears_predecessor() {
        let a = sta(1);
        let mut ex = ParameterExtractor::new(NetworkParameter::InterArrivalTime);
        let f0 = data_frame(a, 1000, 100, Rate::R54M);
        let f1 = data_frame(a, 1200, 100, Rate::R54M);
        ex.push(&f0);
        ex.reset_history();
        assert!(ex.push(&f1).is_none());
    }

    #[test]
    fn labels_and_slugs_round_trip() {
        for p in NetworkParameter::ALL {
            assert_eq!(p.slug().parse::<NetworkParameter>().unwrap(), p);
            assert!(!p.label().is_empty());
        }
        assert!("bogus".parse::<NetworkParameter>().is_err());
    }

    #[test]
    fn parameter_indices_are_the_all_order() {
        for (i, p) in NetworkParameter::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn fused_extractor_matches_five_single_extractors_on_fig_1() {
        // The paper's Fig. 1 sequence again, this time checking that the
        // fused single-pass extraction projects to exactly what each
        // standalone extractor reports (the property test in
        // tests/proptests.rs covers arbitrary sequences).
        let a = sta(1);
        let c = sta(3);
        let frames = [
            data_frame(a, 1000, 500, Rate::R11M),
            CapturedFrame::from_frame(&Frame::ack(a), Rate::R11M, Nanos::from_micros(1100), -50),
            data_frame(a, 1500, 500, Rate::R11M),
            CapturedFrame::from_frame(&Frame::ack(a), Rate::R11M, Nanos::from_micros(1600), -50),
            CapturedFrame::from_frame(&Frame::rts(sta(9), c, 300), Rate::R2M, Nanos::from_micros(2000), -50),
            CapturedFrame::from_frame(&Frame::cts(c, 200), Rate::R2M, Nanos::from_micros(2100), -50),
        ];
        let mut fused = FusedExtractor::new();
        let mut singles: Vec<ParameterExtractor> =
            NetworkParameter::ALL.into_iter().map(ParameterExtractor::new).collect();
        for frame in &frames {
            let got = fused.push(frame);
            for (p, single) in NetworkParameter::ALL.into_iter().zip(&mut singles) {
                let want = single.push(frame);
                let projected = got.as_ref().and_then(|o| o.observation(p));
                assert_eq!(projected, want, "{p} diverged on frame {frame:?}");
            }
        }
    }

    #[test]
    fn fused_extractor_shares_the_filter_across_parameters() {
        let a = sta(1);
        let filter = FrameFilter { exclude_retries: true, ..FrameFilter::default() };
        let mut ex = FusedExtractor::with_options(TxTimeEstimator::SizeOverRate, filter);
        let f0 = data_frame(a, 1000, 100, Rate::R54M);
        let mut retry = data_frame(a, 1500, 100, Rate::R54M);
        retry.retry = true;
        let f2 = data_frame(a, 2100, 100, Rate::R54M);
        assert!(ex.push(&f0).is_some());
        assert!(ex.push(&retry).is_none(), "retry filtered for every parameter at once");
        let obs = ex.push(&f2).unwrap();
        // History advanced past the filtered retry, as in the single path.
        assert_eq!(obs.value(NetworkParameter::InterArrivalTime), Some(600.0));
    }

    #[test]
    fn fused_reset_history_clears_the_shared_predecessor() {
        let a = sta(1);
        let mut ex = FusedExtractor::new();
        ex.push(&data_frame(a, 1000, 100, Rate::R54M));
        ex.reset_history();
        let obs = ex.push(&data_frame(a, 1200, 100, Rate::R54M)).unwrap();
        assert_eq!(obs.value(NetworkParameter::InterArrivalTime), None);
        assert_eq!(obs.value(NetworkParameter::MediumAccessTime), None);
        assert!(obs.value(NetworkParameter::FrameSize).is_some());
    }

    #[test]
    fn extract_all_convenience() {
        let a = sta(1);
        let frames: Vec<_> =
            (0..5).map(|i| data_frame(a, 1000 + i * 300, 200, Rate::R24M)).collect();
        let obs = extract_all(NetworkParameter::InterArrivalTime, &frames);
        assert_eq!(obs.len(), 4);
        assert!(obs.iter().all(|o| o.value == 300.0));
    }
}
