//! Passive 802.11 device fingerprinting.
//!
//! This crate implements the fingerprinting method of **Neumann, Heen &
//! Onno, "An empirical study of passive 802.11 device fingerprinting"
//! (ICDCS workshops 2012)**: characterising a wireless device purely from
//! capture-header observables — no payload inspection, no active probing —
//! so that it works on encrypted (WPA) traffic and from networks the
//! monitor is not a member of.
//!
//! # Method overview
//!
//! 1. Five **network parameters** ([`NetworkParameter`]) are extracted per
//!    frame and attributed to the transmitting device (frames without a
//!    transmitter address — ACK, CTS — are dropped, §IV-A):
//!    transmission rate, frame size, medium access time, transmission time
//!    and frame inter-arrival time.
//! 2. Per device, per frame type, the values are binned into
//!    **percentage-frequency histograms** ([`Histogram`]); the set of
//!    weighted histograms is the device's **signature** ([`Signature`]).
//! 3. A candidate signature is matched against a [`ReferenceDb`] with the
//!    weighted **cosine similarity** of Algorithm 1 ([`matching`]) — a
//!    **sharded** structure-of-arrays `f32` store ([`MatchConfig`]:
//!    dominant-histogram locality bucketing, MAC-prefix fallback) driven
//!    by a runtime-dispatched SIMD dot kernel ([`kernel`]), scoring tiles
//!    of candidate windows per pass over the reference rows, with
//!    reusable [`MatchScratch`] buffers, batched and optionally parallel
//!    ([`batch`]). At large populations the pruned
//!    [`ReferenceDb::match_topk`] sweep skips every shard whose
//!    centroid/norm-bound summary cannot beat the current top-k, and
//!    [`ReferenceDb::match_topk_tile`] amortises one bound-ordered
//!    sweep over a whole tile of candidates. The store comes in two
//!    **precision tiers** ([`RowPrecision`]): the default `f32` rows,
//!    and a quantized `u8` tier (7-bit codes + per-row scale, exact
//!    integer dot kernels) that roughly quarters resident bytes per
//!    device — see the [`matching`] module docs
//!    ("Precision tiers") for the memory table and drift bounds
//!    ([`U8_SCORE_TOLERANCE`]).
//! 4. Accuracy is measured with the paper's two tests ([`metrics`]): the
//!    **similarity test** (threshold sweep → TPR/FPR curve → AUC) and the
//!    **identification test** (argmax → identification ratio at a target
//!    FPR).
//!
//! # The streaming engines
//!
//! The production entry point is the [`engine`] module. The fused
//! [`MultiEngine`] extracts **all five** parameters from one header
//! parse per frame ([`FusedExtractor`]), drives them off one shared
//! window clock ([`WindowClock`]), and combines their per-parameter
//! similarity vectors into a weighted-average fused score online
//! ([`fusion`]) — emitting typed [`MultiEvent`]s
//! ([`engine::MultiEvent::FusedMatch`],
//! [`engine::MultiEvent::FusedNewDevice`]) as detection windows close,
//! on traffic or on wall clock ([`MultiEngine::advance_to`] /
//! [`MultiEngine::tick`]). The single-parameter [`Engine`] keeps the
//! same shape for one-parameter deployments. The batch helpers above
//! remain as the engines' building blocks; failures are typed
//! ([`CoreError`] / [`engine::EngineError`]) rather than panics.
//!
//! # Example
//!
//! ```
//! use wifiprint_core::engine::{Engine, Event};
//! use wifiprint_core::{EvalConfig, NetworkParameter};
//! use wifiprint_radiotap::CapturedFrame;
//! use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
//!
//! // A toy "trace": one station sending data frames every ~800 µs.
//! let sta = MacAddr::from_index(1);
//! let ap = MacAddr::from_index(2);
//! let frames: Vec<CapturedFrame> = (0..200u64)
//!     .map(|i| {
//!         let f = Frame::data_to_ds(sta, ap, ap, 500);
//!         CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(800 * (i + 1)), -50)
//!     })
//!     .collect();
//!
//! // Enroll the station online: a training-only engine session.
//! let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
//! let mut engine = Engine::builder()
//!     .config(cfg)
//!     .train_for(Nanos::from_secs(3600))
//!     .build()
//!     .expect("valid configuration");
//! let mut events = engine.observe_all(&frames).expect("frames in capture order");
//! events.extend(engine.finish().expect("first finish"));
//! assert!(matches!(events[0], Event::Enrolled { device, .. } if device == sta));
//! let db = engine.into_reference().expect("trained reference");
//! assert!(db.get(&sta).is_some() && db.is_frozen());
//! ```

// `unsafe` is denied crate-wide and re-allowed in exactly one place: the
// SIMD dot kernels in [`kernel`], where every unsafe block carries a
// safety comment.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::pedantic)]
// Pedantic lints this crate opts out of, with reasons:
#![allow(
    // Histogram counts and bin indices stay far below 2^52; the hot
    // paths quantise f64 → f32 by design (see matching's module docs).
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    // Exact float compares are deliberate: 0.0 sentinels in the sweep
    // and bit-identical equivalence assertions in tests.
    clippy::float_cmp,
    // Getter-heavy API: forcing #[must_use] on ~170 accessors adds
    // noise without catching real bugs.
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    // Public items are intentionally re-exported from the crate root,
    // so module-qualified names repeat the module name.
    clippy::module_name_repetitions
)]

pub mod batch;
mod config;
mod db;
pub mod engine;
mod error;
pub mod fusion;
mod histogram;
pub mod kernel;
pub mod matching;
pub mod metrics;
mod params;
mod signature;
mod similarity;
mod windows;

pub use config::{default_bins, EvalConfig, FrameFilter, TxTimeEstimator};
pub use db::{load_db, load_db_with, save_db, DbCodecError};
pub use engine::{
    enroll_signatures, Engine, EngineBuilder, EngineError, EngineHealth, EnginePhase, Event,
    IdentityId, IngestConfig, IngestHandle, IngestPipeline, IngestReport, IngestStats,
    LateFramePolicy, LinkEvent, LinkerConfig, LinkerStats, MultiConfig, MultiEngine,
    MultiEngineBuilder, MultiEvent, OverloadPolicy, ParameterDecision, Quarantine, Quarantined,
    ResilienceConfig, RotationLinker, StreamEngine, SubmitOutcome, MIN_PLAUSIBLE_FRAME_SIZE,
};
pub use error::CoreError;
pub use fusion::{fuse_outcomes, FusedOutcome, FusionSpec};
pub use histogram::{BinSpec, Histogram, QuantizedRow};
pub use kernel::{IntKernelKind, KernelKind, MICRO_TILE, QUANT_MAX};
pub use matching::{
    MatchConfig, MatchOutcome, MatchScratch, MatchView, PruneStats, ReferenceDb, RowPrecision,
    ShardStrategy, TileView, DEFAULT_SHARDS, F32_SCORE_TOLERANCE, MATCH_TILE, U8_SCORE_TOLERANCE,
};
pub use metrics::{
    evaluate, CurvePoint, EvalOutcome, IdentOperatingPoint, MatchSet, SimilarityCurve,
};
pub use params::{
    extract_all, FusedExtractor, FusedObservation, NetworkParameter, Observation,
    ParameterExtractor,
};
pub use signature::{Signature, SignatureBuilder};
pub use similarity::SimilarityMeasure;
pub use windows::{CandidateWindow, WindowClock, WindowedSignatures};
