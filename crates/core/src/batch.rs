//! Batched execution with per-worker scratch state.
//!
//! The evaluation pipeline scores thousands of `(window, device)`
//! candidates against the same [`ReferenceDb`](crate::ReferenceDb); each
//! score needs a [`MatchScratch`](crate::MatchScratch) but the candidates
//! are independent. [`map_with_scratch`] captures that shape once: items
//! are mapped in order, each worker owns one scratch value, and — with the
//! `parallel` feature (on by default) — the batch is split into contiguous
//! chunks across OS threads via `std::thread::scope`.
//!
//! The parallel backend is deliberately plain `std::thread`: the build
//! environment for this workspace is offline, so `rayon` cannot be a
//! dependency. The function signature matches what a rayon-backed
//! implementation would expose, so swapping the backend later is local to
//! this module.

/// Maps `items` through `f` in order, giving each worker its own scratch
/// value from `init`.
///
/// Serial when the `parallel` feature is disabled, when the batch is
/// small, or when only one CPU is available; otherwise chunked across
/// threads. The output order always matches the input order.
pub fn map_with_scratch<T, S, U, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    #[cfg(feature = "parallel")]
    {
        map_with_workers(items, init, f, worker_count(items.len(), PER_ITEM_MIN_CHUNK))
    }
    #[cfg(not(feature = "parallel"))]
    {
        let mut scratch = init();
        items.iter().map(|item| f(&mut scratch, item)).collect()
    }
}

/// Maps `items` through `f` one **tile** (contiguous chunk of at most
/// `tile` items) at a time, flattening the per-tile outputs back into
/// item order.
///
/// This is the fan-out shape of the tiled matching engine
/// ([`ReferenceDb::match_tile`](crate::ReferenceDb::match_tile)): a tile
/// of candidate windows shares one pass over the reference rows, tiles
/// are independent, and — with the `parallel` feature — tiles are what
/// gets distributed across workers, each with its own scratch. Unlike the
/// per-item map, tiles are already coarse work units (a whole reference
/// sweep each), so they parallelize down to one tile per worker — this is
/// what lets a `MultiEngine` window close fan its five per-parameter
/// shard sweeps across cores. `f` must return exactly one output per
/// input item for the flattened order to line up (all callers in this
/// workspace do).
pub fn map_tiles_with_scratch<T, S, U, I, F>(
    items: &[T],
    tile: usize,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[T]) -> Vec<U> + Sync,
{
    let tiles: Vec<&[T]> = items.chunks(tile.max(1)).collect();
    #[cfg(feature = "parallel")]
    let nested =
        map_with_workers(&tiles, init, |scratch, chunk| f(scratch, chunk), worker_count(tiles.len(), 1));
    #[cfg(not(feature = "parallel"))]
    let nested = {
        let mut scratch = init();
        tiles.iter().map(|chunk| f(&mut scratch, chunk)).collect::<Vec<_>>()
    };
    nested.into_iter().flatten().collect()
}

/// [`map_with_scratch`] with an explicit worker count (tests force the
/// threaded path regardless of the host's CPU count).
#[cfg(feature = "parallel")]
fn map_with_workers<T, S, U, I, F>(items: &[T], init: I, f: F, workers: usize) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    if workers <= 1 || items.is_empty() {
        let mut scratch = init();
        return items.iter().map(|item| f(&mut scratch, item)).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(|| {
                    let mut scratch = init();
                    chunk.iter().map(|item| f(&mut scratch, item)).collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("batch worker panicked"));
        }
        out
    })
}

/// Minimum items per worker for the **per-item** map, so tiny batches
/// stay serial (tiled maps pass 1: each tile is already coarse).
#[cfg(feature = "parallel")]
const PER_ITEM_MIN_CHUNK: usize = 8;

/// Worker count for a batch: bounded by the CPU count (overridable with
/// `WIFIPRINT_THREADS`) and by a minimum per-worker chunk so batches too
/// small to amortise the thread scope stay serial.
#[cfg(feature = "parallel")]
fn worker_count(items: usize, min_chunk: usize) -> usize {
    let cpus = std::env::var("WIFIPRINT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    cpus.min(items / min_chunk.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = map_with_scratch(&items, || 0u64, |scratch, &x| {
            *scratch += 1;
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[cfg(feature = "parallel")]
    fn threaded_path_preserves_order_even_on_one_cpu() {
        // Force multiple workers regardless of the host's CPU count so
        // the chunked join path is exercised deterministically.
        let items: Vec<u64> = (0..257).collect();
        let out = map_with_workers(&items, || (), |(), &x| x + 1, 4);
        assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch() {
        let out = map_with_scratch(&[] as &[u8], || (), |(), _| 1u8);
        assert!(out.is_empty());
    }

    #[test]
    fn tiled_map_flattens_in_order() {
        let items: Vec<u32> = (0..23).collect();
        for tile in [1, 4, 8, 23, 100] {
            let out = map_tiles_with_scratch(&items, tile, || 0u32, |scratch, chunk| {
                *scratch += 1; // scratch survives across a worker's tiles
                assert!(chunk.len() <= tile);
                chunk.iter().map(|&x| x * 3).collect()
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "tile {tile}");
        }
        let empty = map_tiles_with_scratch(&[] as &[u8], 0, || (), |(), c| vec![0u8; c.len()]);
        assert!(empty.is_empty());
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // Single small batch ⇒ serial ⇒ one scratch counts every item.
        let items = [(); 7];
        let out = map_with_scratch(&items, || 0usize, |scratch, ()| {
            *scratch += 1;
            *scratch
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7]);
    }
}
