//! Detection windows: splitting a validation trace into fixed-length
//! windows and building one candidate signature per (window, device).
//!
//! The paper uses 5-minute detection windows (§V-A) and matches every
//! candidate device against the reference database in each window.

use std::collections::BTreeMap;

use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_radiotap::CapturedFrame;

use crate::config::EvalConfig;
use crate::params::ParameterExtractor;
use crate::signature::Signature;

/// One candidate signature: a device observed within one detection window.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateWindow {
    /// Zero-based window index (window `i` covers
    /// `[start + i·window, start + (i+1)·window)`).
    pub index: usize,
    /// The candidate device (source MAC address).
    pub device: MacAddr,
    /// The signature built from that device's frames in the window.
    pub signature: Signature,
}

/// Streaming builder of per-window candidate signatures.
///
/// Frames must be pushed in capture order. Windows are anchored at the
/// first frame's timestamp. Inter-arrival history is carried *across*
/// window boundaries (the monitor sees one continuous channel), but each
/// observation is attributed to the window containing its frame.
///
/// # Example
///
/// ```
/// use wifiprint_core::{EvalConfig, NetworkParameter, WindowedSignatures};
/// use wifiprint_radiotap::CapturedFrame;
/// use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
///
/// let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize)
///     .with_min_observations(2);
/// let mut windows = WindowedSignatures::new(&cfg);
/// let sta = MacAddr::from_index(1);
/// let ap = MacAddr::from_index(2);
/// // Two frames in window 0, two more 6 minutes later in window 1.
/// for t_us in [0u64, 1_000, 360_000_000, 360_001_000] {
///     let f = Frame::data_to_ds(sta, ap, ap, 100);
///     windows.push(&CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(t_us), -50));
/// }
/// let candidates = windows.finish();
/// assert_eq!(candidates.len(), 2);
/// assert_eq!(candidates[0].index, 0);
/// assert_eq!(candidates[1].index, 1);
/// ```
#[derive(Debug)]
pub struct WindowedSignatures {
    cfg: EvalConfig,
    extractor: ParameterExtractor,
    origin: Option<Nanos>,
    current_window: usize,
    current: BTreeMap<MacAddr, Signature>,
    finished: Vec<CandidateWindow>,
}

impl WindowedSignatures {
    /// A windowed builder using `cfg`'s parameter, filter, bins, window
    /// length and minimum observation count.
    pub fn new(cfg: &EvalConfig) -> Self {
        WindowedSignatures {
            cfg: cfg.clone(),
            extractor: ParameterExtractor::with_options(
                cfg.parameter,
                cfg.estimator,
                cfg.filter.clone(),
            ),
            origin: None,
            current_window: 0,
            current: BTreeMap::new(),
            finished: Vec::new(),
        }
    }

    /// Processes one captured frame.
    pub fn push(&mut self, frame: &CapturedFrame) {
        let origin = *self.origin.get_or_insert(frame.t_end);
        let window_len = self.cfg.window.as_nanos().max(1);
        let idx = (frame.t_end.saturating_sub(origin).as_nanos() / window_len) as usize;
        if idx != self.current_window {
            self.seal_current();
            self.current_window = idx;
        }
        if let Some(obs) = self.extractor.push(frame) {
            self.current.entry(obs.device).or_default().record(obs.kind, obs.value, &self.cfg);
        }
    }

    /// Processes a sequence of captured frames.
    pub fn extend(&mut self, frames: impl IntoIterator<Item = CapturedFrame>) {
        for f in frames {
            self.push(&f);
        }
    }

    fn seal_current(&mut self) {
        let min = self.cfg.min_observations;
        let window = self.current_window;
        for (device, signature) in std::mem::take(&mut self.current) {
            if signature.observation_count() >= min {
                self.finished.push(CandidateWindow { index: window, device, signature });
            }
        }
    }

    /// Finalises the last window and returns all candidate signatures in
    /// (window, device) order.
    pub fn finish(mut self) -> Vec<CandidateWindow> {
        self.seal_current();
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetworkParameter;
    use wifiprint_ieee80211::{Frame, Rate};

    fn cfg(window_secs: u64, min_obs: u64) -> EvalConfig {
        let mut cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize)
            .with_min_observations(min_obs);
        cfg.window = Nanos::from_secs(window_secs);
        cfg
    }

    fn frame(from: u64, t_us: u64) -> CapturedFrame {
        let sta = MacAddr::from_index(from);
        let ap = MacAddr::from_index(99);
        let f = Frame::data_to_ds(sta, ap, ap, 200);
        CapturedFrame::from_frame(&f, Rate::R24M, Nanos::from_micros(t_us), -55)
    }

    #[test]
    fn windows_are_anchored_at_first_frame() {
        let c = cfg(10, 1);
        let mut w = WindowedSignatures::new(&c);
        // First frame at t=1000 s: still window 0.
        w.push(&frame(1, 1_000_000_000));
        w.push(&frame(1, 1_000_000_100));
        // 9.9 s later: same window; 10.1 s later: next window.
        w.push(&frame(1, 1_009_900_000));
        w.push(&frame(1, 1_010_100_000));
        let candidates = w.finish();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0].index, 0);
        assert_eq!(candidates[0].signature.observation_count(), 3);
        assert_eq!(candidates[1].index, 1);
        assert_eq!(candidates[1].signature.observation_count(), 1);
    }

    #[test]
    fn devices_are_separated_within_a_window() {
        let c = cfg(60, 1);
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 100));
        w.push(&frame(2, 200));
        w.push(&frame(1, 300));
        let candidates = w.finish();
        assert_eq!(candidates.len(), 2);
        let by_dev: BTreeMap<_, _> =
            candidates.iter().map(|c| (c.device, c.signature.observation_count())).collect();
        assert_eq!(by_dev[&MacAddr::from_index(1)], 2);
        assert_eq!(by_dev[&MacAddr::from_index(2)], 1);
    }

    #[test]
    fn min_observations_applies_per_window() {
        let c = cfg(10, 2);
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 0));
        w.push(&frame(1, 1_000));
        // Window 1: only one observation for the device — dropped.
        w.push(&frame(1, 11_000_000));
        let candidates = w.finish();
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].index, 0);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let c = cfg(1, 1);
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 0));
        // Jump 100 windows ahead.
        w.push(&frame(1, 100_500_000));
        let candidates = w.finish();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0].index, 0);
        assert_eq!(candidates[1].index, 100);
    }

    #[test]
    fn inter_arrival_history_crosses_window_boundary() {
        let mut c = cfg(1, 1);
        c.parameter = NetworkParameter::InterArrivalTime;
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 0)); // origin; no observation (no history)
        w.push(&frame(1, 999_900)); // observation in window 0
        w.push(&frame(1, 1_000_100)); // observation in window 1, history kept
        let candidates = w.finish();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0].index, 0);
        // The window-1 observation is the 200 µs gap across the boundary.
        assert_eq!(candidates[1].index, 1);
        assert_eq!(candidates[1].signature.observation_count(), 1);
    }

    #[test]
    fn no_frames_no_candidates() {
        let c = cfg(10, 1);
        let w = WindowedSignatures::new(&c);
        assert!(w.finish().is_empty());
    }
}
