//! Detection windows: splitting a validation trace into fixed-length
//! windows and building one candidate signature per (window, device).
//!
//! The paper uses 5-minute detection windows (§V-A) and matches every
//! candidate device against the reference database in each window.

use std::collections::BTreeMap;

use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_radiotap::CapturedFrame;

use crate::config::EvalConfig;
use crate::params::ParameterExtractor;
use crate::signature::Signature;

/// One candidate signature: a device observed within one detection window.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateWindow {
    /// Zero-based window index (window `i` covers
    /// `[start + i·window, start + (i+1)·window)`).
    pub index: usize,
    /// The candidate device (source MAC address).
    pub device: MacAddr,
    /// The signature built from that device's frames in the window.
    pub signature: Signature,
}

/// The shared detection-window clock: maps timestamps to window indices
/// and decides when the open window seals.
///
/// One clock can drive any number of per-parameter candidate builders —
/// the [`MultiEngine`](crate::engine::MultiEngine) runs all five network
/// parameters off a single `WindowClock`, and [`WindowedSignatures`]
/// embeds one for the single-parameter path — so every consumer agrees on
/// the same boundary rule: windows are anchored at the first observed
/// frame, window `i` covers `[origin + i·len, origin + (i+1)·len)`
/// (half-open on the right).
///
/// The clock advances on two inputs:
///
/// * [`WindowClock::observe`] — a frame's timestamp. The first frame
///   anchors the clock; a frame landing past the open window's end seals
///   it (and opens the frame's own window).
/// * [`WindowClock::advance_to`] — a bare timestamp with **no frame**:
///   the wall-clock statement "the capture clock has reached `t`". On a
///   quiet channel this is the only way the final window's decision can
///   be emitted before another frame happens to arrive.
///
/// A sealed window always contained at least one frame: `advance_to`
/// leaves the clock *closed* (no open window) rather than opening an
/// empty one, and the next frame re-opens at its own index.
#[derive(Debug, Clone)]
pub struct WindowClock {
    window_len: u64,
    origin: Option<Nanos>,
    current: usize,
    open: bool,
}

impl WindowClock {
    /// A clock over windows of length `window` (clamped to ≥ 1 ns).
    pub fn new(window: Nanos) -> Self {
        WindowClock { window_len: window.as_nanos().max(1), origin: None, current: 0, open: false }
    }

    /// The window index a timestamp falls into, once the clock is
    /// anchored.
    fn index_of(&self, t: Nanos, origin: Nanos) -> usize {
        (t.saturating_sub(origin).as_nanos() / self.window_len) as usize
    }

    /// Advances the clock to a frame at `t`, returning the index of the
    /// window this frame sealed (the previously open window, when the
    /// frame is the first to land past its end).
    pub fn observe(&mut self, t: Nanos) -> Option<usize> {
        let origin = *self.origin.get_or_insert(t);
        let idx = self.index_of(t, origin);
        if !self.open {
            // First frame ever, or first frame after a tick-driven seal:
            // open the frame's own window; nothing (further) to seal.
            self.current = idx;
            self.open = true;
            return None;
        }
        if idx == self.current {
            return None;
        }
        let closed = self.current;
        self.current = idx;
        Some(closed)
    }

    /// Advances the clock to wall-clock time `t` without a frame,
    /// returning the index of the window this seals — exactly the window
    /// a frame at `t` would have sealed. The clock is left closed; the
    /// next frame opens its own window.
    pub fn advance_to(&mut self, t: Nanos) -> Option<usize> {
        let origin = self.origin?;
        if !self.open || self.index_of(t, origin) <= self.current {
            return None;
        }
        self.open = false;
        Some(self.current)
    }

    /// Index of the currently open window, or `None` when no window is
    /// open (before the first frame, or right after a tick-driven seal).
    pub fn current_index(&self) -> Option<usize> {
        self.open.then_some(self.current)
    }

    /// End of the currently open window (`origin + (i+1)·len`) — the
    /// earliest timestamp whose [`WindowClock::advance_to`] seals it.
    pub fn current_end(&self) -> Option<Nanos> {
        let origin = self.origin?;
        self.open.then(|| {
            Nanos::from_nanos(
                origin
                    .as_nanos()
                    .saturating_add((self.current as u64 + 1).saturating_mul(self.window_len)),
            )
        })
    }

    /// Seals the currently open window unconditionally (stream end),
    /// returning its index.
    pub fn finish(&mut self) -> Option<usize> {
        let closed = self.current_index();
        self.open = false;
        closed
    }
}

/// Streaming builder of per-window candidate signatures.
///
/// Frames must be pushed in capture order. Windows are anchored at the
/// first frame's timestamp (one shared [`WindowClock`]). Inter-arrival
/// history is carried *across* window boundaries (the monitor sees one
/// continuous channel), but each observation is attributed to the window
/// containing its frame.
///
/// # Example
///
/// ```
/// use wifiprint_core::{EvalConfig, NetworkParameter, WindowedSignatures};
/// use wifiprint_radiotap::CapturedFrame;
/// use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
///
/// let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize)
///     .with_min_observations(2);
/// let mut windows = WindowedSignatures::new(&cfg);
/// let sta = MacAddr::from_index(1);
/// let ap = MacAddr::from_index(2);
/// // Two frames in window 0, two more 6 minutes later in window 1.
/// for t_us in [0u64, 1_000, 360_000_000, 360_001_000] {
///     let f = Frame::data_to_ds(sta, ap, ap, 100);
///     windows.push(&CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(t_us), -50));
/// }
/// let candidates = windows.finish();
/// assert_eq!(candidates.len(), 2);
/// assert_eq!(candidates[0].index, 0);
/// assert_eq!(candidates[1].index, 1);
/// ```
#[derive(Debug)]
pub struct WindowedSignatures {
    cfg: EvalConfig,
    extractor: ParameterExtractor,
    clock: WindowClock,
    current: BTreeMap<MacAddr, Signature>,
    finished: Vec<CandidateWindow>,
}

impl WindowedSignatures {
    /// A windowed builder using `cfg`'s parameter, filter, bins, window
    /// length and minimum observation count.
    pub fn new(cfg: &EvalConfig) -> Self {
        WindowedSignatures {
            extractor: ParameterExtractor::with_options(
                cfg.parameter,
                cfg.estimator,
                cfg.filter.clone(),
            ),
            clock: WindowClock::new(cfg.window),
            cfg: cfg.clone(),
            current: BTreeMap::new(),
            finished: Vec::new(),
        }
    }

    /// Processes one captured frame.
    ///
    /// Returns the index of the window this frame *sealed* — i.e. the
    /// previous window, when the frame is the first to land past its end
    /// — or `None` while the current window stays open. A seal is
    /// reported even when no device in the sealed window met the
    /// observation floor (the window still *closed*); windows that were
    /// skipped entirely (no frames at all) are never reported.
    ///
    /// Sealed candidates accumulate for [`WindowedSignatures::finish`];
    /// streaming consumers (the [`engine`](crate::engine)) retrieve them
    /// incrementally with [`WindowedSignatures::drain_sealed`] instead.
    pub fn push(&mut self, frame: &CapturedFrame) -> Option<usize> {
        let sealed = self.clock.observe(frame.t_end);
        if let Some(window) = sealed {
            self.seal(window);
        }
        if let Some(obs) = self.extractor.push(frame) {
            self.current.entry(obs.device).or_default().record(obs.kind, obs.value, &self.cfg);
        }
        sealed
    }

    /// Advances the window clock to wall-clock time `t` **without a
    /// frame** (see [`WindowClock::advance_to`]): when `t` lies past the
    /// open window's end, the window seals exactly as a frame at `t`
    /// would have sealed it, and its candidates become available to
    /// [`WindowedSignatures::drain_sealed`] / the final
    /// [`WindowedSignatures::finish`]. On a quiet channel this is how a
    /// consumer gets the last window's candidates without waiting for
    /// traffic that may never come.
    pub fn advance_to(&mut self, t: Nanos) -> Option<usize> {
        let sealed = self.clock.advance_to(t);
        if let Some(window) = sealed {
            self.seal(window);
        }
        sealed
    }

    /// Processes a sequence of captured frames.
    pub fn extend(&mut self, frames: impl IntoIterator<Item = CapturedFrame>) {
        for f in frames {
            self.push(&f);
        }
    }

    fn seal(&mut self, window: usize) {
        let min = self.cfg.min_observations;
        for (device, signature) in std::mem::take(&mut self.current) {
            if signature.observation_count() >= min {
                self.finished.push(CandidateWindow { index: window, device, signature });
            }
        }
    }

    /// Index of the still-open window, or `None` when no window is open
    /// (before any frame has been pushed, or right after
    /// [`WindowedSignatures::advance_to`] sealed it).
    pub fn current_index(&self) -> Option<usize> {
        self.clock.current_index()
    }

    /// End of the still-open window — the earliest timestamp whose
    /// [`WindowedSignatures::advance_to`] seals it.
    pub fn current_end(&self) -> Option<Nanos> {
        self.clock.current_end()
    }

    /// Removes and returns the candidates of every window sealed so far
    /// (in (window, device) order), leaving the still-open window
    /// untouched. Calling this after every [`WindowedSignatures::push`]
    /// yields exactly one sealed window's candidates at a time, which is
    /// how the streaming [`engine`](crate::engine) consumes them without
    /// buffering the whole trace.
    pub fn drain_sealed(&mut self) -> Vec<CandidateWindow> {
        std::mem::take(&mut self.finished)
    }

    /// Finalises the last window and returns all candidate signatures in
    /// (window, device) order (minus any drained earlier with
    /// [`WindowedSignatures::drain_sealed`]).
    pub fn finish(mut self) -> Vec<CandidateWindow> {
        if let Some(window) = self.clock.finish() {
            self.seal(window);
        }
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetworkParameter;
    use wifiprint_ieee80211::{Frame, Rate};

    fn cfg(window_secs: u64, min_obs: u64) -> EvalConfig {
        let mut cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize)
            .with_min_observations(min_obs);
        cfg.window = Nanos::from_secs(window_secs);
        cfg
    }

    fn frame(from: u64, t_us: u64) -> CapturedFrame {
        let sta = MacAddr::from_index(from);
        let ap = MacAddr::from_index(99);
        let f = Frame::data_to_ds(sta, ap, ap, 200);
        CapturedFrame::from_frame(&f, Rate::R24M, Nanos::from_micros(t_us), -55)
    }

    #[test]
    fn windows_are_anchored_at_first_frame() {
        let c = cfg(10, 1);
        let mut w = WindowedSignatures::new(&c);
        // First frame at t=1000 s: still window 0.
        w.push(&frame(1, 1_000_000_000));
        w.push(&frame(1, 1_000_000_100));
        // 9.9 s later: same window; 10.1 s later: next window.
        w.push(&frame(1, 1_009_900_000));
        w.push(&frame(1, 1_010_100_000));
        let candidates = w.finish();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0].index, 0);
        assert_eq!(candidates[0].signature.observation_count(), 3);
        assert_eq!(candidates[1].index, 1);
        assert_eq!(candidates[1].signature.observation_count(), 1);
    }

    #[test]
    fn devices_are_separated_within_a_window() {
        let c = cfg(60, 1);
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 100));
        w.push(&frame(2, 200));
        w.push(&frame(1, 300));
        let candidates = w.finish();
        assert_eq!(candidates.len(), 2);
        let by_dev: BTreeMap<_, _> =
            candidates.iter().map(|c| (c.device, c.signature.observation_count())).collect();
        assert_eq!(by_dev[&MacAddr::from_index(1)], 2);
        assert_eq!(by_dev[&MacAddr::from_index(2)], 1);
    }

    #[test]
    fn min_observations_applies_per_window() {
        let c = cfg(10, 2);
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 0));
        w.push(&frame(1, 1_000));
        // Window 1: only one observation for the device — dropped.
        w.push(&frame(1, 11_000_000));
        let candidates = w.finish();
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].index, 0);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let c = cfg(1, 1);
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 0));
        // Jump 100 windows ahead.
        w.push(&frame(1, 100_500_000));
        let candidates = w.finish();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0].index, 0);
        assert_eq!(candidates[1].index, 100);
    }

    #[test]
    fn inter_arrival_history_crosses_window_boundary() {
        let mut c = cfg(1, 1);
        c.parameter = NetworkParameter::InterArrivalTime;
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 0)); // origin; no observation (no history)
        w.push(&frame(1, 999_900)); // observation in window 0
        w.push(&frame(1, 1_000_100)); // observation in window 1, history kept
        let candidates = w.finish();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0].index, 0);
        // The window-1 observation is the 200 µs gap across the boundary.
        assert_eq!(candidates[1].index, 1);
        assert_eq!(candidates[1].signature.observation_count(), 1);
    }

    #[test]
    fn boundary_frame_lands_in_the_next_window_not_the_previous() {
        // Regression: a frame timestamped exactly at `start + i·window`
        // belongs to window `i` (the interval is half-open on the right),
        // never to window `i − 1`.
        let c = cfg(10, 1);
        let mut w = WindowedSignatures::new(&c);
        let origin_us = 5_250_000; // a non-zero anchor
        assert_eq!(w.push(&frame(1, origin_us)), None);
        // One nanosecond before the boundary: still window 0, no seal.
        let mut before = frame(1, 0);
        before.t_end =
            Nanos::from_micros(origin_us + 10_000_000).saturating_sub(Nanos::from_nanos(1));
        assert_eq!(w.push(&before), None);
        // Exactly on `start + 1·window`: window 1, sealing window 0.
        assert_eq!(w.push(&frame(1, origin_us + 10_000_000)), Some(0));
        // Exactly on `start + 2·window`: window 2, sealing window 1.
        assert_eq!(w.push(&frame(1, origin_us + 20_000_000)), Some(1));
        let candidates = w.finish();
        let indices: Vec<usize> = candidates.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        // The two pre-boundary frames stayed in window 0; each boundary
        // frame opened its own window.
        assert_eq!(candidates[0].signature.observation_count(), 2);
        assert_eq!(candidates[1].signature.observation_count(), 1);
        assert_eq!(candidates[2].signature.observation_count(), 1);
    }

    #[test]
    fn drain_sealed_hands_over_windows_incrementally() {
        let c = cfg(10, 1);
        let mut w = WindowedSignatures::new(&c);
        assert_eq!(w.push(&frame(1, 0)), None);
        assert!(w.drain_sealed().is_empty(), "open window must not drain");
        assert_eq!(w.push(&frame(2, 1_000)), None);
        // Next frame 25 s later seals window 0 (and skips empty window 1).
        assert_eq!(w.push(&frame(1, 25_000_000)), Some(0));
        let sealed = w.drain_sealed();
        assert_eq!(sealed.len(), 2);
        assert!(sealed.iter().all(|c| c.index == 0));
        assert!(w.drain_sealed().is_empty(), "drain must not repeat");
        // What was drained no longer appears in finish().
        let rest = w.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].index, 2);
    }

    #[test]
    fn no_frames_no_candidates() {
        let c = cfg(10, 1);
        let w = WindowedSignatures::new(&c);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn clock_seals_on_ticks_exactly_like_frames() {
        // advance_to(t) must agree with observe(t) on what seals: the
        // tick-driven close is the frame-driven close minus the frame.
        let mut by_frame = WindowClock::new(Nanos::from_secs(10));
        let mut by_tick = WindowClock::new(Nanos::from_secs(10));
        for clock in [&mut by_frame, &mut by_tick] {
            assert_eq!(clock.observe(Nanos::from_micros(5_250_000)), None);
        }
        let boundary = Nanos::from_micros(15_250_000);
        // One nanosecond before the boundary: no seal either way.
        assert_eq!(by_tick.advance_to(boundary.saturating_sub(Nanos::from_nanos(1))), None);
        // At the boundary both inputs seal window 0.
        assert_eq!(by_frame.observe(boundary), Some(0));
        assert_eq!(by_tick.advance_to(boundary), Some(0));
        // After a tick-driven seal there is no open window...
        assert_eq!(by_tick.current_index(), None);
        assert_eq!(by_tick.current_end(), None);
        assert_eq!(by_tick.advance_to(Nanos::from_secs(100)), None, "nothing more to seal");
        // ...until the next frame opens its own.
        assert_eq!(by_tick.observe(Nanos::from_micros(27_000_000)), None);
        assert_eq!(by_tick.current_index(), Some(2));
        assert_eq!(by_frame.current_index(), Some(1));
    }

    #[test]
    fn clock_before_first_frame_ignores_ticks() {
        let mut clock = WindowClock::new(Nanos::from_secs(1));
        assert_eq!(clock.advance_to(Nanos::from_secs(50)), None);
        assert_eq!(clock.finish(), None);
        // The first frame still anchors the clock at its own timestamp.
        assert_eq!(clock.observe(Nanos::from_secs(60)), None);
        assert_eq!(clock.current_index(), Some(0));
        assert_eq!(clock.current_end(), Some(Nanos::from_secs(61)));
    }

    #[test]
    fn advance_to_hands_over_the_quiet_trailing_window() {
        let c = cfg(10, 1);
        let mut w = WindowedSignatures::new(&c);
        w.push(&frame(1, 0));
        w.push(&frame(2, 1_000));
        assert!(w.drain_sealed().is_empty(), "window 0 still open");
        // The channel goes quiet; the wall clock passes the boundary.
        assert_eq!(w.advance_to(Nanos::from_secs(10)), Some(0));
        let sealed = w.drain_sealed();
        assert_eq!(sealed.len(), 2);
        assert!(sealed.iter().all(|c| c.index == 0));
        assert_eq!(w.current_index(), None, "tick leaves no open window");
        // A repeated tick does not re-seal; a later frame opens window 2.
        assert_eq!(w.advance_to(Nanos::from_secs(15)), None);
        assert_eq!(w.push(&frame(1, 25_000_000)), None);
        assert_eq!(w.current_index(), Some(2));
        let rest = w.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].index, 2);
    }

    #[test]
    fn tick_sealed_candidates_equal_frame_sealed_candidates() {
        let c = cfg(10, 1);
        let frames = [frame(1, 0), frame(2, 1_000), frame(1, 2_500)];
        let mut by_frame = WindowedSignatures::new(&c);
        let mut by_tick = WindowedSignatures::new(&c);
        for f in &frames {
            by_frame.push(f);
            by_tick.push(f);
        }
        // Frame-driven close vs tick-driven close at the same instant.
        assert_eq!(by_frame.push(&frame(9, 10_000_000)), Some(0));
        assert_eq!(by_tick.advance_to(Nanos::from_micros(10_000_000)), Some(0));
        let frame_sealed = by_frame.drain_sealed();
        let tick_sealed = by_tick.drain_sealed();
        assert_eq!(frame_sealed, tick_sealed);
    }
}
