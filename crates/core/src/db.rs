//! Persistence of reference databases in a small line-oriented text
//! format, so learned signatures can be stored and reloaded across runs
//! (the paper's learning/detection phase split).
//!
//! The format stores *signatures*, not layout: the shard directory of
//! the in-memory store ([`MatchConfig`]) is runtime configuration, so a
//! database saved from any layout reloads into whichever layout the
//! reader asks for ([`load_db`] uses the default dominant-histogram
//! sharding; [`load_db_with`] takes an explicit [`MatchConfig`]) and
//! scores identically either way. The same holds for the precision
//! tier: counts are persisted exactly (integers), so a database saved
//! from a quantized (`u8`) store reloads losslessly — quantization is a
//! pack-time layout choice
//! ([`RowPrecision`](crate::matching::RowPrecision)), never a
//! persistence one.
//!
//! Format (one item per line):
//!
//! ```text
//! wifiprint-db v1
//! parameter inter-arrival-time
//! bins uniform 0 25 100          # min width count  (or: bins categorical c1,c2,…)
//! device 02:00:00:00:00:01
//! hist data 0,4,17,…             # counts, one entry per bin
//! hist probe-req 1,0,3,…
//! device 02:00:00:00:00:02
//! …
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};

use wifiprint_ieee80211::{FrameKind, MacAddr};

use crate::histogram::{BinSpec, Histogram};
use crate::matching::{MatchConfig, ReferenceDb};
use crate::params::NetworkParameter;
use crate::signature::Signature;

/// Errors while encoding or decoding a persisted reference database.
#[derive(Debug)]
pub enum DbCodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DbCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbCodecError::Io(e) => write!(f, "i/o error: {e}"),
            DbCodecError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for DbCodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbCodecError::Io(e) => Some(e),
            DbCodecError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for DbCodecError {
    fn from(e: std::io::Error) -> Self {
        DbCodecError::Io(e)
    }
}

/// Writes a reference database (its parameter and bin spec included) to a
/// writer.
///
/// # Errors
///
/// I/O errors from the writer.
pub fn save_db<W: Write>(
    mut out: W,
    db: &ReferenceDb,
    parameter: NetworkParameter,
    bins: &BinSpec,
) -> Result<(), DbCodecError> {
    writeln!(out, "wifiprint-db v1")?;
    writeln!(out, "parameter {}", parameter.slug())?;
    match bins {
        BinSpec::Uniform { min, width, count } => {
            writeln!(out, "bins uniform {min} {width} {count}")?;
        }
        BinSpec::Categorical { centers } => {
            let list: Vec<String> = centers.iter().map(f64::to_string).collect();
            writeln!(out, "bins categorical {}", list.join(","))?;
        }
    }
    for (device, sig) in db.iter() {
        writeln!(out, "device {device}")?;
        for (kind, hist) in sig.iter() {
            let counts: Vec<String> = hist.counts().iter().map(u64::to_string).collect();
            writeln!(out, "hist {} {}", kind.label(), counts.join(","))?;
        }
    }
    Ok(())
}

/// Reads a database previously written with [`save_db`], packing it
/// into the default shard layout ([`MatchConfig::default`]).
///
/// # Errors
///
/// I/O errors, or [`DbCodecError::Parse`] for malformed content.
pub fn load_db<R: BufRead>(
    input: R,
) -> Result<(ReferenceDb, NetworkParameter, BinSpec), DbCodecError> {
    load_db_with(input, MatchConfig::default())
}

/// [`load_db`] with an explicit shard layout for the reloaded store —
/// e.g. [`MatchConfig::flat`] for a small deployment, or a higher shard
/// count for a metropolis-scale one.
///
/// # Errors
///
/// I/O errors, or [`DbCodecError::Parse`] for malformed content.
pub fn load_db_with<R: BufRead>(
    input: R,
    config: MatchConfig,
) -> Result<(ReferenceDb, NetworkParameter, BinSpec), DbCodecError> {
    let mut lines = input.lines().enumerate();
    let mut next_line = |expect: &str| -> Result<(usize, String), DbCodecError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(DbCodecError::Parse {
                line: i + 1,
                message: format!("read failure: {e}"),
            }),
            None => Err(DbCodecError::Parse {
                line: 0,
                message: format!("unexpected end of file, expected {expect}"),
            }),
        }
    };

    let (ln, header) = next_line("header")?;
    if header.trim() != "wifiprint-db v1" {
        return Err(DbCodecError::Parse { line: ln, message: "bad header".into() });
    }
    let (ln, param_line) = next_line("parameter line")?;
    let parameter = param_line
        .strip_prefix("parameter ")
        .and_then(|s| s.trim().parse::<NetworkParameter>().ok())
        .ok_or_else(|| DbCodecError::Parse { line: ln, message: "bad parameter line".into() })?;
    let (ln, bins_line) = next_line("bins line")?;
    let bins = parse_bins(&bins_line)
        .ok_or_else(|| DbCodecError::Parse { line: ln, message: "bad bins line".into() })?;

    let mut signatures: BTreeMap<MacAddr, Signature> = BTreeMap::new();
    let mut current: Option<(MacAddr, BTreeMap<FrameKind, Histogram>)> = None;
    let seal =
        |cur: &mut Option<(MacAddr, BTreeMap<FrameKind, Histogram>)>,
         sigs: &mut BTreeMap<MacAddr, Signature>| {
            if let Some((device, hists)) = cur.take() {
                sigs.insert(device, Signature::from_histograms(hists));
            }
        };

    for (i, line) in lines {
        let ln = i + 1;
        let line = line.map_err(|e| DbCodecError::Parse {
            line: ln,
            message: format!("read failure: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("device ") {
            let device: MacAddr = rest.trim().parse().map_err(|_| DbCodecError::Parse {
                line: ln,
                message: format!("bad device address {rest:?}"),
            })?;
            seal(&mut current, &mut signatures);
            current = Some((device, BTreeMap::new()));
        } else if let Some(rest) = line.strip_prefix("hist ") {
            let (label, counts_str) =
                rest.split_once(' ').ok_or_else(|| DbCodecError::Parse {
                    line: ln,
                    message: "hist line missing counts".into(),
                })?;
            let kind = parse_kind_label(label).ok_or_else(|| DbCodecError::Parse {
                line: ln,
                message: format!("unknown frame kind {label:?}"),
            })?;
            let counts: Result<Vec<u64>, _> =
                counts_str.split(',').map(|c| c.trim().parse::<u64>()).collect();
            let counts = counts.map_err(|e| DbCodecError::Parse {
                line: ln,
                message: format!("bad count: {e}"),
            })?;
            if counts.len() != bins.bin_count() {
                return Err(DbCodecError::Parse {
                    line: ln,
                    message: format!(
                        "histogram has {} bins, spec expects {}",
                        counts.len(),
                        bins.bin_count()
                    ),
                });
            }
            let (_, hists) = current.as_mut().ok_or_else(|| DbCodecError::Parse {
                line: ln,
                message: "hist line before any device line".into(),
            })?;
            hists.insert(kind, Histogram::from_counts(bins.clone(), counts));
        } else {
            return Err(DbCodecError::Parse {
                line: ln,
                message: format!("unrecognised line {line:?}"),
            });
        }
    }
    seal(&mut current, &mut signatures);
    Ok((ReferenceDb::from_signatures_with(signatures, config), parameter, bins))
}

fn parse_bins(line: &str) -> Option<BinSpec> {
    let rest = line.strip_prefix("bins ")?;
    if let Some(spec) = rest.strip_prefix("uniform ") {
        let mut it = spec.split_whitespace();
        let min: f64 = it.next()?.parse().ok()?;
        let width: f64 = it.next()?.parse().ok()?;
        let count: usize = it.next()?.parse().ok()?;
        if it.next().is_some() || width <= 0.0 {
            return None;
        }
        Some(BinSpec::Uniform { min, width, count })
    } else if let Some(spec) = rest.strip_prefix("categorical ") {
        let centers: Result<Vec<f64>, _> = spec.split(',').map(|c| c.trim().parse()).collect();
        let centers = centers.ok()?;
        if centers.is_empty() {
            return None;
        }
        Some(BinSpec::Categorical { centers })
    } else {
        None
    }
}

fn parse_kind_label(label: &str) -> Option<FrameKind> {
    if let Some(rest) = label.strip_prefix("reserved-") {
        let (t, s) = rest.split_once('-')?;
        return Some(FrameKind::Reserved {
            type_bits: t.parse().ok()?,
            subtype: s.parse().ok()?,
        });
    }
    FrameKind::ALL_NAMED.into_iter().find(|k| k.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;

    fn sample_db() -> (ReferenceDb, NetworkParameter, BinSpec) {
        let param = NetworkParameter::InterArrivalTime;
        let cfg = EvalConfig::for_parameter(param).with_bins(BinSpec::uniform_to(100.0, 10.0));
        let mut db = ReferenceDb::new();
        for idx in 1..=3u64 {
            let mut sig = Signature::new();
            for i in 0..60 {
                sig.record(FrameKind::Data, (idx * 10 + i % 7) as f64, &cfg);
            }
            for _ in 0..5 {
                sig.record(FrameKind::ProbeReq, 95.0, &cfg);
            }
            db.insert(MacAddr::from_index(idx), sig).unwrap();
        }
        (db, param, cfg.bins)
    }

    #[test]
    fn save_load_round_trip() {
        let (db, param, bins) = sample_db();
        let mut buf = Vec::new();
        save_db(&mut buf, &db, param, &bins).unwrap();
        let (loaded, lparam, lbins) = load_db(&buf[..]).unwrap();
        assert_eq!(lparam, param);
        assert_eq!(lbins, bins);
        assert_eq!(loaded.len(), db.len());
        for (device, sig) in db.iter() {
            let lsig = loaded.get(&device).expect("device present");
            assert_eq!(lsig, sig, "{device}");
        }
    }

    #[test]
    fn categorical_bins_round_trip() {
        let param = NetworkParameter::TransmissionRate;
        let cfg = EvalConfig::for_parameter(param);
        let mut db = ReferenceDb::new();
        let mut sig = Signature::new();
        for _ in 0..50 {
            sig.record(FrameKind::QosData, 54.0, &cfg);
        }
        db.insert(MacAddr::from_index(1), sig).unwrap();
        let mut buf = Vec::new();
        save_db(&mut buf, &db, param, &cfg.bins).unwrap();
        let (loaded, _, lbins) = load_db(&buf[..]).unwrap();
        assert_eq!(lbins, cfg.bins);
        assert_eq!(loaded.len(), 1);
    }

    #[test]
    fn layouts_reload_and_score_identically() {
        // The persisted format carries no layout; any MatchConfig
        // reloads the same signatures and scores identically.
        let (db, param, bins) = sample_db();
        let mut buf = Vec::new();
        save_db(&mut buf, &db, param, &bins).unwrap();
        let (flat, _, _) = load_db_with(&buf[..], MatchConfig::flat()).unwrap();
        let (sharded, _, _) =
            load_db_with(&buf[..], MatchConfig::default().with_shards(7)).unwrap();
        assert_eq!(flat.len(), sharded.len());
        let cand = db.iter().next().unwrap().1.clone();
        let a = flat.match_signature(&cand, crate::SimilarityMeasure::Cosine);
        let b = sharded.match_signature(&cand, crate::SimilarityMeasure::Cosine);
        assert_eq!(a.similarities(), b.similarities());
    }

    #[test]
    fn reserved_kind_labels_round_trip() {
        assert_eq!(
            parse_kind_label("reserved-3-5"),
            Some(FrameKind::Reserved { type_bits: 3, subtype: 5 })
        );
        assert_eq!(parse_kind_label("qos-data"), Some(FrameKind::QosData));
        assert_eq!(parse_kind_label("nonsense"), None);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let cases: &[(&str, &str)] = &[
            ("", "unexpected end"),
            ("not-a-db", "bad header"),
            ("wifiprint-db v1\nparameter bogus\nbins uniform 0 1 2", "bad parameter"),
            ("wifiprint-db v1\nparameter frame-size\nbins nonsense", "bad bins"),
            (
                "wifiprint-db v1\nparameter frame-size\nbins uniform 0 1 2\nhist data 1,2,3",
                "before any device",
            ),
            (
                "wifiprint-db v1\nparameter frame-size\nbins uniform 0 1 2\ndevice zz:zz",
                "bad device",
            ),
            (
                "wifiprint-db v1\nparameter frame-size\nbins uniform 0 1 2\ndevice 02:00:00:00:00:01\nhist data 1,2",
                "bins",
            ),
            (
                "wifiprint-db v1\nparameter frame-size\nbins uniform 0 1 2\nwhat is this",
                "unrecognised",
            ),
        ];
        for (input, needle) in cases {
            let err = load_db(input.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "input {input:?}: got {msg:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (db, param, bins) = sample_db();
        let mut buf = Vec::new();
        save_db(&mut buf, &db, param, &bins).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = text.replace("device 02:00:00:00:00:02", "# comment\n\ndevice 02:00:00:00:00:02");
        let (loaded, _, _) = load_db(text.as_bytes()).unwrap();
        assert_eq!(loaded.len(), 3);
    }
}
