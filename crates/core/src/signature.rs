//! Device signatures: weighted per-frame-type histograms (Definition 1).

use std::collections::BTreeMap;

use wifiprint_ieee80211::{FrameKind, MacAddr};
use wifiprint_radiotap::CapturedFrame;

use crate::config::EvalConfig;
use crate::error::CoreError;
use crate::histogram::Histogram;
use crate::params::{Observation, ParameterExtractor};

/// A device signature: one histogram per observed frame type, with weights
/// proportional to the number of observations of that type (§IV-A,
/// Definition 1).
///
/// `Sig(s) = {(weight^ftype(s), hist^ftype(s)) | ∀ ftype}`
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    entries: BTreeMap<FrameKind, Histogram>,
    total: u64,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Signature { entries: BTreeMap::new(), total: 0 }
    }

    /// Builds a signature directly from per-kind histograms.
    pub fn from_histograms(entries: BTreeMap<FrameKind, Histogram>) -> Self {
        let total = entries.values().map(Histogram::total).sum();
        Signature { entries, total }
    }

    /// Records one observation into the appropriate histogram, creating it
    /// with `cfg`'s bins when first seen.
    pub fn record(&mut self, kind: FrameKind, value: f64, cfg: &EvalConfig) {
        self.entries
            .entry(kind)
            .or_insert_with(|| Histogram::new(cfg.bins.clone()))
            .add(value);
        self.total += 1;
    }

    /// Total observations across all frame types (`Σ |P^ftype(s)|`).
    pub fn observation_count(&self) -> u64 {
        self.total
    }

    /// The weight of one frame type: `|P^ftype(s)| / Σ |P^ftype(s)|`.
    ///
    /// Returns 0.0 for unobserved frame types.
    pub fn weight(&self, kind: FrameKind) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.entries.get(&kind).map_or(0.0, |h| h.total() as f64 / self.total as f64)
    }

    /// The histogram for one frame type, if observed.
    pub fn histogram(&self, kind: FrameKind) -> Option<&Histogram> {
        self.entries.get(&kind)
    }

    /// Iterates `(frame kind, histogram)` entries in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (FrameKind, &Histogram)> {
        self.entries.iter().map(|(&k, h)| (k, h))
    }

    /// The frame kinds present in this signature.
    pub fn kinds(&self) -> impl Iterator<Item = FrameKind> + '_ {
        self.entries.keys().copied()
    }

    /// Number of distinct frame types observed.
    pub fn kind_count(&self) -> usize {
        self.entries.len()
    }

    /// Merges another signature (same bins assumed) into this one.
    pub fn merge(&mut self, other: &Signature) {
        for (kind, hist) in &other.entries {
            match self.entries.get_mut(kind) {
                Some(existing) => existing.merge(hist),
                None => {
                    self.entries.insert(*kind, hist.clone());
                }
            }
        }
        self.total += other.total;
    }
}

impl Default for Signature {
    fn default() -> Self {
        Signature::new()
    }
}

/// Builds per-device signatures from a capture stream (the learning phase
/// of §IV-B, and candidate extraction in the detection phase).
///
/// Push frames in capture order, then call [`SignatureBuilder::finish`] to
/// obtain the signatures meeting the configured minimum observation count.
#[derive(Debug)]
pub struct SignatureBuilder {
    cfg: EvalConfig,
    extractor: ParameterExtractor,
    devices: BTreeMap<MacAddr, Signature>,
}

impl SignatureBuilder {
    /// A builder for the configured parameter.
    pub fn new(cfg: &EvalConfig) -> Self {
        SignatureBuilder {
            cfg: cfg.clone(),
            extractor: ParameterExtractor::with_options(
                cfg.parameter,
                cfg.estimator,
                cfg.filter.clone(),
            ),
            devices: BTreeMap::new(),
        }
    }

    /// Processes one captured frame.
    pub fn push(&mut self, frame: &CapturedFrame) {
        if let Some(obs) = self.extractor.push(frame) {
            self.record(obs);
        }
    }

    /// Records a pre-extracted observation (used when one extraction pass
    /// feeds several builders).
    pub fn record(&mut self, obs: Observation) {
        self.devices.entry(obs.device).or_default().record(obs.kind, obs.value, &self.cfg);
    }

    /// Processes a sequence of captured frames.
    pub fn extend(&mut self, frames: impl IntoIterator<Item = CapturedFrame>) {
        for frame in frames {
            self.push(&frame);
        }
    }

    /// Number of devices currently tracked (before the minimum-observation
    /// cut).
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Finalises, keeping only devices with at least
    /// [`EvalConfig::min_observations`] observations (the paper's 50).
    ///
    /// # Errors
    ///
    /// [`CoreError::NoQualifiedDevices`] when no tracked device reached
    /// the observation floor — there is nothing to enroll. Callers for
    /// whom an empty learning phase is an acceptable outcome (not a
    /// failure) can recover with `finish().unwrap_or_default()`.
    pub fn finish(self) -> Result<BTreeMap<MacAddr, Signature>, CoreError> {
        let min = self.cfg.min_observations;
        let tracked = self.devices.len();
        let qualified: BTreeMap<MacAddr, Signature> =
            self.devices.into_iter().filter(|(_, sig)| sig.observation_count() >= min).collect();
        if qualified.is_empty() {
            return Err(CoreError::NoQualifiedDevices { tracked, min_observations: min });
        }
        Ok(qualified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetworkParameter;
    use wifiprint_ieee80211::{Frame, Nanos, Rate};

    fn cfg() -> EvalConfig {
        EvalConfig::for_parameter(NetworkParameter::FrameSize).with_min_observations(3)
    }

    fn frame(from: MacAddr, t_us: u64, payload: usize) -> CapturedFrame {
        let f = Frame::data_to_ds(from, MacAddr::from_index(9), MacAddr::from_index(9), payload);
        CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(t_us), -50)
    }

    fn probe(from: MacAddr, t_us: u64) -> CapturedFrame {
        let f = Frame::probe_req(from, vec![0; 30]);
        CapturedFrame::from_frame(&f, Rate::R1M, Nanos::from_micros(t_us), -50)
    }

    #[test]
    fn weights_follow_frame_type_distribution() {
        let c = cfg();
        let mut sig = Signature::new();
        for _ in 0..3 {
            sig.record(FrameKind::Data, 100.0, &c);
        }
        sig.record(FrameKind::ProbeReq, 60.0, &c);
        assert_eq!(sig.observation_count(), 4);
        assert!((sig.weight(FrameKind::Data) - 0.75).abs() < 1e-12);
        assert!((sig.weight(FrameKind::ProbeReq) - 0.25).abs() < 1e-12);
        assert_eq!(sig.weight(FrameKind::Beacon), 0.0);
        // Weights over observed kinds sum to 1.
        let total: f64 = sig.kinds().map(|k| sig.weight(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_signature_weight_is_zero() {
        let sig = Signature::new();
        assert_eq!(sig.weight(FrameKind::Data), 0.0);
        assert_eq!(sig.observation_count(), 0);
        assert_eq!(sig.kind_count(), 0);
    }

    #[test]
    fn builder_groups_by_device_and_kind() {
        let c = cfg();
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        let mut builder = SignatureBuilder::new(&c);
        builder.push(&frame(a, 100, 100));
        builder.push(&frame(a, 200, 100));
        builder.push(&probe(a, 300));
        builder.push(&frame(b, 400, 500));
        assert_eq!(builder.device_count(), 2);
        let sigs = builder.finish().expect("a qualified");
        // b has 1 < 3 observations and is dropped.
        assert_eq!(sigs.len(), 1);
        let sig_a = &sigs[&a];
        assert_eq!(sig_a.observation_count(), 3);
        assert_eq!(sig_a.kind_count(), 2);
        assert!(sig_a.histogram(FrameKind::Data).is_some());
        assert!(sig_a.histogram(FrameKind::ProbeReq).is_some());
    }

    #[test]
    fn min_observations_enforced() {
        let c = cfg().with_min_observations(100);
        let a = MacAddr::from_index(1);
        let mut builder = SignatureBuilder::new(&c);
        for i in 0..99 {
            builder.push(&frame(a, 100 * (i + 1), 100));
        }
        match builder.finish() {
            Err(CoreError::NoQualifiedDevices { tracked, min_observations }) => {
                assert_eq!(tracked, 1);
                assert_eq!(min_observations, 100);
            }
            other => panic!("expected NoQualifiedDevices, got {other:?}"),
        }
        // The tolerant form degrades to an empty map.
        let builder = SignatureBuilder::new(&c);
        assert!(builder.finish().unwrap_or_default().is_empty());
    }

    #[test]
    fn merge_combines_histograms_and_totals() {
        let c = cfg();
        let mut s1 = Signature::new();
        s1.record(FrameKind::Data, 100.0, &c);
        let mut s2 = Signature::new();
        s2.record(FrameKind::Data, 100.0, &c);
        s2.record(FrameKind::Beacon, 200.0, &c);
        s1.merge(&s2);
        assert_eq!(s1.observation_count(), 3);
        assert_eq!(s1.histogram(FrameKind::Data).unwrap().total(), 2);
        assert_eq!(s1.histogram(FrameKind::Beacon).unwrap().total(), 1);
    }

    #[test]
    fn from_histograms_counts_total() {
        let c = cfg();
        let mut h = Histogram::new(c.bins.clone());
        h.add_n(50.0, 7);
        let mut map = BTreeMap::new();
        map.insert(FrameKind::QosData, h);
        let sig = Signature::from_histograms(map);
        assert_eq!(sig.observation_count(), 7);
        assert_eq!(sig.weight(FrameKind::QosData), 1.0);
    }
}
