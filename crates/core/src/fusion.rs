//! Multi-parameter score fusion — combining the five per-parameter
//! similarity vectors into one decision.
//!
//! The paper's stated future work (§VIII: *"future work should also
//! investigate whether the fingerprinting method can be improved by
//! combining several network parameters"*) is where passive
//! fingerprinting wins in practice: a device pair indistinguishable on
//! frame size alone may separate cleanly on inter-arrival time, and vice
//! versa. [`FusionSpec`] names the parameters to combine and their
//! weights; [`fuse_outcomes`] folds per-parameter [`MatchOutcome`]s into
//! one [`FusedOutcome`] by weighted averaging over a common device set.
//!
//! This module is the *online* port of what the analysis crate's
//! `fusion` evaluator used to do offline at end-of-trace: the
//! [`MultiEngine`](crate::engine::MultiEngine) calls [`fuse_outcomes`]
//! per candidate the moment each detection window closes, so fused
//! decisions stream out with the same latency as single-parameter ones.

use wifiprint_ieee80211::MacAddr;

use crate::error::CoreError;
use crate::matching::{best_of, top_of, MatchOutcome};
use crate::params::NetworkParameter;

/// A weighted set of network parameters to fuse.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionSpec {
    /// `(parameter, weight)` pairs; weights need not be normalised.
    pub parameters: Vec<(NetworkParameter, f64)>,
}

impl FusionSpec {
    /// The combination the paper's results suggest: the three timing
    /// parameters that lead its rankings, equally weighted.
    pub fn timing_trio() -> Self {
        FusionSpec {
            parameters: vec![
                (NetworkParameter::InterArrivalTime, 1.0),
                (NetworkParameter::TransmissionTime, 1.0),
                (NetworkParameter::MediumAccessTime, 1.0),
            ],
        }
    }

    /// All five parameters, equally weighted.
    pub fn all_equal() -> Self {
        FusionSpec {
            parameters: NetworkParameter::ALL.iter().map(|&p| (p, 1.0)).collect(),
        }
    }

    /// A single-parameter "fusion" — useful for driving the
    /// [`MultiEngine`](crate::engine::MultiEngine) as a drop-in for one
    /// single-parameter engine.
    pub fn single(parameter: NetworkParameter) -> Self {
        FusionSpec { parameters: vec![(parameter, 1.0)] }
    }

    /// An equally weighted spec over an explicit parameter list.
    pub fn equal_weights(parameters: impl IntoIterator<Item = NetworkParameter>) -> Self {
        FusionSpec { parameters: parameters.into_iter().map(|p| (p, 1.0)).collect() }
    }

    /// The parameters named by the spec, in spec order.
    pub fn parameters(&self) -> impl Iterator<Item = NetworkParameter> + '_ {
        self.parameters.iter().map(|&(p, _)| p)
    }

    /// Number of fused parameters.
    pub fn len(&self) -> usize {
        self.parameters.len()
    }

    /// `true` for a spec with no parameters (always invalid).
    pub fn is_empty(&self) -> bool {
        self.parameters.is_empty()
    }

    /// Checks that the spec can drive a fusion at all.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an empty spec, a duplicated
    /// parameter, a non-finite or negative weight, or an all-zero weight
    /// vector (the fused score would be 0/0).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.parameters.is_empty() {
            return Err(CoreError::InvalidConfig { reason: "fusion spec names no parameters" });
        }
        for (i, &(p, w)) in self.parameters.iter().enumerate() {
            if self.parameters[..i].iter().any(|&(q, _)| q == p) {
                return Err(CoreError::InvalidConfig {
                    reason: "fusion spec repeats a parameter",
                });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(CoreError::InvalidConfig {
                    reason: "fusion weights must be finite and non-negative",
                });
            }
        }
        if self.parameters.iter().all(|&(_, w)| w == 0.0) {
            return Err(CoreError::InvalidConfig { reason: "fusion weights sum to zero" });
        }
        Ok(())
    }

    /// Sum of the weights, floored away from zero so normalisation is
    /// always defined.
    pub(crate) fn weight_sum(&self) -> f64 {
        self.parameters.iter().map(|&(_, w)| w).sum::<f64>().max(f64::MIN_POSITIVE)
    }
}

/// One candidate's **fused** similarity vector: the weighted average of
/// its per-parameter similarities, over the devices enrolled for *every*
/// fused parameter.
///
/// The same shape as a per-parameter [`MatchOutcome`] (ascending device
/// order), so downstream consumers — threshold tests, argmax
/// identification, top-k ranking — treat fused and single-parameter
/// scores uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedOutcome {
    similarities: Vec<(MacAddr, f64)>,
}

impl FusedOutcome {
    /// The fused similarity per reference device, ascending address
    /// order.
    pub fn similarities(&self) -> &[(MacAddr, f64)] {
        &self.similarities
    }

    /// The fused similarity to one reference device.
    pub fn similarity_to(&self, device: &MacAddr) -> Option<f64> {
        self.similarities
            .binary_search_by(|(d, _)| d.cmp(device))
            .ok()
            .map(|i| self.similarities[i].1)
    }

    /// The best-scoring reference (ties break toward the lower address) —
    /// the identification-test argmax over the fused score.
    pub fn best(&self) -> Option<(MacAddr, f64)> {
        best_of(&self.similarities)
    }

    /// The `k` best-scoring references, descending (ties toward lower
    /// addresses) — partial selection, like
    /// [`MatchOutcome::top`](crate::MatchOutcome::top).
    pub fn top(&self, k: usize) -> Vec<(MacAddr, f64)> {
        top_of(&self.similarities, k)
    }

    /// Every reference whose fused similarity reaches `threshold` — the
    /// similarity-test set.
    pub fn above_threshold(&self, threshold: f64) -> impl Iterator<Item = (MacAddr, f64)> + '_ {
        self.similarities.iter().copied().filter(move |&(_, s)| s >= threshold)
    }
}

/// Fuses per-parameter similarity vectors into one [`FusedOutcome`] over
/// `devices` (the devices enrolled for every fused parameter, ascending
/// address order).
///
/// `outcomes` must be aligned with `spec.parameters` (one outcome per
/// spec entry, same order); owned outcomes and borrows both work, like
/// [`ReferenceDb::match_tile`](crate::ReferenceDb::match_tile)'s
/// candidates. Per device, the fused score is `Σᵢ wᵢ·simᵢ / Σᵢ wᵢ`; a
/// device absent from one parameter's vector contributes 0 for that
/// parameter — though with `devices` restricted to the common enrolled
/// set, every device is present in every vector.
pub fn fuse_outcomes<O: std::borrow::Borrow<MatchOutcome>>(
    spec: &FusionSpec,
    outcomes: &[O],
    devices: &[MacAddr],
) -> FusedOutcome {
    debug_assert_eq!(spec.parameters.len(), outcomes.len(), "one outcome per fused parameter");
    let weight_sum = spec.weight_sum();
    let similarities = devices
        .iter()
        .map(|&device| {
            let fused: f64 = spec
                .parameters
                .iter()
                .zip(outcomes)
                .map(|(&(_, w), outcome)| {
                    w * outcome.borrow().similarity_to(&device).unwrap_or(0.0) / weight_sum
                })
                .sum();
            (device, fused)
        })
        .collect();
    FusedOutcome { similarities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::matching::ReferenceDb;
    use crate::signature::Signature;
    use crate::similarity::SimilarityMeasure;
    use wifiprint_ieee80211::FrameKind;

    #[test]
    fn specs_have_expected_shapes() {
        assert_eq!(FusionSpec::timing_trio().len(), 3);
        assert_eq!(FusionSpec::all_equal().len(), 5);
        assert_eq!(FusionSpec::single(NetworkParameter::FrameSize).len(), 1);
        assert!(!FusionSpec::all_equal().is_empty());
        for spec in [FusionSpec::timing_trio(), FusionSpec::all_equal()] {
            spec.validate().expect("built-in specs validate");
        }
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let empty = FusionSpec { parameters: vec![] };
        assert!(empty.validate().is_err());
        let dup = FusionSpec::equal_weights([
            NetworkParameter::FrameSize,
            NetworkParameter::FrameSize,
        ]);
        assert!(dup.validate().is_err());
        let negative = FusionSpec {
            parameters: vec![(NetworkParameter::FrameSize, -1.0)],
        };
        assert!(negative.validate().is_err());
        let nan = FusionSpec {
            parameters: vec![(NetworkParameter::FrameSize, f64::NAN)],
        };
        assert!(nan.validate().is_err());
        let zero = FusionSpec {
            parameters: vec![
                (NetworkParameter::FrameSize, 0.0),
                (NetworkParameter::InterArrivalTime, 0.0),
            ],
        };
        assert!(zero.validate().is_err());
    }

    fn outcome_for(values: &[(u64, f64)]) -> MatchOutcome {
        // Builds a real MatchOutcome by matching size-signatures tuned to
        // produce the wanted per-device similarity ranking is overkill;
        // instead go through a ReferenceDb with one shared candidate and
        // read similarities directly where exact values matter below.
        // Here we only need *a* MatchOutcome carrier, so use the matching
        // path with self-similar signatures and then assert on fused
        // arithmetic with hand-built vectors via fuse_outcomes.
        let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
        let mut db = ReferenceDb::new();
        for &(idx, center) in values {
            let mut sig = Signature::new();
            for _ in 0..20 {
                sig.record(FrameKind::Data, center, &cfg);
            }
            db.insert(MacAddr::from_index(idx), sig).unwrap();
        }
        let mut probe = Signature::new();
        for _ in 0..20 {
            probe.record(FrameKind::Data, values[0].1, &cfg);
        }
        db.match_signature(&probe, SimilarityMeasure::Cosine)
    }

    #[test]
    fn fuse_outcomes_averages_with_weights() {
        // Two parameters, weights 3 and 1. Parameter A scores d1=1.0
        // (self-match) and d2=0.0 (disjoint bins); parameter B is the
        // mirror image, so fused(d1)=0.75, fused(d2)=0.25.
        let a = outcome_for(&[(1, 100.0), (2, 2000.0)]);
        let b = outcome_for(&[(2, 100.0), (1, 2000.0)]);
        let spec = FusionSpec {
            parameters: vec![
                (NetworkParameter::FrameSize, 3.0),
                (NetworkParameter::InterArrivalTime, 1.0),
            ],
        };
        let devices = [MacAddr::from_index(1), MacAddr::from_index(2)];
        let fused = fuse_outcomes(&spec, &[a, b], &devices);
        assert_eq!(fused.similarities().len(), 2);
        assert!((fused.similarity_to(&devices[0]).unwrap() - 0.75).abs() < 1e-9);
        assert!((fused.similarity_to(&devices[1]).unwrap() - 0.25).abs() < 1e-9);
        assert_eq!(fused.best().unwrap().0, devices[0]);
        assert_eq!(fused.top(1)[0].0, devices[0]);
        assert_eq!(fused.above_threshold(0.5).count(), 1);
        assert_eq!(fused.similarity_to(&MacAddr::from_index(9)), None);
    }

    #[test]
    fn fuse_outcomes_restricts_to_the_common_device_set() {
        // Parameter A knows devices 1 and 2; the fused set is just {1}.
        let a = outcome_for(&[(1, 100.0), (2, 2000.0)]);
        let spec = FusionSpec::single(NetworkParameter::FrameSize);
        let fused = fuse_outcomes(&spec, &[a], &[MacAddr::from_index(1)]);
        assert_eq!(fused.similarities().len(), 1);
        assert!((fused.similarity_to(&MacAddr::from_index(1)).unwrap() - 1.0).abs() < 1e-6);
    }
}
