//! Histogram similarity measures.
//!
//! The paper uses the cosine similarity (Definition 2) citing Cha's
//! taxonomy of histogram distances. Several alternatives from that taxonomy
//! are provided for the ablation benchmarks; all are normalised so that 1
//! means identical and 0 means disjoint.
//!
//! *Erratum note*: Definition 2 in the paper writes `1 −` in front of the
//! cosine, yet the surrounding text specifies "equals 1 if two signatures
//! are exactly the same … 0 when signatures have no intersection", and
//! Algorithm 1 accumulates the value as a similarity. The `1 −` is treated
//! as a typo; [`SimilarityMeasure::Cosine`] is plain cosine similarity.

use core::fmt;
use core::str::FromStr;

/// A similarity measure between two percentage-frequency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SimilarityMeasure {
    /// Cosine similarity (the paper's measure, Definition 2).
    #[default]
    Cosine,
    /// Histogram intersection: `Σ min(cⱼ, rⱼ)`.
    Intersection,
    /// Bhattacharyya coefficient: `Σ √(cⱼ·rⱼ)`.
    Bhattacharyya,
    /// `1 − L1/2`: total-variation complement.
    TotalVariation,
    /// `1 / (1 + L2)`: inverse Euclidean distance.
    InverseEuclidean,
}

impl SimilarityMeasure {
    /// All provided measures, for ablation sweeps.
    pub const ALL: [SimilarityMeasure; 5] = [
        SimilarityMeasure::Cosine,
        SimilarityMeasure::Intersection,
        SimilarityMeasure::Bhattacharyya,
        SimilarityMeasure::TotalVariation,
        SimilarityMeasure::InverseEuclidean,
    ];

    /// Computes the similarity of two frequency vectors.
    ///
    /// Both inputs must be the same length; frequency vectors from
    /// [`Histogram::frequencies`](crate::Histogram::frequencies) with equal
    /// [`BinSpec`](crate::BinSpec)s always are. A length mismatch means
    /// the histograms were binned incompatibly and carries no similarity
    /// information, so it deterministically scores 0.0 — in release *and*
    /// debug builds. Also returns 0.0 when either vector is all-zero (an
    /// empty histogram matches nothing).
    pub fn compute(self, candidate: &[f64], reference: &[f64]) -> f64 {
        if candidate.len() != reference.len() {
            return 0.0;
        }
        // An empty histogram carries no information and matches nothing.
        if candidate.iter().all(|&x| x == 0.0) || reference.iter().all(|&x| x == 0.0) {
            return 0.0;
        }
        self.compute_dense(candidate, reference)
    }

    /// The raw kernel over equal-length, not-all-zero rows: the matrix
    /// sweep in [`matching`](crate::matching) hoists the zero/length
    /// checks out of the per-device loop and calls this directly.
    #[inline]
    pub(crate) fn compute_dense(self, candidate: &[f64], reference: &[f64]) -> f64 {
        match self {
            SimilarityMeasure::Cosine => cosine(candidate, reference),
            SimilarityMeasure::Intersection => {
                candidate.iter().zip(reference).map(|(&c, &r)| c.min(r)).sum()
            }
            SimilarityMeasure::Bhattacharyya => {
                candidate.iter().zip(reference).map(|(&c, &r)| (c * r).sqrt()).sum()
            }
            SimilarityMeasure::TotalVariation => {
                let l1: f64 = candidate.iter().zip(reference).map(|(&c, &r)| (c - r).abs()).sum();
                (1.0 - l1 / 2.0).max(0.0)
            }
            SimilarityMeasure::InverseEuclidean => {
                let l2: f64 = candidate
                    .iter()
                    .zip(reference)
                    .map(|(&c, &r)| (c - r) * (c - r))
                    .sum::<f64>()
                    .sqrt();
                1.0 / (1.0 + l2)
            }
        }
    }

    /// The dense kernel over the `f32` rows the matching engine packs
    /// ([`matching`](crate::matching)): inputs are `f32` (half the memory
    /// traffic of the `f64` form), every sum accumulates in `f64`, so the
    /// only divergence from [`SimilarityMeasure::compute_dense`] is the
    /// one-off `f64 → f32` quantisation of the stored rows — bounded by
    /// [`F32_SCORE_TOLERANCE`](crate::matching::F32_SCORE_TOLERANCE).
    ///
    /// The cosine arm is the scalar form; the matrix sweep never calls it
    /// (it uses the dispatched [`kernel`](crate::kernel) dot with
    /// precomputed norms instead), but property tests pin both to each
    /// other.
    #[inline]
    pub(crate) fn compute_dense_f32(self, candidate: &[f32], reference: &[f32]) -> f64 {
        match self {
            SimilarityMeasure::Cosine => {
                let dot = f64::from(crate::kernel::dot_f32(candidate, reference));
                let na = f64::from(crate::kernel::dot_f32(candidate, candidate));
                let nb = f64::from(crate::kernel::dot_f32(reference, reference));
                if na <= 0.0 || nb <= 0.0 {
                    0.0
                } else {
                    (dot / (na.sqrt() * nb.sqrt())).clamp(0.0, 1.0)
                }
            }
            SimilarityMeasure::Intersection => {
                candidate.iter().zip(reference).map(|(&c, &r)| f64::from(c.min(r))).sum()
            }
            SimilarityMeasure::Bhattacharyya => candidate
                .iter()
                .zip(reference)
                .map(|(&c, &r)| (f64::from(c) * f64::from(r)).sqrt())
                .sum(),
            SimilarityMeasure::TotalVariation => {
                let l1: f64 = candidate
                    .iter()
                    .zip(reference)
                    .map(|(&c, &r)| (f64::from(c) - f64::from(r)).abs())
                    .sum();
                (1.0 - l1 / 2.0).max(0.0)
            }
            SimilarityMeasure::InverseEuclidean => {
                let l2: f64 = candidate
                    .iter()
                    .zip(reference)
                    .map(|(&c, &r)| {
                        let d = f64::from(c) - f64::from(r);
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt();
                1.0 / (1.0 + l2)
            }
        }
    }

    /// The cosine *distance* form as literally printed in the paper's
    /// Definition 2 (`1 − cosine`); provided for completeness.
    pub fn paper_cosine_distance(candidate: &[f64], reference: &[f64]) -> f64 {
        1.0 - cosine(candidate, reference)
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na.sqrt() * nb.sqrt())).clamp(0.0, 1.0)
    }
}

impl fmt::Display for SimilarityMeasure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SimilarityMeasure::Cosine => "cosine",
            SimilarityMeasure::Intersection => "intersection",
            SimilarityMeasure::Bhattacharyya => "bhattacharyya",
            SimilarityMeasure::TotalVariation => "total-variation",
            SimilarityMeasure::InverseEuclidean => "inverse-euclidean",
        };
        f.write_str(s)
    }
}

/// Error parsing a [`SimilarityMeasure`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSimilarityMeasureError(String);

impl fmt::Display for ParseSimilarityMeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown similarity measure {:?}", self.0)
    }
}

impl std::error::Error for ParseSimilarityMeasureError {}

impl FromStr for SimilarityMeasure {
    type Err = ParseSimilarityMeasureError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cosine" => Ok(SimilarityMeasure::Cosine),
            "intersection" => Ok(SimilarityMeasure::Intersection),
            "bhattacharyya" => Ok(SimilarityMeasure::Bhattacharyya),
            "total-variation" => Ok(SimilarityMeasure::TotalVariation),
            "inverse-euclidean" => Ok(SimilarityMeasure::InverseEuclidean),
            other => Err(ParseSimilarityMeasureError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 4] = [0.5, 0.5, 0.0, 0.0];
    const B: [f64; 4] = [0.0, 0.0, 0.5, 0.5];

    #[test]
    fn identical_distributions_score_one() {
        for m in SimilarityMeasure::ALL {
            let s = m.compute(&A, &A);
            assert!((s - 1.0).abs() < 1e-12, "{m}: {s}");
        }
    }

    #[test]
    fn disjoint_distributions_score_zero_for_overlap_measures() {
        for m in [
            SimilarityMeasure::Cosine,
            SimilarityMeasure::Intersection,
            SimilarityMeasure::Bhattacharyya,
            SimilarityMeasure::TotalVariation,
        ] {
            let s = m.compute(&A, &B);
            assert!(s.abs() < 1e-12, "{m}: {s}");
        }
        // Inverse Euclidean is small but nonzero for disjoint inputs.
        let s = SimilarityMeasure::InverseEuclidean.compute(&A, &B);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn mismatched_lengths_score_zero_in_release_too() {
        let short = [0.5, 0.5];
        for m in SimilarityMeasure::ALL {
            assert_eq!(m.compute(&short, &A), 0.0, "{m}");
            assert_eq!(m.compute(&A, &short), 0.0, "{m}");
            assert_eq!(m.compute(&[], &A), 0.0, "{m}");
        }
    }

    #[test]
    fn empty_vectors_score_zero() {
        let zero = [0.0; 4];
        for m in SimilarityMeasure::ALL {
            assert_eq!(m.compute(&zero, &A), 0.0, "{m}");
            assert_eq!(m.compute(&A, &zero), 0.0, "{m}");
        }
    }

    #[test]
    fn symmetry() {
        let c = [0.1, 0.2, 0.3, 0.4];
        for m in SimilarityMeasure::ALL {
            assert!((m.compute(&A, &c) - m.compute(&c, &A)).abs() < 1e-12, "{m}");
        }
    }

    #[test]
    fn partial_overlap_in_unit_interval() {
        let c = [0.25, 0.25, 0.25, 0.25];
        for m in SimilarityMeasure::ALL {
            let s = m.compute(&A, &c);
            assert!((0.0..=1.0).contains(&s), "{m}: {s}");
            assert!(s > 0.0 && s < 1.0, "{m}: {s}");
        }
    }

    #[test]
    fn dense_f32_kernel_tracks_dense_f64() {
        // Awkward values (thirds, sevenths) so f64 → f32 actually rounds.
        let c64: Vec<f64> = (0..251).map(|i| (f64::from(i % 3) + 1.0) / (3.0 * 251.0)).collect();
        let r64: Vec<f64> = (0..251).map(|i| (f64::from(i % 7) + 1.0) / (7.0 * 251.0)).collect();
        let c32: Vec<f32> = c64.iter().map(|&v| v as f32).collect();
        let r32: Vec<f32> = r64.iter().map(|&v| v as f32).collect();
        for m in SimilarityMeasure::ALL {
            let want = m.compute_dense(&c64, &r64);
            let got = m.compute_dense_f32(&c32, &r32);
            assert!(
                (got - want).abs() < crate::matching::F32_SCORE_TOLERANCE,
                "{m}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn paper_distance_form_inverts_cosine() {
        assert!(SimilarityMeasure::paper_cosine_distance(&A, &A).abs() < 1e-12);
        assert!((SimilarityMeasure::paper_cosine_distance(&A, &B) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn names_round_trip() {
        for m in SimilarityMeasure::ALL {
            let parsed: SimilarityMeasure = m.to_string().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("euclidean-ish".parse::<SimilarityMeasure>().is_err());
    }
}
