//! Property tests for histograms, similarity measures and metrics — the
//! similarity properties run against the *cached* frequency path
//! ([`Histogram::frequencies`] borrows) and the SoA matching engine, and
//! the dispatched SIMD dot kernel is pinned to the portable fallback and
//! an `f64` reference on arbitrary lengths and alignments.

use proptest::prelude::*;
use wifiprint_core::metrics::{identification_points, similarity_curve, MatchSet};
use wifiprint_core::{
    kernel, BinSpec, EvalConfig, FrameFilter, FusedExtractor, Histogram, MatchScratch,
    NetworkParameter, ParameterExtractor, ReferenceDb, Signature, SimilarityMeasure,
    TxTimeEstimator,
};
use wifiprint_ieee80211::{Frame, FrameKind, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

/// Two histograms over one shared spec, filled from generated samples
/// (possibly empty), exercising the cached-frequency path.
fn histogram_pair(
    width: f64,
    a: &[f64],
    b: &[f64],
) -> (Histogram, Histogram) {
    let spec = BinSpec::uniform_to(2500.0, width);
    let mut ha = Histogram::new(spec.clone());
    for &v in a {
        ha.add(v);
    }
    let mut hb = Histogram::new(spec);
    for &v in b {
        hb.add(v);
    }
    (ha, hb)
}

fn arb_freqs(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, len).prop_map(|raw| {
        let sum: f64 = raw.iter().sum();
        if sum == 0.0 {
            raw
        } else {
            raw.into_iter().map(|x| x / sum).collect()
        }
    })
}

fn arb_match_set() -> impl Strategy<Value = MatchSet> {
    (0.0f64..=1.0, prop::collection::vec(0.0f64..=1.0, 1..20)).prop_map(|(true_sim, wrong)| {
        let best_wrong = wrong.iter().copied().fold(0.0f64, f64::max);
        MatchSet {
            true_device: MacAddr::from_index(1),
            true_sim,
            best_is_true: true_sim >= best_wrong,
            best_sim: true_sim.max(best_wrong),
            wrong_sims: wrong,
        }
    })
}

proptest! {
    #[test]
    fn histogram_frequencies_sum_to_one(
        values in prop::collection::vec(-100.0f64..5000.0, 1..200),
        width in 1.0f64..100.0,
    ) {
        let mut h = Histogram::new(BinSpec::uniform_to(2500.0, width));
        for v in &values {
            h.add(*v);
        }
        let sum: f64 = h.frequencies().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    #[test]
    fn bin_index_always_in_range(value in any::<f64>(), width in 0.1f64..500.0, max in 10.0f64..5000.0) {
        let spec = BinSpec::uniform_to(max, width);
        let idx = spec.bin_index(value);
        prop_assert!(idx < spec.bin_count());
    }

    #[test]
    fn similarity_in_unit_interval(a in arb_freqs(40), b in arb_freqs(40)) {
        for m in SimilarityMeasure::ALL {
            let s = m.compute(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "{m}: {s}");
        }
    }

    #[test]
    fn similarity_symmetric(a in arb_freqs(30), b in arb_freqs(30)) {
        for m in SimilarityMeasure::ALL {
            let ab = m.compute(&a, &b);
            let ba = m.compute(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9, "{m}");
        }
    }

    #[test]
    fn self_similarity_is_one(a in arb_freqs(30)) {
        prop_assume!(a.iter().any(|&x| x > 0.0));
        for m in SimilarityMeasure::ALL {
            let s = m.compute(&a, &a);
            prop_assert!((s - 1.0).abs() < 1e-9, "{m}: {s}");
        }
    }

    #[test]
    fn curve_monotone_and_auc_bounded(sets in prop::collection::vec(arb_match_set(), 1..40)) {
        let curve = similarity_curve(&sets, 64);
        prop_assert!((0.0..=1.0).contains(&curve.auc));
        for pair in curve.points.windows(2) {
            prop_assert!(pair[1].fpr >= pair[0].fpr - 1e-12);
            prop_assert!(pair[1].tpr >= pair[0].tpr - 1e-12);
        }
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        prop_assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        prop_assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn identification_fpr_and_ratio_monotone(sets in prop::collection::vec(arb_match_set(), 1..40)) {
        let points = identification_points(&sets, 64);
        for pair in points.windows(2) {
            prop_assert!(pair[1].fpr >= pair[0].fpr - 1e-12);
            prop_assert!(pair[1].ratio >= pair[0].ratio - 1e-12);
            prop_assert!(pair[1].threshold <= pair[0].threshold);
        }
        // ratio + fpr never exceeds 1 (each instance counted once).
        for p in &points {
            prop_assert!(p.ratio + p.fpr <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn all_measures_stay_in_unit_interval_on_cached_frequencies(
        a in prop::collection::vec(0.0f64..3000.0, 0..150),
        b in prop::collection::vec(0.0f64..3000.0, 0..150),
        width in 5.0f64..250.0,
    ) {
        let (ha, hb) = histogram_pair(width, &a, &b);
        for m in SimilarityMeasure::ALL {
            let s = m.compute(ha.frequencies(), hb.frequencies());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "{m}: {s}");
        }
    }

    #[test]
    fn all_measures_symmetric_on_cached_frequencies(
        a in prop::collection::vec(0.0f64..3000.0, 1..150),
        b in prop::collection::vec(0.0f64..3000.0, 1..150),
        width in 5.0f64..250.0,
    ) {
        let (ha, hb) = histogram_pair(width, &a, &b);
        for m in SimilarityMeasure::ALL {
            let ab = m.compute(ha.frequencies(), hb.frequencies());
            let ba = m.compute(hb.frequencies(), ha.frequencies());
            prop_assert!((ab - ba).abs() < 1e-9, "{m}: {ab} vs {ba}");
        }
    }

    #[test]
    fn identical_histograms_score_one_on_cached_frequencies(
        values in prop::collection::vec(0.0f64..3000.0, 1..150),
        width in 5.0f64..250.0,
    ) {
        let (h, _) = histogram_pair(width, &values, &[]);
        for m in SimilarityMeasure::ALL {
            let s = m.compute(h.frequencies(), h.frequencies());
            prop_assert!((s - 1.0).abs() < 1e-9, "{m}: {s}");
        }
    }

    #[test]
    fn mismatched_bin_counts_score_zero_for_every_measure(
        values in prop::collection::vec(0.0f64..900.0, 1..60),
    ) {
        let spec_a = BinSpec::uniform_to(1000.0, 10.0);
        let spec_b = BinSpec::uniform_to(1000.0, 25.0); // different bin count
        let mut ha = Histogram::new(spec_a);
        let mut hb = Histogram::new(spec_b);
        for &v in &values {
            ha.add(v);
            hb.add(v);
        }
        for m in SimilarityMeasure::ALL {
            prop_assert_eq!(m.compute(ha.frequencies(), hb.frequencies()), 0.0, "{}", m);
        }
    }

    #[test]
    fn scratch_matching_agrees_with_owned_matching(
        per_device in prop::collection::vec(
            prop::collection::vec(0.0f64..2400.0, 1..40), 1..12),
        cand_values in prop::collection::vec(0.0f64..2400.0, 1..40),
    ) {
        let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
        let mut db = ReferenceDb::new();
        for (i, values) in per_device.iter().enumerate() {
            let mut sig = Signature::new();
            for (j, &v) in values.iter().enumerate() {
                let kind = if j % 3 == 0 { FrameKind::ProbeReq } else { FrameKind::Data };
                sig.record(kind, v, &cfg);
            }
            db.insert(MacAddr::from_index(i as u64 + 1), sig).unwrap();
        }
        let mut cand = Signature::new();
        for &v in &cand_values {
            cand.record(FrameKind::Data, v, &cfg);
        }
        let mut scratch = MatchScratch::new();
        for m in SimilarityMeasure::ALL {
            let owned = db.match_signature(&cand, m);
            let view = db.match_signature_with(&cand, m, &mut scratch);
            prop_assert_eq!(view.similarities(), owned.similarities(), "{}", m);
            for &(_, s) in view.similarities() {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "{m}: {s}");
            }
        }
    }

    // Kernel equivalence: the dispatched SIMD path (AVX2/NEON where the
    // host supports it), the portable unrolled fallback, and a plain f64
    // reference must agree on arbitrary lengths — including SIMD-width
    // remainders — and arbitrary slice offsets (alignments).
    #[test]
    fn simd_and_portable_kernels_agree_on_random_lengths_and_alignments(
        values in prop::collection::vec(0.0f64..1.0, 2..600),
        offset in 0usize..17,
    ) {
        let a: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let b: Vec<f32> = values.iter().rev().map(|&v| (v * 0.7 + 0.1) as f32).collect();
        let offset = offset.min(a.len() - 1);
        let (sa, sb) = (&a[offset..], &b[offset..]);
        let reference: f64 =
            sa.iter().zip(sb).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
        let dispatched = f64::from(kernel::dot_f32(sa, sb));
        let portable = f64::from(kernel::dot_f32_portable(sa, sb));
        let tol = 1e-4 * (1.0 + reference.abs());
        prop_assert!((dispatched - reference).abs() < tol,
            "{} dispatched {} vs reference {}", kernel::active(), dispatched, reference);
        prop_assert!((portable - reference).abs() < tol,
            "portable {portable} vs reference {reference}");
        prop_assert!((dispatched - portable).abs() < tol);
        // And the f64 kernel is exact to accumulation order.
        let fa: Vec<f64> = sa.iter().map(|&v| f64::from(v)).collect();
        let fb: Vec<f64> = sb.iter().map(|&v| f64::from(v)).collect();
        prop_assert!((kernel::dot_f64(&fa, &fb) - reference).abs() < 1e-9);
    }

    // Tiling equivalence: match_tile over K candidates must reproduce K
    // independent match_signature_with sweeps exactly (same arithmetic
    // per pair, only the loop order differs).
    #[test]
    fn match_tile_equals_k_independent_sweeps(
        per_device in prop::collection::vec(
            prop::collection::vec(0.0f64..2400.0, 1..40), 1..10),
        per_candidate in prop::collection::vec(
            prop::collection::vec(0.0f64..2400.0, 0..40), 1..12),
    ) {
        let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
        let mut db = ReferenceDb::new();
        for (i, values) in per_device.iter().enumerate() {
            let mut sig = Signature::new();
            for (j, &v) in values.iter().enumerate() {
                let kind = if j % 3 == 0 { FrameKind::ProbeReq } else { FrameKind::Data };
                sig.record(kind, v, &cfg);
            }
            db.insert(MacAddr::from_index(i as u64 + 1), sig).unwrap();
        }
        let candidates: Vec<Signature> = per_candidate
            .iter()
            .map(|values| {
                let mut sig = Signature::new();
                for (j, &v) in values.iter().enumerate() {
                    let kind = if j % 5 == 0 { FrameKind::Beacon } else { FrameKind::Data };
                    sig.record(kind, v, &cfg);
                }
                sig
            })
            .collect();
        let mut tile_scratch = MatchScratch::new();
        let mut single_scratch = MatchScratch::new();
        for m in SimilarityMeasure::ALL {
            let tile = db.match_tile(&candidates, m, &mut tile_scratch);
            prop_assert_eq!(tile.candidate_count(), candidates.len());
            let tiled: Vec<Vec<(MacAddr, f64)>> =
                tile.views().map(|v| v.similarities().to_vec()).collect();
            for (cand, got) in candidates.iter().zip(tiled) {
                let want = db.match_signature_with(cand, m, &mut single_scratch);
                prop_assert_eq!(&got[..], want.similarities(), "{}", m);
            }
        }
    }

    #[test]
    fn merged_histogram_equals_bulk_histogram(
        a in prop::collection::vec(0.0f64..1000.0, 0..50),
        b in prop::collection::vec(0.0f64..1000.0, 0..50),
    ) {
        let spec = BinSpec::uniform_to(1000.0, 10.0);
        let mut ha = Histogram::new(spec.clone());
        for v in &a { ha.add(*v); }
        let mut hb = Histogram::new(spec.clone());
        for v in &b { hb.add(*v); }
        ha.merge(&hb);
        let mut bulk = Histogram::new(spec);
        for v in a.iter().chain(&b) { bulk.add(*v); }
        prop_assert_eq!(ha, bulk);
    }

    // The fused single-pass extractor must be indistinguishable from
    // five independent per-parameter extractors on arbitrary capture
    // streams — same `Observation` (device, kind, value, timestamp) or
    // same absence, frame by frame, parameter by parameter, across
    // anonymous frames (ACK/CTS), retries, heterogeneous rates and
    // filters.
    #[test]
    fn fused_extractor_equals_five_parameter_extractors(
        specs in prop::collection::vec(
            (0u8..6, 1u64..5, 1u64..200_000, 0usize..1500, 0u8..12, any::<bool>()),
            1..60,
        ),
        estimator_measured in any::<bool>(),
        exclude_retries in any::<bool>(),
    ) {
        // Build an arbitrary (but in-order) capture stream.
        let mut t_us = 0u64;
        let frames: Vec<CapturedFrame> = specs
            .into_iter()
            .map(|(kind, dev, gap, payload, rate_idx, retry)| {
                t_us += gap;
                let sta = MacAddr::from_index(dev);
                let peer = MacAddr::from_index(42);
                let frame = match kind {
                    0 => Frame::data_to_ds(sta, peer, peer, payload),
                    1 => Frame::ack(sta),
                    2 => Frame::cts(sta, 100),
                    3 => Frame::rts(peer, sta, 300),
                    4 => Frame::probe_req(sta, vec![0; payload.min(200)]),
                    _ => Frame::beacon(sta, vec![0; payload.min(200)]),
                };
                let rate = Rate::ALL_BG[rate_idx as usize];
                let mut cap =
                    CapturedFrame::from_frame(&frame, rate, Nanos::from_micros(t_us), -50);
                cap.retry = retry;
                cap
            })
            .collect();

        let estimator = if estimator_measured {
            TxTimeEstimator::MeasuredAirTime
        } else {
            TxTimeEstimator::SizeOverRate
        };
        let filter = FrameFilter { exclude_retries, ..FrameFilter::default() };

        let mut fused = FusedExtractor::with_options(estimator, filter.clone());
        let mut singles: Vec<ParameterExtractor> = NetworkParameter::ALL
            .into_iter()
            .map(|p| ParameterExtractor::with_options(p, estimator, filter.clone()))
            .collect();
        for frame in &frames {
            let fused_obs = fused.push(frame);
            for (param, single) in NetworkParameter::ALL.into_iter().zip(&mut singles) {
                let want = single.push(frame);
                let got = fused_obs.as_ref().and_then(|o| o.observation(param));
                prop_assert_eq!(got, want, "{} diverged at t={} ns", param, frame.t_end.as_nanos());
            }
        }
    }
}
