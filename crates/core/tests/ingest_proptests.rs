//! Property tests for the supervised ingest front: under
//! `OverloadPolicy::Block` with no faults and no watchdog, the pipeline
//! delivers events *bit-identical* to synchronous `observe` on both
//! engines; poison frames quarantined by panic isolation behave exactly
//! as if they had never been captured; and every run reconciles exactly
//! against the `EngineHealth` conservation law.

use proptest::prelude::*;
use wifiprint_core::{
    Engine, EvalConfig, FusionSpec, IngestConfig, IngestPipeline, MultiConfig, MultiEngine,
    NetworkParameter, ResilienceConfig,
};
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

fn capture(dev: u64, t_us: u64, payload: usize, rate_idx: u8) -> CapturedFrame {
    let sta = MacAddr::from_index(dev + 1);
    let ap = MacAddr::from_index(99);
    let f = Frame::data_to_ds(sta, ap, ap, payload);
    CapturedFrame::from_frame(
        &f,
        Rate::ALL_BG[rate_idx as usize],
        Nanos::from_micros(t_us),
        -50,
    )
}

/// A capture-ordered stream with strictly increasing timestamps.
fn arb_ordered_stream() -> impl Strategy<Value = Vec<CapturedFrame>> {
    prop::collection::vec((0u64..4, 1u64..12_000, 60usize..800, 0u8..12), 30..120).prop_map(
        |specs| {
            let mut t_us = 0u64;
            specs
                .into_iter()
                .map(|(dev, gap, payload, rate)| {
                    t_us += gap;
                    capture(dev, t_us, payload, rate)
                })
                .collect()
        },
    )
}

fn build_engine(resilience: ResilienceConfig) -> Engine {
    let mut cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        .with_min_observations(3);
    cfg.window = Nanos::from_millis(300);
    Engine::builder()
        .config(cfg)
        .train_for(Nanos::from_millis(600))
        .resilience(resilience)
        .build()
        .expect("valid engine configuration")
}

fn build_multi(resilience: ResilienceConfig) -> MultiEngine {
    let cfg = MultiConfig::default()
        .with_min_observations(3)
        .with_window(Nanos::from_millis(300));
    MultiEngine::builder()
        .spec(FusionSpec::all_equal())
        .config(cfg)
        .train_for(Nanos::from_millis(600))
        .resilience(resilience)
        .build()
        .expect("valid engine configuration")
}

/// The synchronous baseline: observe + finish, events as a Debug string.
fn sync_events_engine(frames: &[CapturedFrame]) -> String {
    let mut engine = build_engine(ResilienceConfig::default());
    let mut events = Vec::new();
    for f in frames {
        events.extend(engine.observe(f).expect("in-order frame"));
    }
    events.extend(engine.finish().expect("finish"));
    format!("{events:?}")
}

fn sync_events_multi(frames: &[CapturedFrame]) -> String {
    let mut engine = build_multi(ResilienceConfig::default());
    let mut events = Vec::new();
    for f in frames {
        events.extend(engine.observe(f).expect("in-order frame"));
    }
    events.extend(engine.finish().expect("finish"));
    format!("{events:?}")
}

/// The chaos probe these tests arm: a zero-size frame is "poison".
fn is_poison(frame: &CapturedFrame) -> bool {
    frame.size == 0
}

proptest! {
    // The acceptance-criteria property: with `Block` (lossless
    // back-pressure), no faults and no watchdog, the supervised pipeline
    // is observationally indistinguishable from calling `observe`
    // synchronously — same events, bit for bit, and an exactly
    // reconciled ledger.
    #[test]
    fn block_pipeline_is_bit_identical_to_sync_observe_on_the_engine(
        frames in arb_ordered_stream(),
        capacity in 1usize..64,
    ) {
        let want = sync_events_engine(&frames);
        let cfg = IngestConfig::default().with_capacity(capacity);
        let pipeline = IngestPipeline::spawn(build_engine(ResilienceConfig::default()), cfg)
            .expect("spawn");
        for f in &frames {
            pipeline.submit(f).expect("open pipeline");
        }
        let report = pipeline.finish().expect("terminates");
        prop_assert_eq!(format!("{:?}", report.events), want);
        prop_assert_eq!(report.health.frames_seen as usize, frames.len());
        prop_assert_eq!(report.health.frames_shed, 0);
        prop_assert_eq!(report.health.frames_quarantined, 0);
        prop_assert_eq!(report.delivered as usize, frames.len());
        prop_assert!(report.is_reconciled(), "health: {:?}", report.health);
    }

    #[test]
    fn block_pipeline_is_bit_identical_to_sync_observe_on_the_multi_engine(
        frames in arb_ordered_stream(),
        capacity in 1usize..64,
    ) {
        let want = sync_events_multi(&frames);
        let cfg = IngestConfig::default().with_capacity(capacity);
        let pipeline = IngestPipeline::spawn(build_multi(ResilienceConfig::default()), cfg)
            .expect("spawn");
        for f in &frames {
            pipeline.submit(f).expect("open pipeline");
        }
        let report = pipeline.finish().expect("terminates");
        prop_assert_eq!(format!("{:?}", report.events), want);
        prop_assert!(report.is_reconciled(), "health: {:?}", report.health);
    }

    // Panic isolation as a stream property: a pipeline whose worker
    // panics on every poison frame delivers exactly the events of the
    // poison-free stream — a quarantined frame is indistinguishable from
    // one that was never captured — and the ledger still balances.
    #[test]
    fn quarantined_poison_frames_are_as_if_never_captured(
        frames in arb_ordered_stream(),
        poison_mask in any::<u64>(),
    ) {
        let mut frames = frames;
        let mut poisoned = 0u64;
        for (i, f) in frames.iter_mut().enumerate() {
            // A sparse pseudo-random subset (~1 in 8) turns poison.
            if (poison_mask >> (i % 64)) & 0x7 == 0x7 {
                f.size = 0;
                poisoned += 1;
            }
        }
        let clean: Vec<CapturedFrame> =
            frames.iter().copied().filter(|f| !is_poison(f)).collect();
        let want = sync_events_engine(&clean);

        let cfg = IngestConfig::default().with_panic_probe(Some(is_poison));
        let pipeline = IngestPipeline::spawn(build_engine(ResilienceConfig::default()), cfg)
            .expect("spawn");
        for f in &frames {
            pipeline.submit(f).expect("open pipeline");
        }
        let report = pipeline.finish().expect("survives every panic");
        prop_assert_eq!(format!("{:?}", report.events), want);
        prop_assert_eq!(report.health.frames_quarantined, poisoned);
        prop_assert_eq!(report.health.workers_restarted, poisoned);
        prop_assert_eq!(report.delivered as usize, clean.len());
        prop_assert!(report.is_reconciled(), "health: {:?}", report.health);
    }
}
