//! Property tests for the MAC-randomization linker.
//!
//! The load-bearing property: at rotation rate 0 (every device keeps
//! one stable address) the linker *is* the identity map — linked
//! identities correspond one-to-one with plain MAC identities, the
//! emitted events are bit-stable across replays, and no gallery sweep
//! ever runs. Plus conservation and eviction-consistency properties on
//! arbitrary interleaved sighting streams.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wifiprint_core::engine::linker::{LinkEvent, LinkerConfig, RotationLinker};
use wifiprint_core::{EvalConfig, FusionSpec, NetworkParameter, Signature};
use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos};

const IAT: NetworkParameter = NetworkParameter::InterArrivalTime;

/// A deterministic signature for device `device` on sighting `round`:
/// a stable per-device timing peak plus per-round noise.
fn device_signature(device: u64, round: u64) -> Signature {
    let eval = EvalConfig::for_parameter(IAT);
    let mut sig = Signature::new();
    let center = 40.0 + ((device.wrapping_mul(0x9E37_79B9) >> 8) % 2200) as f64;
    for i in 0..50u64 {
        let jitter = (((device ^ round.wrapping_mul(31)).wrapping_add(i) % 7) as f64) - 3.0;
        sig.record(FrameKind::Data, (center + jitter).clamp(1.0, 2400.0), &eval);
    }
    sig
}

fn linker() -> RotationLinker {
    RotationLinker::new(LinkerConfig::default().with_spec(FusionSpec::single(IAT)))
        .expect("valid config")
}

/// An interleaved stable-MAC sighting stream: `devices` devices, each
/// sighted once per round under its burned-in universal address.
fn stable_stream(devices: u64, rounds: u64) -> Vec<(MacAddr, Nanos, u64)> {
    let mut out = Vec::new();
    let mut tick = 0u64;
    for round in 0..rounds {
        for device in 0..devices {
            tick += 1;
            out.push((MacAddr::universal_from_index(device + 1), Nanos::from_millis(tick), round));
        }
    }
    out
}

proptest! {
    #[test]
    fn rotation_zero_is_the_identity_map(devices in 1u64..40, rounds in 1u64..6) {
        let mut l = linker();
        // Device address → linker identity, built from the event stream.
        let mut identity_of_mac: BTreeMap<MacAddr, u64> = BTreeMap::new();
        for (mac, at, round) in stable_stream(devices, rounds) {
            let device = u64::from(mac.octets()[5]) - 1;
            let sigs = [(IAT, device_signature(device, round))];
            match l.link(mac, at, &sigs) {
                LinkEvent::NewIdentity { identity, mac: m } => {
                    prop_assert_eq!(m, mac);
                    // First sighting of this address, and only then.
                    prop_assert_eq!(round, 0, "re-sighted address founded a second identity");
                    prop_assert!(identity_of_mac.insert(mac, identity.0).is_none());
                }
                LinkEvent::Linked { identity, mac: m, confidence } => {
                    prop_assert_eq!(m, mac);
                    prop_assert_eq!(confidence, 1.0, "stable MACs re-link by exact binding");
                    prop_assert_eq!(identity_of_mac.get(&mac), Some(&identity.0));
                }
                LinkEvent::Ambiguous { .. } => {
                    prop_assert!(false, "rotation 0 can never be ambiguous");
                }
            }
        }
        // Identity map: exactly one identity per device, one device per
        // identity.
        prop_assert_eq!(identity_of_mac.len() as u64, devices);
        let distinct: std::collections::BTreeSet<u64> =
            identity_of_mac.values().copied().collect();
        prop_assert_eq!(distinct.len() as u64, devices);
        // And the map was built without a single gallery sweep.
        let stats = l.stats();
        prop_assert_eq!(stats.shards_swept + stats.shards_pruned, 0);
        prop_assert_eq!(stats.linked_by_gallery, 0);
        prop_assert_eq!(stats.new_identities, devices);
        prop_assert_eq!(stats.linked_by_mac, devices * (rounds - 1));
        prop_assert!(stats.conserves());
    }

    #[test]
    fn rotation_zero_events_are_bit_stable(devices in 1u64..25, rounds in 1u64..5) {
        let run = || {
            let mut l = linker();
            let mut events = Vec::new();
            for (mac, at, round) in stable_stream(devices, rounds) {
                let device = u64::from(mac.octets()[5]) - 1;
                let sigs = [(IAT, device_signature(device, round))];
                events.push(l.link(mac, at, &sigs));
            }
            (events, l.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn decisions_always_conserve(
        sightings in prop::collection::vec((0u64..30, 0u64..8, any::<bool>()), 1..80),
    ) {
        // Arbitrary interleavings of randomized and universal addresses:
        // whatever the linker decides, every sighting produces exactly
        // one decision and the counters reconcile.
        let mut l = linker();
        let mut tick = 0u64;
        for (device, round, randomized) in sightings {
            tick += 1;
            let mac = if randomized {
                MacAddr::randomized(device.wrapping_mul(97) + round)
            } else {
                MacAddr::universal_from_index(device + 1)
            };
            let sigs = [(IAT, device_signature(device, round))];
            l.link(mac, Nanos::from_millis(tick), &sigs);
        }
        let stats = l.stats();
        prop_assert!(stats.conserves(), "{:?}", stats);
        prop_assert_eq!(stats.identities_retained as u64, stats.new_identities
            - stats.evicted_ttl - stats.evicted_cap);
    }

    #[test]
    fn cap_bounds_retained_identities(cap in 1usize..12, devices in 1u64..40) {
        let cfg = LinkerConfig::default()
            .with_spec(FusionSpec::single(IAT))
            .with_gallery_cap(cap);
        let mut l = RotationLinker::new(cfg).expect("valid config");
        for device in 0..devices {
            let sigs = [(IAT, device_signature(device, 0))];
            l.link(MacAddr::universal_from_index(device + 1), Nanos::from_millis(device), &sigs);
        }
        let stats = l.stats();
        prop_assert!(stats.identities_retained <= cap);
        prop_assert_eq!(stats.gallery_rows, stats.identities_retained);
        prop_assert!(stats.conserves());
    }
}
