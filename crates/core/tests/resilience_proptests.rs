//! Property tests for the ingest-hardening layer: the `Reorder` policy
//! restores any stream shuffled within a bounded horizon to bit-identical
//! event streams on both engines, and the `Drop`/`Reject` policies never
//! corrupt window state — the engine behaves exactly as if the late
//! frames had never been captured.

use proptest::prelude::*;
use wifiprint_core::{
    Engine, EngineHealth, EvalConfig, FusionSpec, LateFramePolicy, MultiConfig, MultiEngine,
    NetworkParameter, ResilienceConfig,
};
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

fn capture(dev: u64, t_us: u64, payload: usize, rate_idx: u8) -> CapturedFrame {
    let sta = MacAddr::from_index(dev + 1);
    let ap = MacAddr::from_index(99);
    let f = Frame::data_to_ds(sta, ap, ap, payload);
    CapturedFrame::from_frame(
        &f,
        Rate::ALL_BG[rate_idx as usize],
        Nanos::from_micros(t_us),
        -50,
    )
}

/// A capture-ordered stream with strictly increasing timestamps (gaps of
/// at least 1 µs), so re-sequencing after a shuffle is unambiguous.
fn arb_ordered_stream() -> impl Strategy<Value = Vec<CapturedFrame>> {
    prop::collection::vec((0u64..4, 1u64..12_000, 60usize..800, 0u8..12), 30..120).prop_map(
        |specs| {
            let mut t_us = 0u64;
            specs
                .into_iter()
                .map(|(dev, gap, payload, rate)| {
                    t_us += gap;
                    capture(dev, t_us, payload, rate)
                })
                .collect()
        },
    )
}

/// A dirty stream: arbitrary (wildly non-monotonic) timestamps.
fn arb_dirty_stream() -> impl Strategy<Value = Vec<CapturedFrame>> {
    prop::collection::vec((0u64..4, 0u64..2_000_000, 60usize..800, 0u8..12), 20..100).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(dev, t_us, payload, rate)| capture(dev, t_us, payload, rate))
                .collect()
        },
    )
}

/// Shuffles within consecutive blocks of `block` frames (seeded
/// Fisher–Yates per block): every frame is displaced fewer than `block`
/// positions from capture order.
fn block_shuffle(frames: &[CapturedFrame], block: usize, seed: u64) -> Vec<CapturedFrame> {
    let mut out = frames.to_vec();
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) as usize
    };
    for chunk in out.chunks_mut(block) {
        for i in (1..chunk.len()).rev() {
            let j = next() % (i + 1);
            chunk.swap(i, j);
        }
    }
    out
}

/// The subsequence a `Drop` ingest actually delivers: each frame whose
/// timestamp is not behind the newest already-kept one.
fn prefix_max_subsequence(frames: &[CapturedFrame]) -> Vec<CapturedFrame> {
    let mut kept: Vec<CapturedFrame> = Vec::new();
    let mut max_t: Option<Nanos> = None;
    for f in frames {
        if max_t.is_none_or(|m| f.t_end >= m) {
            max_t = Some(f.t_end);
            kept.push(*f);
        }
    }
    kept
}

/// Runs the single-parameter engine over `frames`; `Err` from `observe`
/// (a rejected late frame) is skipped, which must leave the engine
/// undisturbed. Returns the Debug rendering of the full event stream
/// plus the final health counters.
fn run_engine(frames: &[CapturedFrame], resilience: ResilienceConfig) -> (String, EngineHealth) {
    let mut cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        .with_min_observations(3);
    cfg.window = Nanos::from_millis(300);
    let mut engine = Engine::builder()
        .config(cfg)
        .train_for(Nanos::from_millis(600))
        .resilience(resilience)
        .build()
        .expect("valid engine configuration");
    let mut events = Vec::new();
    let mut rejected = 0u64;
    for f in frames {
        match engine.observe(f) {
            Ok(mut ev) => events.append(&mut ev),
            Err(_) => rejected += 1,
        }
    }
    events.extend(engine.finish().expect("finish"));
    let mut health = engine.health();
    // Fold rejections into the late counter so both reject and drop runs
    // report drops the same way to the caller.
    health.frames_late_dropped += rejected;
    (format!("{events:?}"), health)
}

/// Same shape for the fused five-parameter engine.
fn run_multi(frames: &[CapturedFrame], resilience: ResilienceConfig) -> (String, EngineHealth) {
    let cfg = MultiConfig::default()
        .with_min_observations(3)
        .with_window(Nanos::from_millis(300));
    let mut engine = MultiEngine::builder()
        .spec(FusionSpec::all_equal())
        .config(cfg)
        .train_for(Nanos::from_millis(600))
        .resilience(resilience)
        .build()
        .expect("valid engine configuration");
    let mut events = Vec::new();
    let mut rejected = 0u64;
    for f in frames {
        match engine.observe(f) {
            Ok(mut ev) => events.append(&mut ev),
            Err(_) => rejected += 1,
        }
    }
    events.extend(engine.finish().expect("finish"));
    let mut health = engine.health();
    health.frames_late_dropped += rejected;
    (format!("{events:?}"), health)
}

proptest! {
    // The tentpole property: `Reorder { max_lateness ≥ horizon }` makes
    // a stream shuffled within that horizon yield *bit-identical* events
    // to the in-order stream — same enrollments, same windows, same
    // similarity scores.
    #[test]
    fn reorder_restores_bounded_shuffles_on_the_engine(
        frames in arb_ordered_stream(),
        block in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let shuffled = block_shuffle(&frames, block, seed);
        let resilience = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 2 * block });
        let (ordered, ordered_health) = run_engine(&frames, resilience.clone());
        let (restored, restored_health) = run_engine(&shuffled, resilience);
        prop_assert_eq!(ordered, restored);
        prop_assert_eq!(restored_health.frames_late_dropped, 0,
            "a 2x-horizon buffer never drops a block-shuffled frame");
        prop_assert_eq!(ordered_health.frames_seen, restored_health.frames_seen);
        prop_assert_eq!(ordered_health.frames_reordered, 0);
    }

    #[test]
    fn reorder_restores_bounded_shuffles_on_the_multi_engine(
        frames in arb_ordered_stream(),
        block in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let shuffled = block_shuffle(&frames, block, seed);
        let resilience = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 2 * block });
        let (ordered, _) = run_multi(&frames, resilience.clone());
        let (restored, restored_health) = run_multi(&shuffled, resilience);
        prop_assert_eq!(ordered, restored);
        prop_assert_eq!(restored_health.frames_late_dropped, 0);
    }

    // `Drop` on a dirty stream behaves exactly like the clean stream
    // with the late frames never captured — window state is untouched by
    // what was dropped, and every drop is counted.
    #[test]
    fn drop_policy_equals_the_stream_with_late_frames_removed(
        dirty in arb_dirty_stream(),
    ) {
        let clean = prefix_max_subsequence(&dirty);
        let (want, _) = run_engine(&clean, ResilienceConfig::default());
        let drop_cfg = ResilienceConfig::default().with_late_policy(LateFramePolicy::Drop);
        let (got, health) = run_engine(&dirty, drop_cfg.clone());
        prop_assert_eq!(want, got);
        prop_assert_eq!(health.frames_late_dropped as usize, dirty.len() - clean.len());
        prop_assert_eq!(health.frames_seen as usize, dirty.len());

        let (want_multi, _) = run_multi(&clean, ResilienceConfig::default());
        let (got_multi, multi_health) = run_multi(&dirty, drop_cfg);
        prop_assert_eq!(want_multi, got_multi);
        prop_assert_eq!(multi_health.frames_late_dropped as usize, dirty.len() - clean.len());
    }

    // Default `Reject` returns an error for each late frame but leaves
    // the engine state exactly as if the frame had never arrived: the
    // caller can skip it and the surviving stream is processed
    // identically to a clean capture.
    #[test]
    fn reject_policy_skips_late_frames_without_corrupting_state(
        dirty in arb_dirty_stream(),
    ) {
        let clean = prefix_max_subsequence(&dirty);
        let (want, _) = run_engine(&clean, ResilienceConfig::default());
        let (got, health) = run_engine(&dirty, ResilienceConfig::default());
        prop_assert_eq!(want, got);
        prop_assert_eq!(health.frames_late_dropped as usize, dirty.len() - clean.len());

        let (want_multi, _) = run_multi(&clean, ResilienceConfig::default());
        let (got_multi, _) = run_multi(&dirty, ResilienceConfig::default());
        prop_assert_eq!(want_multi, got_multi);
    }
}
