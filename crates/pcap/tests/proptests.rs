//! Property tests: pcap files round-trip arbitrary record sequences.

use proptest::prelude::*;
use wifiprint_pcap::{LinkType, Reader, Record, TsPrecision, Writer};

fn arb_record() -> impl Strategy<Value = Record> {
    (
        any::<u32>(),
        0u32..1_000_000,
        prop::collection::vec(any::<u8>(), 0..300),
    )
        .prop_map(|(sec, micros, data)| Record::new(sec, micros * 1000, data))
}

proptest! {
    #[test]
    fn round_trip_many_records(records in prop::collection::vec(arb_record(), 0..50)) {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf, LinkType::Ieee80211Radiotap).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let r = Reader::new(&buf[..]).unwrap();
        let back: Result<Vec<_>, _> = r.collect();
        prop_assert_eq!(back.unwrap(), records);
    }

    #[test]
    fn nanos_round_trip(sec in any::<u32>(), nanos in 0u32..1_000_000_000, data in prop::collection::vec(any::<u8>(), 0..64)) {
        let rec = Record::new(sec, nanos, data);
        let mut buf = Vec::new();
        let mut w = Writer::with_precision(&mut buf, LinkType::Ieee80211, TsPrecision::Nanos).unwrap();
        w.write_record(&rec).unwrap();
        let mut r = Reader::new(&buf[..]).unwrap();
        prop_assert_eq!(r.next_record().unwrap().unwrap(), rec);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(reader) = Reader::new(&bytes[..]) {
            for rec in reader {
                if rec.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn truncating_a_valid_file_errors_cleanly(records in prop::collection::vec(arb_record(), 1..5), cut_fraction in 0.0f64..1.0) {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf, LinkType::Ieee80211).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let cut = 24 + ((buf.len() - 24) as f64 * cut_fraction) as usize;
        let reader = Reader::new(&buf[..cut]).unwrap();
        // Must either produce whole records or a clean error; never panic.
        for rec in reader {
            if rec.is_err() {
                break;
            }
        }
    }
}
