//! Parity property tests: the borrowed (zero-copy) replay decode is
//! bit-identical to the owned materializing path over arbitrary traces
//! round-tripped through the pcap writer — FCS-included and stripped,
//! both timestamp precisions, both byte orders.

use proptest::prelude::*;
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
use wifiprint_pcap::{LinkType, Reader, Record, Replay, TsPrecision, Writer};
use wifiprint_radiotap::{CapturedFrame, DecodeError, RxFlags, RxInfo};

/// Everything that determines one on-disk record.
#[derive(Debug, Clone)]
struct PacketSpec {
    pick: usize,
    len: usize,
    ts_us: u64,
    tsft_us: Option<u64>,
    rate: Option<Rate>,
    signal_dbm: Option<i8>,
    fcs_included: bool,
}

fn arb_spec() -> impl Strategy<Value = PacketSpec> {
    (
        (0usize..4, 0usize..200, any::<u32>()),
        (
            prop::option::of(0u64..1 << 40),
            prop::option::of(prop::sample::select(Rate::ALL_BG.to_vec())),
            prop::option::of(any::<i8>()),
            any::<bool>(),
        ),
    )
        .prop_map(|((pick, len, ts_us), (tsft_us, rate, signal_dbm, fcs_included))| PacketSpec {
            pick,
            len,
            ts_us: u64::from(ts_us),
            tsft_us,
            rate,
            signal_dbm,
            fcs_included,
        })
}

fn mk_frame(pick: usize, len: usize) -> Frame {
    let a = MacAddr::from_index(1);
    let b = MacAddr::from_index(2);
    match pick % 4 {
        0 => Frame::ack(a),
        1 => Frame::rts(a, b, 44),
        2 => Frame::beacon(a, vec![7; len]),
        _ => Frame::data_to_ds(a, b, b, len),
    }
}

fn rx_info(spec: &PacketSpec) -> RxInfo {
    RxInfo {
        tsft_us: spec.tsft_us,
        rate: spec.rate,
        signal_dbm: spec.signal_dbm,
        flags: if spec.fcs_included { RxFlags::FCS_INCLUDED } else { RxFlags::from_raw(0) },
        ..RxInfo::default()
    }
}

fn radiotap_packet(spec: &PacketSpec) -> Vec<u8> {
    let mut packet = rx_info(spec).to_radiotap();
    let bytes = mk_frame(spec.pick, spec.len).to_bytes();
    if spec.fcs_included {
        packet.extend_from_slice(&bytes);
    } else {
        packet.extend_from_slice(&bytes[..bytes.len() - 4]);
    }
    packet
}

fn prism_packet(spec: &PacketSpec) -> Vec<u8> {
    // Prism has no FCS flag; decode treats the body as FCS-stripped
    // unless RxInfo says otherwise, so always strip here for parity.
    let bytes = mk_frame(spec.pick, spec.len).to_bytes();
    let body = &bytes[..bytes.len() - 4];
    let mut packet = rx_info(&PacketSpec { fcs_included: false, ..spec.clone() })
        .to_prism(body.len() as u32);
    packet.extend_from_slice(body);
    packet
}

/// The owned reference path: materialize `RxInfo` + `Frame`, then build
/// the `CapturedFrame` exactly the way the pre-zero-copy decoder did.
fn owned_decode(packet: &[u8], fallback: Nanos, prism: bool) -> Result<CapturedFrame, DecodeError> {
    let (info, hdr_len) =
        if prism { RxInfo::from_prism(packet)? } else { RxInfo::from_radiotap(packet)? };
    let bytes = &packet[hdr_len..];
    let frame = if info.flags.contains(RxFlags::FCS_INCLUDED) {
        Frame::parse(bytes).map_err(DecodeError::Frame)?
    } else {
        Frame::parse_without_fcs(bytes).map_err(DecodeError::Frame)?
    };
    let rate = info.rate.unwrap_or(Rate::R1M);
    let t_end = info.tsft_us.map(Nanos::from_micros).unwrap_or(fallback);
    Ok(CapturedFrame::from_frame(&frame, rate, t_end, info.signal_dbm.unwrap_or(-70)))
}

/// Hand-built foreign-endian pcap file (the LE-only [`Writer`] cannot
/// produce one).
fn write_big_endian(link: LinkType, precision: TsPrecision, records: &[Record]) -> Vec<u8> {
    let magic = match precision {
        TsPrecision::Micros => 0xa1b2_c3d4u32,
        TsPrecision::Nanos => 0xa1b2_3c4du32,
    };
    let mut f = Vec::new();
    f.extend_from_slice(&magic.to_be_bytes());
    f.extend_from_slice(&2u16.to_be_bytes());
    f.extend_from_slice(&4u16.to_be_bytes());
    f.extend_from_slice(&0u32.to_be_bytes());
    f.extend_from_slice(&0u32.to_be_bytes());
    f.extend_from_slice(&65535u32.to_be_bytes());
    f.extend_from_slice(&link.to_raw().to_be_bytes());
    for rec in records {
        let frac = match precision {
            TsPrecision::Micros => rec.ts_nanos / 1000,
            TsPrecision::Nanos => rec.ts_nanos,
        };
        f.extend_from_slice(&rec.ts_sec.to_be_bytes());
        f.extend_from_slice(&frac.to_be_bytes());
        f.extend_from_slice(&(rec.data.len() as u32).to_be_bytes());
        f.extend_from_slice(&rec.orig_len.to_be_bytes());
        f.extend_from_slice(&rec.data);
    }
    f
}

fn write_little_endian(link: LinkType, precision: TsPrecision, records: &[Record]) -> Vec<u8> {
    let mut file = Vec::new();
    let mut w = Writer::with_precision(&mut file, link, precision).unwrap();
    for rec in records {
        w.write_record(rec).unwrap();
    }
    file
}

/// Replays `file` — through both the buffered and the borrowed-slice
/// sources — and checks every decoded frame against the owned path.
fn assert_parity(file: &[u8], specs: &[PacketSpec], packets: &[Vec<u8>], prism: bool) {
    let mut replay = Replay::new(Reader::new(file).unwrap()).unwrap();
    let mut sliced = Replay::from_slice(file).unwrap();
    for (spec, packet) in specs.iter().zip(packets) {
        let fallback = Nanos::from_micros(spec.ts_us);
        let expected = owned_decode(packet, fallback, prism).expect("generated packets are valid");
        let got = replay.next_frame().unwrap().expect("record per spec");
        assert_eq!(got, expected, "borrowed/owned divergence for {spec:?}");
        let got = sliced.next_frame().unwrap().expect("record per spec");
        assert_eq!(got, expected, "slice/owned divergence for {spec:?}");
    }
    assert!(replay.next_frame().unwrap().is_none());
    assert!(sliced.next_frame().unwrap().is_none());
    let stats = replay.stats();
    assert_eq!(stats.decoded, specs.len() as u64);
    assert_eq!(stats.decode_errors(), 0);
    assert_eq!(sliced.stats(), stats);
}

proptest! {
    // Satellite: borrowed decode ≡ owned decode over writer round-trips,
    // little-endian files, both timestamp precisions.
    #[test]
    fn replay_parity_little_endian(
        specs in prop::collection::vec(arb_spec(), 1..12),
        nanos in any::<bool>(),
    ) {
        let precision = if nanos { TsPrecision::Nanos } else { TsPrecision::Micros };
        let packets: Vec<Vec<u8>> = specs.iter().map(radiotap_packet).collect();
        let records: Vec<Record> = specs
            .iter()
            .zip(&packets)
            .map(|(s, p)| Record::from_micros(s.ts_us, p.clone()))
            .collect();
        let file = write_little_endian(LinkType::Ieee80211Radiotap, precision, &records);
        assert_parity(&file, &specs, &packets, false);
    }

    // Same trace through a hand-built foreign-endian file.
    #[test]
    fn replay_parity_big_endian(
        specs in prop::collection::vec(arb_spec(), 1..12),
        nanos in any::<bool>(),
    ) {
        let precision = if nanos { TsPrecision::Nanos } else { TsPrecision::Micros };
        let packets: Vec<Vec<u8>> = specs.iter().map(radiotap_packet).collect();
        let records: Vec<Record> = specs
            .iter()
            .zip(&packets)
            .map(|(s, p)| Record::from_micros(s.ts_us, p.clone()))
            .collect();
        let file = write_big_endian(LinkType::Ieee80211Radiotap, precision, &records);
        let mut r = Reader::new(&file[..]).unwrap();
        prop_assert!(r.is_swapped());
        prop_assert!(r.next_record().is_ok());
        assert_parity(&file, &specs, &packets, false);
    }

    // Prism (DLT 119) files take the same parity route.
    #[test]
    fn replay_parity_prism(specs in prop::collection::vec(arb_spec(), 1..8)) {
        let packets: Vec<Vec<u8>> = specs.iter().map(prism_packet).collect();
        let records: Vec<Record> = specs
            .iter()
            .zip(&packets)
            .map(|(s, p)| Record::from_micros(s.ts_us, p.clone()))
            .collect();
        let file = write_little_endian(LinkType::Prism, TsPrecision::Micros, &records);
        assert_parity(&file, &specs, &packets, true);
    }
}
