//! Proves the acceptance criterion of the zero-copy ingest work: the
//! replay loop performs **zero heap allocations per record** in steady
//! state. A counting global allocator wraps `System`; after a warm-up
//! pass grows the record buffer to its high-water mark, decoding the
//! remaining thousands of records must not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use wifiprint_ieee80211::{Frame, MacAddr, Rate};
use wifiprint_pcap::{LinkType, Reader, Record, Replay, Writer};
use wifiprint_radiotap::{RxFlags, RxInfo};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// An in-memory radiotap capture: `n` frames of mixed kinds and sizes,
/// the largest first so the record buffer reaches its high-water mark
/// during warm-up.
fn build_capture(n: u64) -> Vec<u8> {
    let sta = MacAddr::from_index(1);
    let ap = MacAddr::from_index(2);
    let mut file = Vec::new();
    let mut writer = Writer::new(&mut file, LinkType::Ieee80211Radiotap).unwrap();
    for i in 0..n {
        let frame = match i % 3 {
            0 => Frame::data_to_ds(sta, ap, ap, 1400 - (i as usize % 700)),
            1 => Frame::ack(ap),
            _ => Frame::beacon(ap, vec![7; 80]),
        };
        let info = RxInfo {
            tsft_us: Some(25 * (i + 1)),
            rate: Some(Rate::R54M),
            signal_dbm: Some(-50),
            flags: RxFlags::FCS_INCLUDED,
            ..RxInfo::default()
        };
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        writer.write_record(&Record::from_micros(25 * (i + 1), packet)).unwrap();
    }
    file
}

#[test]
fn steady_state_replay_allocates_nothing() {
    const TOTAL: u64 = 4096;
    const WARMUP: u64 = 16;

    let file = build_capture(TOTAL);
    let mut replay = Replay::new(Reader::new(&file[..]).unwrap()).unwrap();

    // Warm-up: the internal buffer grows to the largest record here.
    for _ in 0..WARMUP {
        replay.next_frame().unwrap().unwrap();
    }

    let before = allocations();
    let mut decoded = 0u64;
    let mut size_sum = 0usize;
    while let Some(frame) = replay.next_frame().unwrap() {
        decoded += 1;
        size_sum += frame.size;
    }
    let after = allocations();

    assert_eq!(decoded, TOTAL - WARMUP);
    assert!(size_sum > 0);
    assert_eq!(
        after - before,
        0,
        "replay of {decoded} records allocated {} times in steady state",
        after - before
    );
    assert_eq!(replay.stats().decoded, TOTAL);
    assert_eq!(replay.stats().decode_errors(), 0);
}

#[test]
fn slice_replay_allocates_nothing_at_all() {
    const TOTAL: u64 = 4096;
    let file = build_capture(TOTAL);

    // No warm-up: the borrowed-slice source has no buffer to grow, so
    // the entire replay — construction included — must not allocate.
    let before = allocations();
    let mut replay = Replay::from_slice(&file).unwrap();
    let mut decoded = 0u64;
    let mut size_sum = 0usize;
    while let Some(frame) = replay.next_frame().unwrap() {
        decoded += 1;
        size_sum += frame.size;
    }
    let after = allocations();

    assert_eq!(decoded, TOTAL);
    assert!(size_sum > 0);
    assert_eq!(
        after - before,
        0,
        "slice replay of {decoded} records allocated {} times",
        after - before
    );
    assert_eq!(replay.stats().decoded, TOTAL);
}
