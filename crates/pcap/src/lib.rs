//! Classic pcap capture-file reading and writing.
//!
//! A from-scratch, dependency-free implementation of the libpcap file
//! format, sufficient for the wifiprint suite to exchange 802.11 monitor
//! captures with standard tooling (tcpdump, Wireshark, the paper's own
//! Python/libpcap stack):
//!
//! * both magics — microsecond (`0xa1b2c3d4`) and nanosecond
//!   (`0xa1b23c4d`) timestamp precision,
//! * both byte orders (files written on foreign-endian machines),
//! * streaming [`Reader`] / [`Writer`] over any [`std::io::Read`] /
//!   [`std::io::Write`],
//! * snaplen-truncated records (`incl_len < orig_len`),
//! * the link types relevant to 802.11 monitoring ([`LinkType`]).
//!
//! # Example
//!
//! ```
//! use wifiprint_pcap::{LinkType, Reader, Record, Writer};
//!
//! # fn main() -> Result<(), wifiprint_pcap::PcapError> {
//! let mut file = Vec::new();
//! let mut writer = Writer::new(&mut file, LinkType::Ieee80211Radiotap)?;
//! writer.write_record(&Record::new(1_700_000_000, 123_456_000, b"frame-bytes".to_vec()))?;
//!
//! let mut reader = Reader::new(&file[..])?;
//! assert_eq!(reader.link_type(), LinkType::Ieee80211Radiotap);
//! let rec = reader.next_record()?.expect("one record");
//! assert_eq!(rec.data, b"frame-bytes");
//! assert_eq!(rec.timestamp_micros(), 1_700_000_000_123_456);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod format;
mod reader;
mod writer;

pub use format::{LinkType, PcapError, Record, TsPrecision, MAGIC_MICROS, MAGIC_NANOS};
pub use reader::Reader;
pub use writer::Writer;

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Reads every record of a pcap file into memory.
///
/// Convenience wrapper around [`Reader`] for small files; prefer streaming
/// for multi-gigabyte captures.
///
/// # Errors
///
/// Any I/O or format error encountered while reading.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<(LinkType, Vec<Record>), PcapError> {
    let file = File::open(path).map_err(PcapError::Io)?;
    let mut reader = Reader::new(BufReader::new(file))?;
    let link = reader.link_type();
    let mut records = Vec::new();
    while let Some(rec) = reader.next_record()? {
        records.push(rec);
    }
    Ok((link, records))
}

/// Writes a sequence of records to a pcap file with microsecond precision.
///
/// # Errors
///
/// Any I/O error encountered while writing.
pub fn write_file<P: AsRef<Path>>(
    path: P,
    link: LinkType,
    records: &[Record],
) -> Result<(), PcapError> {
    let file = File::create(path).map_err(PcapError::Io)?;
    let mut writer = Writer::new(BufWriter::new(file), link)?;
    for rec in records {
        writer.write_record(rec)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("wifiprint-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.pcap");
        let records =
            vec![Record::new(10, 500_000, vec![1, 2, 3]), Record::new(11, 0, vec![4, 5, 6, 7])];
        write_file(&path, LinkType::Ieee80211, &records).unwrap();
        let (link, back) = read_file(&path).unwrap();
        assert_eq!(link, LinkType::Ieee80211);
        assert_eq!(back, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_file("/nonexistent/definitely/not/here.pcap").unwrap_err();
        assert!(matches!(err, PcapError::Io(_)));
    }
}
