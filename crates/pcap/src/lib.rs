//! Classic pcap capture-file reading and writing.
//!
//! A from-scratch, dependency-free implementation of the libpcap file
//! format, sufficient for the wifiprint suite to exchange 802.11 monitor
//! captures with standard tooling (tcpdump, Wireshark, the paper's own
//! Python/libpcap stack):
//!
//! * both magics — microsecond (`0xa1b2c3d4`) and nanosecond
//!   (`0xa1b23c4d`) timestamp precision,
//! * both byte orders (files written on foreign-endian machines),
//! * streaming [`Reader`] / [`Writer`] over any [`std::io::Read`] /
//!   [`std::io::Write`],
//! * snaplen-truncated records (`incl_len < orig_len`),
//! * the link types relevant to 802.11 monitoring ([`LinkType`]).
//!
//! # Example
//!
//! ```
//! use wifiprint_pcap::{LinkType, Reader, Record, Writer};
//!
//! # fn main() -> Result<(), wifiprint_pcap::PcapError> {
//! let mut file = Vec::new();
//! let mut writer = Writer::new(&mut file, LinkType::Ieee80211Radiotap)?;
//! writer.write_record(&Record::new(1_700_000_000, 123_456_000, b"frame-bytes".to_vec()))?;
//!
//! let mut reader = Reader::new(&file[..])?;
//! assert_eq!(reader.link_type(), LinkType::Ieee80211Radiotap);
//! let rec = reader.next_record()?.expect("one record");
//! assert_eq!(rec.data, b"frame-bytes");
//! assert_eq!(rec.timestamp_micros(), 1_700_000_000_123_456);
//! # Ok(())
//! # }
//! ```
//!
//! # Real-capture replay
//!
//! The [`replay`] module turns a capture file into fingerprinting-engine
//! input without materializing a single owned frame: [`Replay`] decodes
//! each record through the borrowed
//! [`WireFrame`](wifiprint_ieee80211::WireFrame) view with **zero heap
//! allocations per record** in steady state. Streaming readers reuse one
//! internal buffer ([`Reader::read_record_into`]); for an in-memory file,
//! [`Replay::from_slice`] borrows every record in place ([`SliceReader`])
//! and never copies — or even reads — record bodies. [`ReplayStats`]
//! reports decode quality per file: error counts per layer and how often
//! the monitor omitted rate/signal/TSFT so decode fell back to defaults.
//!
//! Driving a whole capture into the fused five-parameter engine is one
//! call:
//!
//! ```
//! use wifiprint_core::{FusionSpec, MultiConfig, MultiEngine, MultiEvent};
//! use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
//! use wifiprint_pcap::{replay_into_multi, LinkType, Record, Replay, Writer};
//! use wifiprint_radiotap::{RxFlags, RxInfo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A synthetic two-station radiotap capture, in memory.
//! let ap = MacAddr::from_index(0xA0);
//! let stations = [MacAddr::from_index(1), MacAddr::from_index(2)];
//! let mut file = Vec::new();
//! let mut writer = Writer::new(&mut file, LinkType::Ieee80211Radiotap)?;
//! for i in 0..2_000u64 {
//!     let sta = stations[(i % 2) as usize];
//!     let frame = Frame::data_to_ds(sta, ap, ap, 200 + (i % 2) as usize * 600);
//!     let ts_us = 2_000 * (i + 1);
//!     let info = RxInfo {
//!         tsft_us: Some(ts_us),
//!         rate: Some(Rate::R54M),
//!         signal_dbm: Some(if i % 2 == 0 { -48 } else { -61 }),
//!         flags: RxFlags::FCS_INCLUDED,
//!         ..RxInfo::default()
//!     };
//!     let mut packet = info.to_radiotap();
//!     packet.extend_from_slice(&frame.to_bytes());
//!     writer.write_record(&Record::from_micros(ts_us, packet))?;
//! }
//!
//! // Replay it into a fused engine: train 2 s, then 1 s windows.
//! let mut cfg = MultiConfig::default().with_min_observations(20);
//! cfg.window = Nanos::from_secs(1);
//! let mut engine = MultiEngine::builder()
//!     .spec(FusionSpec::all_equal())
//!     .config(cfg)
//!     .train_for(Nanos::from_secs(2))
//!     .build()?;
//! let mut replay = Replay::from_slice(&file)?;
//! let (mut events, stats) = replay_into_multi(&mut replay, &mut engine)?;
//! events.extend(engine.finish()?);
//!
//! assert_eq!((stats.decoded, stats.decode_errors()), (2_000, 0));
//! let enrolled = events
//!     .iter()
//!     .filter(|e| matches!(e, MultiEvent::Enrolled { .. }))
//!     .count();
//! assert_eq!(enrolled, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::pedantic)]
// Pedantic lints this crate opts out of, mirroring wifiprint-core:
#![allow(
    // Record lengths narrow into the format's fixed u32 wire fields;
    // MAX_SANE_INCL_LEN bounds them first.
    clippy::cast_possible_truncation,
    // The flagged `expect`s are fixed-size slice conversions
    // (`[u8; N]` from a length-checked slice) that cannot fail.
    clippy::missing_panics_doc,
    // Getter-heavy API: #[must_use] on every accessor is noise.
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    // Public items are re-exported from the crate root, so
    // module-qualified names repeat the module name.
    clippy::module_name_repetitions,
    // Capture-tooling jargon (libpcap, tcpdump, snaplen, …) trips the
    // identifier heuristic on prose that is not code.
    clippy::doc_markdown
)]

mod format;
mod reader;
pub mod replay;
mod writer;

pub use format::{LinkType, PcapError, Record, RecordMeta, TsPrecision, MAGIC_MICROS, MAGIC_NANOS};
pub use reader::{Reader, SliceReader};
pub use replay::{
    replay_into_engine, replay_into_multi, ReadSource, RecordSource, Replay, ReplayError,
    ReplayStats,
};
pub use writer::Writer;

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Reads every record of a pcap file into memory.
///
/// Convenience wrapper around [`Reader`] for small files; prefer streaming
/// for multi-gigabyte captures.
///
/// # Errors
///
/// Any I/O or format error encountered while reading.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<(LinkType, Vec<Record>), PcapError> {
    let file = File::open(path).map_err(PcapError::Io)?;
    let mut reader = Reader::new(BufReader::new(file))?;
    let link = reader.link_type();
    let mut records = Vec::new();
    while let Some(rec) = reader.next_record()? {
        records.push(rec);
    }
    Ok((link, records))
}

/// Writes a sequence of records to a pcap file with microsecond precision.
///
/// # Errors
///
/// Any I/O error encountered while writing.
pub fn write_file<P: AsRef<Path>>(
    path: P,
    link: LinkType,
    records: &[Record],
) -> Result<(), PcapError> {
    let file = File::create(path).map_err(PcapError::Io)?;
    let mut writer = Writer::new(BufWriter::new(file), link)?;
    for rec in records {
        writer.write_record(rec)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("wifiprint-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.pcap");
        let records =
            vec![Record::new(10, 500_000, vec![1, 2, 3]), Record::new(11, 0, vec![4, 5, 6, 7])];
        write_file(&path, LinkType::Ieee80211, &records).unwrap();
        let (link, back) = read_file(&path).unwrap();
        assert_eq!(link, LinkType::Ieee80211);
        assert_eq!(back, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_file("/nonexistent/definitely/not/here.pcap").unwrap_err();
        assert!(matches!(err, PcapError::Io(_)));
    }
}
