//! Zero-copy replay of capture files into the fingerprinting engines.
//!
//! This module is the production data path the paper's method implies: raw
//! DLT-127/119/105 bytes off a capture file (or ring) are decoded straight
//! into [`CapturedFrame`] observations and fed to an
//! [`Engine`]/[`MultiEngine`] — with **zero heap allocations per record**
//! in steady state. Streaming sources reuse one internal buffer across
//! records ([`Reader::read_record_into`]); in-memory files go further via
//! [`Replay::from_slice`], which borrows each record in place and never
//! copies (or even reads) record bodies at all. Either way the 802.11
//! header is read through the borrowed
//! [`WireFrame`](wifiprint_ieee80211::WireFrame) view (no body copy, no
//! `Frame` materialization), and `CapturedFrame` itself is a plain `Copy`
//! struct. An allocation-counting test pins this down.
//!
//! Alongside the frames, a [`ReplayStats`] tallies capture quality: how
//! many records decoded, how many failed (and at which layer), and how
//! often the monitor omitted rate/signal/TSFT so decode had to fall back
//! to defaults — silently-defaulted fields skew derived air times, and a
//! consumer deserves to know.
//!
//! # Example
//!
//! ```
//! use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
//! use wifiprint_pcap::{replay::Replay, LinkType, Reader, Record, Writer};
//! use wifiprint_radiotap::{RxFlags, RxInfo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Write a one-record radiotap capture in memory…
//! let mut file = Vec::new();
//! let mut w = Writer::new(&mut file, LinkType::Ieee80211Radiotap)?;
//! let info = RxInfo {
//!     rate: Some(Rate::R11M),
//!     signal_dbm: Some(-55),
//!     flags: RxFlags::FCS_INCLUDED,
//!     ..RxInfo::default()
//! };
//! let mut packet = info.to_radiotap();
//! let sta = MacAddr::from_index(1);
//! let ap = MacAddr::from_index(2);
//! packet.extend_from_slice(&Frame::data_to_ds(sta, ap, ap, 100).to_bytes());
//! w.write_record(&Record::from_micros(1_000, packet))?;
//!
//! // …and replay it.
//! let mut replay = Replay::new(Reader::new(&file[..])?)?;
//! let frame = replay.next_frame()?.expect("one frame");
//! assert_eq!(frame.transmitter, Some(sta));
//! assert_eq!(frame.rate, Rate::R11M);
//! assert!(replay.next_frame()?.is_none());
//! let stats = replay.stats();
//! assert_eq!((stats.records, stats.decoded), (1, 1));
//! assert_eq!(stats.defaulted_timestamp, 1); // no TSFT: pcap timestamp used
//! # Ok(())
//! # }
//! ```

use std::io::Read;

use wifiprint_core::{Engine, EngineError, Event, MultiEngine, MultiEvent};
use wifiprint_ieee80211::{Nanos, WireFrame};
use wifiprint_radiotap::{CapturedFrame, DecodeError, DefaultedFields};

use crate::{LinkType, PcapError, Reader, RecordMeta, SliceReader};

/// Per-file decode statistics accumulated by [`Replay`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records read from the file.
    pub records: u64,
    /// Records successfully decoded into a [`CapturedFrame`].
    pub decoded: u64,
    /// Records whose capture header (Radiotap/Prism) was malformed.
    pub header_errors: u64,
    /// Records whose 802.11 frame was malformed or truncated.
    pub frame_errors: u64,
    /// Decoded records with no rate field (1 Mb/s assumed).
    pub defaulted_rate: u64,
    /// Decoded records with no signal field (−70 dBm assumed).
    pub defaulted_signal: u64,
    /// Decoded records with no TSFT (pcap record timestamp used).
    pub defaulted_timestamp: u64,
}

impl ReplayStats {
    /// Total records that failed to decode, at either layer.
    #[must_use] 
    pub fn decode_errors(&self) -> u64 {
        self.header_errors + self.frame_errors
    }

    fn absorb(&mut self, defaulted: DefaultedFields) {
        self.decoded += 1;
        self.defaulted_rate += u64::from(defaulted.rate);
        self.defaulted_signal += u64::from(defaulted.signal);
        self.defaulted_timestamp += u64::from(defaulted.timestamp);
    }
}

/// Error replaying a capture file into an engine.
#[derive(Debug)]
pub enum ReplayError {
    /// The pcap stream itself was malformed or unreadable.
    Pcap(PcapError),
    /// The consuming engine rejected a frame.
    Engine(EngineError),
    /// The file's link type carries no 802.11 frames we can decode.
    UnsupportedLinkType(
        /// The offending link type.
        LinkType,
    ),
}

impl core::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplayError::Pcap(e) => write!(f, "pcap: {e}"),
            ReplayError::Engine(e) => write!(f, "engine: {e}"),
            ReplayError::UnsupportedLinkType(lt) => {
                write!(f, "cannot replay link type {lt}")
            }
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Pcap(e) => Some(e),
            ReplayError::Engine(e) => Some(e),
            ReplayError::UnsupportedLinkType(_) => None,
        }
    }
}

impl From<PcapError> for ReplayError {
    fn from(e: PcapError) -> Self {
        ReplayError::Pcap(e)
    }
}

impl From<EngineError> for ReplayError {
    fn from(e: EngineError) -> Self {
        ReplayError::Engine(e)
    }
}

/// Anything that can hand [`Replay`] one record's bytes at a time.
///
/// Two implementations ship with the crate: [`ReadSource`] copies each
/// record from a generic [`Read`] stream into one reused buffer (zero
/// allocations in steady state), and [`SliceReader`] borrows records
/// straight out of an in-memory file (zero copies, zero allocations —
/// record bodies are never even touched, since the borrowed decoders read
/// only header bytes).
pub trait RecordSource {
    /// The source's data-link type.
    fn link_type(&self) -> LinkType;

    /// Returns the next record's header fields and bytes, or `Ok(None)`
    /// at a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`PcapError`] for a malformed or unreadable stream.
    fn next(&mut self) -> Result<Option<(RecordMeta, &[u8])>, PcapError>;
}

impl RecordSource for SliceReader<'_> {
    fn link_type(&self) -> LinkType {
        SliceReader::link_type(self)
    }

    fn next(&mut self) -> Result<Option<(RecordMeta, &[u8])>, PcapError> {
        self.next_record()
    }
}

/// A [`RecordSource`] over any [`Read`] stream: each record is copied into
/// one internal buffer that is reused across records
/// ([`Reader::read_record_into`]), so steady-state replay performs zero
/// heap allocations.
#[derive(Debug)]
pub struct ReadSource<R> {
    reader: Reader<R>,
    buf: Vec<u8>,
}

impl<R: Read> ReadSource<R> {
    /// Wraps a pcap reader.
    pub fn new(reader: Reader<R>) -> Self {
        ReadSource { reader, buf: Vec::new() }
    }
}

impl<R: Read> RecordSource for ReadSource<R> {
    fn link_type(&self) -> LinkType {
        self.reader.link_type()
    }

    fn next(&mut self) -> Result<Option<(RecordMeta, &[u8])>, PcapError> {
        Ok(self.reader.read_record_into(&mut self.buf)?.map(|meta| (meta, &self.buf[..])))
    }
}

/// An allocation-free stream of [`CapturedFrame`]s over a pcap file.
///
/// Wraps a [`RecordSource`] with the borrowed decode path; corrupt
/// records are counted into [`ReplayStats`] and skipped rather than
/// aborting the pass, because real monitor captures contain them.
/// Build one with [`Replay::new`] (streaming, one reused buffer) or
/// [`Replay::from_slice`] (in-memory file, no copies at all).
#[derive(Debug)]
pub struct Replay<S> {
    source: S,
    link: LinkType,
    stats: ReplayStats,
}

impl<R: Read> Replay<ReadSource<R>> {
    /// Wraps a pcap reader whose link type is one of the 802.11 monitor
    /// formats (DLT 127 Radiotap, DLT 119 Prism, DLT 105 raw).
    ///
    /// # Errors
    ///
    /// [`ReplayError::UnsupportedLinkType`] for anything else.
    pub fn new(reader: Reader<R>) -> Result<Self, ReplayError> {
        Self::with_source(ReadSource::new(reader))
    }
}

impl<'a> Replay<SliceReader<'a>> {
    /// Replays a whole capture file already in memory, borrowing record
    /// bytes in place — the fastest path, since nothing is copied and
    /// the borrowed decoders only ever read each record's header bytes.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Pcap`] for a malformed global header,
    /// [`ReplayError::UnsupportedLinkType`] for a non-802.11 file.
    pub fn from_slice(file: &'a [u8]) -> Result<Self, ReplayError> {
        Self::with_source(SliceReader::new(file)?)
    }
}

impl<S: RecordSource> Replay<S> {
    /// Wraps any [`RecordSource`] whose link type is one of the 802.11
    /// monitor formats (DLT 127 Radiotap, DLT 119 Prism, DLT 105 raw).
    ///
    /// # Errors
    ///
    /// [`ReplayError::UnsupportedLinkType`] for anything else.
    pub fn with_source(source: S) -> Result<Self, ReplayError> {
        let link = source.link_type();
        match link {
            LinkType::Ieee80211Radiotap | LinkType::Prism | LinkType::Ieee80211 => {
                Ok(Replay { source, link, stats: ReplayStats::default() })
            }
            other => Err(ReplayError::UnsupportedLinkType(other)),
        }
    }

    /// The file's link type.
    pub fn link_type(&self) -> LinkType {
        self.link
    }

    /// Statistics over everything read so far.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Decodes the next record that holds a valid frame; `Ok(None)` at
    /// end of file. Undecodable records are tallied and skipped.
    ///
    /// # Errors
    ///
    /// [`PcapError`] only for a malformed *stream* (truncated record,
    /// oversized length, I/O failure) — per-record decode failures are
    /// not errors here.
    pub fn next_frame(&mut self) -> Result<Option<CapturedFrame>, PcapError> {
        loop {
            let Some((meta, bytes)) = self.source.next()? else {
                return Ok(None);
            };
            self.stats.records += 1;
            let fallback = Nanos::from_nanos(meta.timestamp_nanos());
            let decoded = match self.link {
                LinkType::Ieee80211Radiotap => {
                    CapturedFrame::from_radiotap_packet_counted(bytes, fallback)
                }
                LinkType::Prism => CapturedFrame::from_prism_packet_counted(bytes, fallback),
                // Raw 802.11: no capture header at all, so every
                // metadata field is a fallback by construction.
                _ => WireFrame::parse(bytes)
                    .map(|view| {
                        let cap = CapturedFrame::from_wire(
                            &view,
                            wifiprint_ieee80211::Rate::R1M,
                            fallback,
                            -70,
                        );
                        (cap, DefaultedFields { rate: true, signal: true, timestamp: true })
                    })
                    .map_err(DecodeError::Frame),
            };
            match decoded {
                Ok((frame, defaulted)) => {
                    self.stats.absorb(defaulted);
                    return Ok(Some(frame));
                }
                Err(DecodeError::Header(_)) => self.stats.header_errors += 1,
                Err(DecodeError::Frame(_)) => self.stats.frame_errors += 1,
            }
        }
    }
}

/// Replays a whole capture into a single-parameter [`Engine`], returning
/// the events it emitted and the file's decode statistics.
///
/// The engine is *not* [`finish`](Engine::finish)ed — the caller decides
/// whether the file ends the stream or more captures follow.
///
/// # Errors
///
/// [`ReplayError::Pcap`] for a malformed stream, [`ReplayError::Engine`]
/// if the engine rejects a frame (e.g. out-of-order timestamps under the
/// strict late-frame policy).
pub fn replay_into_engine<S: RecordSource>(
    replay: &mut Replay<S>,
    engine: &mut Engine,
) -> Result<(Vec<Event>, ReplayStats), ReplayError> {
    let mut events = Vec::new();
    while let Some(frame) = replay.next_frame()? {
        events.extend(engine.observe(&frame)?);
    }
    Ok((events, replay.stats()))
}

/// Replays a whole capture into a fused [`MultiEngine`]; otherwise
/// identical to [`replay_into_engine`].
///
/// # Errors
///
/// Same conditions as [`replay_into_engine`].
pub fn replay_into_multi<S: RecordSource>(
    replay: &mut Replay<S>,
    engine: &mut MultiEngine,
) -> Result<(Vec<MultiEvent>, ReplayStats), ReplayError> {
    let mut events = Vec::new();
    while let Some(frame) = replay.next_frame()? {
        events.extend(engine.observe(&frame)?);
    }
    Ok((events, replay.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Record, Writer};
    use wifiprint_ieee80211::{Frame, MacAddr, Rate};
    use wifiprint_radiotap::{RxFlags, RxInfo};

    fn radiotap_packet(frame: &Frame, rate: Option<Rate>, tsft_us: Option<u64>) -> Vec<u8> {
        let info = RxInfo {
            tsft_us,
            rate,
            signal_dbm: Some(-50),
            flags: RxFlags::FCS_INCLUDED,
            ..RxInfo::default()
        };
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        packet
    }

    fn capture(link: LinkType, packets: &[(u64, Vec<u8>)]) -> Vec<u8> {
        let mut file = Vec::new();
        let mut w = Writer::new(&mut file, link).unwrap();
        for &(ts_us, ref packet) in packets {
            w.write_record(&Record::from_micros(ts_us, packet.clone())).unwrap();
        }
        file
    }

    fn sta() -> MacAddr {
        MacAddr::from_index(1)
    }
    fn ap() -> MacAddr {
        MacAddr::from_index(2)
    }

    #[test]
    fn replays_radiotap_capture_with_stats() {
        let data = Frame::data_to_ds(sta(), ap(), ap(), 200);
        let file = capture(
            LinkType::Ieee80211Radiotap,
            &[
                (1_000, radiotap_packet(&data, Some(Rate::R11M), Some(1_000))),
                // No rate and no TSFT: decodes, but both are defaulted.
                (2_000, radiotap_packet(&data, None, None)),
                // Garbage after a valid radiotap header: a frame error.
                (3_000, {
                    let mut p = RxInfo::default().to_radiotap();
                    p.extend_from_slice(&[1, 2, 3]);
                    p
                }),
            ],
        );
        let mut replay = Replay::new(Reader::new(&file[..]).unwrap()).unwrap();
        let first = replay.next_frame().unwrap().unwrap();
        assert_eq!(first.rate, Rate::R11M);
        assert_eq!(first.t_end, Nanos::from_micros(1_000));
        let second = replay.next_frame().unwrap().unwrap();
        assert_eq!(second.rate, Rate::R1M);
        assert_eq!(second.t_end, Nanos::from_micros(2_000));
        assert!(replay.next_frame().unwrap().is_none());

        let stats = replay.stats();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.decoded, 2);
        assert_eq!(stats.frame_errors, 1);
        assert_eq!(stats.header_errors, 0);
        assert_eq!(stats.decode_errors(), 1);
        assert_eq!(stats.defaulted_rate, 1);
        assert_eq!(stats.defaulted_signal, 0);
        // Only decoded records count: the second had no TSFT.
        assert_eq!(stats.defaulted_timestamp, 1);
    }

    #[test]
    fn replays_raw_80211_with_everything_defaulted() {
        let frame = Frame::data_to_ds(sta(), ap(), ap(), 64);
        let file = capture(LinkType::Ieee80211, &[(500, frame.to_bytes())]);
        let mut replay = Replay::new(Reader::new(&file[..]).unwrap()).unwrap();
        let cap = replay.next_frame().unwrap().unwrap();
        assert_eq!(cap.rate, Rate::R1M);
        assert_eq!(cap.t_end, Nanos::from_micros(500));
        assert_eq!(cap.signal_dbm, -70);
        let stats = replay.stats();
        assert_eq!(stats.defaulted_rate, 1);
        assert_eq!(stats.defaulted_signal, 1);
        assert_eq!(stats.defaulted_timestamp, 1);
    }

    #[test]
    fn rejects_unsupported_link_type() {
        let file = capture(LinkType::Ethernet, &[]);
        let err = Replay::new(Reader::new(&file[..]).unwrap()).unwrap_err();
        assert!(matches!(err, ReplayError::UnsupportedLinkType(LinkType::Ethernet)));
        assert!(err.to_string().contains("EN10MB"));
    }

    #[test]
    fn header_errors_are_counted() {
        // DLT 127 records too short to hold a radiotap header.
        let file = capture(LinkType::Ieee80211Radiotap, &[(1, vec![0u8; 2])]);
        let mut replay = Replay::new(Reader::new(&file[..]).unwrap()).unwrap();
        assert!(replay.next_frame().unwrap().is_none());
        assert_eq!(replay.stats().header_errors, 1);
        assert_eq!(replay.stats().decoded, 0);
    }

    #[test]
    fn slice_replay_matches_streaming_replay() {
        let mut packets = Vec::new();
        for i in 0..64u64 {
            let frame = Frame::data_to_ds(sta(), ap(), ap(), 100 + (i as usize % 5) * 50);
            let ts = 1_000 * (i + 1);
            packets.push((ts, radiotap_packet(&frame, Some(Rate::R54M), Some(ts))));
        }
        let file = capture(LinkType::Ieee80211Radiotap, &packets);

        let mut streaming = Replay::new(Reader::new(&file[..]).unwrap()).unwrap();
        let mut sliced = Replay::from_slice(&file).unwrap();
        assert_eq!(sliced.link_type(), LinkType::Ieee80211Radiotap);
        while let Some(expected) = streaming.next_frame().unwrap() {
            assert_eq!(sliced.next_frame().unwrap(), Some(expected));
        }
        assert!(sliced.next_frame().unwrap().is_none());
        assert_eq!(sliced.stats(), streaming.stats());
        assert_eq!(sliced.stats().decoded, 64);
    }

    #[test]
    fn replay_into_multi_drives_the_engine() {
        use wifiprint_core::{FusionSpec, MultiConfig, MultiEvent};

        let mut packets = Vec::new();
        for i in 0..400u64 {
            let frame = Frame::data_to_ds(sta(), ap(), ap(), 400);
            let ts = 10_000 * (i + 1);
            packets.push((ts, radiotap_packet(&frame, Some(Rate::R54M), Some(ts))));
        }
        let file = capture(LinkType::Ieee80211Radiotap, &packets);

        let mut cfg = MultiConfig::default().with_min_observations(20);
        cfg.window = Nanos::from_secs(1);
        let mut engine = MultiEngine::builder()
            .spec(FusionSpec::all_equal())
            .config(cfg)
            .train_for(Nanos::from_secs(2))
            .build()
            .unwrap();
        let mut replay = Replay::new(Reader::new(&file[..]).unwrap()).unwrap();
        let (mut events, stats) = replay_into_multi(&mut replay, &mut engine).unwrap();
        events.extend(engine.finish().unwrap());
        assert_eq!(stats.decoded, 400);
        assert!(events
            .iter()
            .any(|e| matches!(e, MultiEvent::Enrolled { device, .. } if *device == sta())));
    }
}
