//! Streaming pcap reader.

use std::io::Read;

use crate::format::{
    LinkType, PcapError, Record, RecordMeta, TsPrecision, MAGIC_MICROS, MAGIC_NANOS,
    MAX_SANE_INCL_LEN,
};

/// A streaming reader over a classic pcap file.
///
/// Handles both byte orders and both timestamp precisions transparently;
/// records always surface nanosecond fractions via [`Record::ts_nanos`].
///
/// # Example
///
/// ```
/// use wifiprint_pcap::{LinkType, Reader, Record, Writer};
///
/// # fn main() -> Result<(), wifiprint_pcap::PcapError> {
/// let mut buf = Vec::new();
/// let mut w = Writer::new(&mut buf, LinkType::Ieee80211)?;
/// w.write_record(&Record::new(7, 0, vec![0xAA]))?;
///
/// let mut r = Reader::new(&buf[..])?;
/// let mut count = 0;
/// while let Some(_rec) = r.next_record()? {
///     count += 1;
/// }
/// assert_eq!(count, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Reader<R> {
    inner: R,
    link_type: LinkType,
    precision: TsPrecision,
    swapped: bool,
    snaplen: u32,
}

impl<R: Read> Reader<R> {
    /// Reads and validates the 24-byte global header.
    ///
    /// # Errors
    ///
    /// [`PcapError::BadMagic`] if the magic number is unknown,
    /// [`PcapError::TruncatedFile`] if the header is incomplete, or an I/O
    /// error from the underlying reader.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut header = [0u8; 24];
        read_exact_or_truncated(&mut inner, &mut header, true)?
            .ok_or(PcapError::TruncatedFile)?;
        let global = GlobalHeader::parse(&header)?;
        Ok(Reader {
            inner,
            link_type: global.link_type,
            precision: global.precision,
            swapped: global.swapped,
            snaplen: global.snaplen,
        })
    }

    /// The file's data-link type.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The file's declared snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The file's timestamp precision.
    pub fn precision(&self) -> TsPrecision {
        self.precision
    }

    /// `true` if the file was written in the opposite byte order.
    pub fn is_swapped(&self) -> bool {
        self.swapped
    }

    /// Reads the next record; `Ok(None)` signals a clean end of file.
    ///
    /// # Errors
    ///
    /// [`PcapError::TruncatedFile`] if the stream ends inside a record,
    /// [`PcapError::OversizedRecord`] for implausible capture lengths, or
    /// an I/O error.
    pub fn next_record(&mut self) -> Result<Option<Record>, PcapError> {
        let mut data = Vec::new();
        Ok(self.read_record_into(&mut data)?.map(|meta| Record {
            ts_sec: meta.ts_sec,
            ts_nanos: meta.ts_nanos,
            orig_len: meta.orig_len,
            data,
        }))
    }

    /// Reads the next record into a caller-owned buffer, returning its
    /// header fields; `Ok(None)` signals a clean end of file.
    ///
    /// `buf` is resized to the record's capture length but keeps its
    /// allocation between calls, so a loop that passes the same buffer
    /// performs **zero heap allocations per record** once the buffer has
    /// grown to the file's largest record — the hot path behind
    /// [`replay`](crate::replay).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Reader::next_record`].
    pub fn read_record_into(&mut self, buf: &mut Vec<u8>) -> Result<Option<RecordMeta>, PcapError> {
        let mut header = [0u8; 16];
        if read_exact_or_truncated(&mut self.inner, &mut header, true)?.is_none() { return Ok(None) }
        let (meta, incl_len) = parse_record_header(&header, self.swapped, self.precision)?;
        buf.resize(incl_len as usize, 0);
        read_exact_or_truncated(&mut self.inner, buf, false)?.ok_or(PcapError::TruncatedFile)?;
        Ok(Some(meta))
    }

    /// Consumes the reader, returning the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Iterator for Reader<R> {
    type Item = Result<Record, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// The parsed 24-byte pcap global header, shared by both readers.
#[derive(Debug, Clone, Copy)]
struct GlobalHeader {
    link_type: LinkType,
    precision: TsPrecision,
    swapped: bool,
    snaplen: u32,
}

impl GlobalHeader {
    fn parse(header: &[u8; 24]) -> Result<Self, PcapError> {
        let magic_raw = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let (precision, swapped) = match magic_raw {
            MAGIC_MICROS => (TsPrecision::Micros, false),
            MAGIC_NANOS => (TsPrecision::Nanos, false),
            m if m.swap_bytes() == MAGIC_MICROS => (TsPrecision::Micros, true),
            m if m.swap_bytes() == MAGIC_NANOS => (TsPrecision::Nanos, true),
            m => return Err(PcapError::BadMagic(m)),
        };
        let u32_at = |off: usize| {
            let v = u32::from_le_bytes(header[off..off + 4].try_into().expect("4 bytes"));
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        Ok(GlobalHeader {
            link_type: LinkType::from_raw(u32_at(20)),
            precision,
            swapped,
            snaplen: u32_at(16),
        })
    }
}

/// Parses a 16-byte per-record header into its meta fields and capture
/// length, validating the length against [`MAX_SANE_INCL_LEN`].
fn parse_record_header(
    header: &[u8; 16],
    swapped: bool,
    precision: TsPrecision,
) -> Result<(RecordMeta, u32), PcapError> {
    let field = |off: usize| {
        let v = u32::from_le_bytes(header[off..off + 4].try_into().expect("4 bytes"));
        if swapped {
            v.swap_bytes()
        } else {
            v
        }
    };
    let ts_sec = field(0);
    let ts_frac = field(4);
    let incl_len = field(8);
    let orig_len = field(12);
    if incl_len > MAX_SANE_INCL_LEN {
        return Err(PcapError::OversizedRecord { incl_len });
    }
    let ts_nanos = match precision {
        TsPrecision::Micros => ts_frac.saturating_mul(1000),
        TsPrecision::Nanos => ts_frac,
    };
    Ok((RecordMeta { ts_sec, ts_nanos, orig_len }, incl_len))
}

/// A borrowed reader over an in-memory pcap file.
///
/// Where [`Reader`] copies each record into a caller buffer (the only
/// option over a generic [`Read`] stream), `SliceReader` hands out
/// records as subslices of the original file bytes — no copy, no buffer,
/// no allocation at all. This is the fastest ingest path for a capture
/// that is already in memory (read whole, or memory-mapped): downstream
/// borrowed decoding only ever touches the few header bytes it needs, so
/// record bodies are never read.
///
/// # Example
///
/// ```
/// use wifiprint_pcap::{LinkType, Record, SliceReader, Writer};
///
/// # fn main() -> Result<(), wifiprint_pcap::PcapError> {
/// let mut file = Vec::new();
/// let mut w = Writer::new(&mut file, LinkType::Ieee80211)?;
/// w.write_record(&Record::from_micros(7, vec![0xAA, 0xBB]))?;
///
/// let mut r = SliceReader::new(&file)?;
/// let (meta, bytes) = r.next_record()?.expect("one record");
/// assert_eq!(meta.timestamp_micros(), 7);
/// assert_eq!(bytes, &file[file.len() - 2..]); // borrowed, not copied
/// assert!(r.next_record()?.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SliceReader<'a> {
    rest: &'a [u8],
    link_type: LinkType,
    precision: TsPrecision,
    swapped: bool,
    snaplen: u32,
}

impl<'a> SliceReader<'a> {
    /// Validates the global header and positions the reader at the first
    /// record.
    ///
    /// # Errors
    ///
    /// [`PcapError::BadMagic`] or [`PcapError::TruncatedFile`] for a
    /// malformed global header.
    pub fn new(file: &'a [u8]) -> Result<Self, PcapError> {
        let Some(header) = file.get(..24) else {
            return Err(PcapError::TruncatedFile);
        };
        let global = GlobalHeader::parse(header.try_into().expect("24 bytes"))?;
        Ok(SliceReader {
            rest: &file[24..],
            link_type: global.link_type,
            precision: global.precision,
            swapped: global.swapped,
            snaplen: global.snaplen,
        })
    }

    /// The file's data-link type.
    #[must_use] 
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The file's declared snapshot length.
    #[must_use] 
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The file's timestamp precision.
    #[must_use] 
    pub fn precision(&self) -> TsPrecision {
        self.precision
    }

    /// `true` if the file was written in the opposite byte order.
    #[must_use] 
    pub fn is_swapped(&self) -> bool {
        self.swapped
    }

    /// Returns the next record's header fields and its bytes, borrowed
    /// straight from the file; `Ok(None)` signals a clean end of file.
    ///
    /// # Errors
    ///
    /// [`PcapError::TruncatedFile`] if the file ends inside a record, or
    /// [`PcapError::OversizedRecord`] for implausible capture lengths.
    pub fn next_record(&mut self) -> Result<Option<(RecordMeta, &'a [u8])>, PcapError> {
        if self.rest.is_empty() {
            return Ok(None);
        }
        let Some(header) = self.rest.get(..16) else {
            return Err(PcapError::TruncatedFile);
        };
        let (meta, incl_len) =
            parse_record_header(header.try_into().expect("16 bytes"), self.swapped, self.precision)?;
        let end = 16 + incl_len as usize;
        let Some(data) = self.rest.get(16..end) else {
            return Err(PcapError::TruncatedFile);
        };
        self.rest = &self.rest[end..];
        Ok(Some((meta, data)))
    }
}

/// Reads exactly `buf.len()` bytes. Returns `Ok(None)` on clean EOF at the
/// first byte when `eof_ok_at_start`; `Err(TruncatedFile)` on EOF later.
fn read_exact_or_truncated<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    eof_ok_at_start: bool,
) -> Result<Option<()>, PcapError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && eof_ok_at_start {
                    Ok(None)
                } else {
                    Err(PcapError::TruncatedFile)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(PcapError::Io(e)),
        }
    }
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a big-endian µs-precision file by hand.
    fn big_endian_file() -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        f.extend_from_slice(&2u16.to_be_bytes()); // major
        f.extend_from_slice(&4u16.to_be_bytes()); // minor
        f.extend_from_slice(&0u32.to_be_bytes()); // thiszone
        f.extend_from_slice(&0u32.to_be_bytes()); // sigfigs
        f.extend_from_slice(&65535u32.to_be_bytes()); // snaplen
        f.extend_from_slice(&105u32.to_be_bytes()); // network
        // one record
        f.extend_from_slice(&100u32.to_be_bytes()); // ts_sec
        f.extend_from_slice(&7u32.to_be_bytes()); // ts_usec
        f.extend_from_slice(&3u32.to_be_bytes()); // incl_len
        f.extend_from_slice(&3u32.to_be_bytes()); // orig_len
        f.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        f
    }

    #[test]
    fn reads_foreign_endian_files() {
        let file = big_endian_file();
        let mut reader = Reader::new(&file[..]).unwrap();
        assert!(reader.is_swapped());
        assert_eq!(reader.link_type(), LinkType::Ieee80211);
        assert_eq!(reader.snaplen(), 65535);
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_sec, 100);
        assert_eq!(rec.ts_nanos, 7000);
        assert_eq!(rec.data, vec![0xAB, 0xCD, 0xEF]);
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn rejects_bad_magic() {
        let file = [0u8; 24];
        assert!(matches!(Reader::new(&file[..]), Err(PcapError::BadMagic(0))));
    }

    #[test]
    fn rejects_truncated_global_header() {
        let file = MAGIC_MICROS.to_le_bytes();
        assert!(matches!(Reader::new(&file[..]), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn rejects_truncated_record_body() {
        let mut file = big_endian_file();
        file.truncate(file.len() - 1);
        let mut reader = Reader::new(&file[..]).unwrap();
        assert!(matches!(reader.next_record(), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn rejects_truncated_record_header() {
        let mut file = big_endian_file();
        file.truncate(24 + 7);
        let mut reader = Reader::new(&file[..]).unwrap();
        assert!(matches!(reader.next_record(), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn rejects_oversized_record() {
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC_MICROS.to_le_bytes());
        file.extend_from_slice(&[0u8; 16]);
        file.extend_from_slice(&127u32.to_le_bytes());
        // record header with incl_len = 1 GiB
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&(1u32 << 30).to_le_bytes());
        file.extend_from_slice(&(1u32 << 30).to_le_bytes());
        let mut reader = Reader::new(&file[..]).unwrap();
        assert!(matches!(reader.next_record(), Err(PcapError::OversizedRecord { .. })));
    }

    #[test]
    fn slice_reader_borrows_records_in_place() {
        let file = big_endian_file();
        let mut reader = SliceReader::new(&file).unwrap();
        assert!(reader.is_swapped());
        assert_eq!(reader.link_type(), LinkType::Ieee80211);
        assert_eq!(reader.snaplen(), 65535);
        let (meta, data) = reader.next_record().unwrap().unwrap();
        assert_eq!(meta.ts_sec, 100);
        assert_eq!(meta.ts_nanos, 7000);
        assert_eq!(data, &[0xAB, 0xCD, 0xEF]);
        // The record bytes alias the file, they are not a copy.
        assert_eq!(data.as_ptr(), file[file.len() - 3..].as_ptr());
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn slice_reader_agrees_with_streaming_reader() {
        let file = big_endian_file();
        let mut streaming = Reader::new(&file[..]).unwrap();
        let mut sliced = SliceReader::new(&file).unwrap();
        while let Some(rec) = streaming.next_record().unwrap() {
            let (meta, data) = sliced.next_record().unwrap().unwrap();
            assert_eq!((meta.ts_sec, meta.ts_nanos, meta.orig_len), (rec.ts_sec, rec.ts_nanos, rec.orig_len));
            assert_eq!(data, &rec.data[..]);
        }
        assert!(sliced.next_record().unwrap().is_none());
    }

    #[test]
    fn slice_reader_rejects_malformed_files() {
        assert!(matches!(SliceReader::new(&[]), Err(PcapError::TruncatedFile)));
        assert!(matches!(SliceReader::new(&[0u8; 24]), Err(PcapError::BadMagic(0))));
        let mut file = big_endian_file();
        file.truncate(file.len() - 1);
        let mut reader = SliceReader::new(&file).unwrap();
        assert!(matches!(reader.next_record(), Err(PcapError::TruncatedFile)));
        let mut file = big_endian_file();
        file.truncate(24 + 7);
        let mut reader = SliceReader::new(&file).unwrap();
        assert!(matches!(reader.next_record(), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn iterator_interface() {
        let file = big_endian_file();
        let reader = Reader::new(&file[..]).unwrap();
        let records: Result<Vec<_>, _> = reader.collect();
        assert_eq!(records.unwrap().len(), 1);
    }
}
