//! Streaming pcap writer.

use std::io::Write;

use crate::format::{LinkType, PcapError, Record, TsPrecision, MAGIC_MICROS, MAGIC_NANOS};

/// Default snapshot length written to the global header.
pub const DEFAULT_SNAPLEN: u32 = 65_535;

/// A streaming writer producing a classic pcap file in native little-endian
/// byte order.
///
/// See [`Reader`](crate::Reader) for the matching read side and the crate
/// docs for a full round-trip example.
#[derive(Debug)]
pub struct Writer<W> {
    inner: W,
    precision: TsPrecision,
    records_written: u64,
}

impl<W: Write> Writer<W> {
    /// Creates a microsecond-precision writer and emits the global header.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the header.
    pub fn new(inner: W, link_type: LinkType) -> Result<Self, PcapError> {
        Self::with_precision(inner, link_type, TsPrecision::Micros)
    }

    /// Creates a writer with an explicit timestamp precision.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the header.
    pub fn with_precision(
        mut inner: W,
        link_type: LinkType,
        precision: TsPrecision,
    ) -> Result<Self, PcapError> {
        let magic = match precision {
            TsPrecision::Micros => MAGIC_MICROS,
            TsPrecision::Nanos => MAGIC_NANOS,
        };
        inner.write_all(&magic.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&DEFAULT_SNAPLEN.to_le_bytes())?;
        inner.write_all(&link_type.to_raw().to_le_bytes())?;
        Ok(Writer { inner, precision, records_written: 0 })
    }

    /// Appends one record.
    ///
    /// With microsecond precision the nanosecond fraction is truncated to
    /// whole microseconds, matching what libpcap itself would store.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn write_record(&mut self, record: &Record) -> Result<(), PcapError> {
        let ts_frac = match self.precision {
            TsPrecision::Micros => record.ts_nanos / 1000,
            TsPrecision::Nanos => record.ts_nanos,
        };
        self.inner.write_all(&record.ts_sec.to_le_bytes())?;
        self.inner.write_all(&ts_frac.to_le_bytes())?;
        self.inner.write_all(&(record.data.len() as u32).to_le_bytes())?;
        self.inner.write_all(&record.orig_len.to_le_bytes())?;
        self.inner.write_all(&record.data)?;
        self.records_written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Any I/O error from flushing.
    pub fn flush(&mut self) -> Result<(), PcapError> {
        self.inner.flush()?;
        Ok(())
    }

    /// Consumes the writer, returning the underlying stream (not flushed).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reader;

    #[test]
    fn micros_round_trip_truncates_nanos() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf, LinkType::Ieee80211Radiotap).unwrap();
        w.write_record(&Record::new(5, 123_456_789, vec![9; 4])).unwrap();
        assert_eq!(w.records_written(), 1);
        w.flush().unwrap();

        let mut r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.precision(), TsPrecision::Micros);
        let rec = r.next_record().unwrap().unwrap();
        // nanos truncated to whole µs: 123_456_789 -> 123_456_000.
        assert_eq!(rec.ts_nanos, 123_456_000);
    }

    #[test]
    fn nanos_precision_preserves_fraction() {
        let mut buf = Vec::new();
        let mut w =
            Writer::with_precision(&mut buf, LinkType::Ieee80211, TsPrecision::Nanos).unwrap();
        w.write_record(&Record::new(5, 123_456_789, vec![])).unwrap();

        let mut r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.precision(), TsPrecision::Nanos);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_nanos, 123_456_789);
    }

    #[test]
    fn truncated_records_keep_orig_len() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf, LinkType::Prism).unwrap();
        w.write_record(&Record::truncated(1, 0, 1500, vec![0; 64])).unwrap();
        let mut r = Reader::new(&buf[..]).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert!(rec.is_truncated());
        assert_eq!(rec.orig_len, 1500);
        assert_eq!(rec.data.len(), 64);
    }

    #[test]
    fn empty_file_has_just_header() {
        let mut buf = Vec::new();
        Writer::new(&mut buf, LinkType::Ieee80211).unwrap();
        assert_eq!(buf.len(), 24);
        let mut r = Reader::new(&buf[..]).unwrap();
        assert!(r.next_record().unwrap().is_none());
    }
}
