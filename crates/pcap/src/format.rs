//! On-disk pcap format definitions.

use core::fmt;

/// Magic number of a microsecond-precision pcap file (native order).
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Magic number of a nanosecond-precision pcap file (native order).
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;

/// Timestamp precision declared by the file's magic number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TsPrecision {
    /// Record timestamps carry microseconds in the fraction field.
    #[default]
    Micros,
    /// Record timestamps carry nanoseconds in the fraction field.
    Nanos,
}

/// Data-link types relevant to 802.11 capture, per the tcpdump registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkType {
    /// Raw IEEE 802.11 frames, no capture header (DLT 105).
    Ieee80211,
    /// 802.11 preceded by a Prism monitor header (DLT 119).
    Prism,
    /// 802.11 preceded by a Radiotap header (DLT 127).
    Ieee80211Radiotap,
    /// Ethernet (DLT 1) — accepted so foreign files can still be walked.
    Ethernet,
    /// Any other registered value.
    Other(
        /// Raw link-type number.
        u32,
    ),
}

impl LinkType {
    /// The registry number for this link type.
    #[must_use] 
    pub const fn to_raw(self) -> u32 {
        match self {
            LinkType::Ethernet => 1,
            LinkType::Ieee80211 => 105,
            LinkType::Prism => 119,
            LinkType::Ieee80211Radiotap => 127,
            LinkType::Other(v) => v,
        }
    }

    /// Decodes a registry number.
    #[must_use] 
    pub const fn from_raw(raw: u32) -> LinkType {
        match raw {
            1 => LinkType::Ethernet,
            105 => LinkType::Ieee80211,
            119 => LinkType::Prism,
            127 => LinkType::Ieee80211Radiotap,
            v => LinkType::Other(v),
        }
    }
}

impl fmt::Display for LinkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkType::Ethernet => f.write_str("EN10MB"),
            LinkType::Ieee80211 => f.write_str("IEEE802_11"),
            LinkType::Prism => f.write_str("PRISM_HEADER"),
            LinkType::Ieee80211Radiotap => f.write_str("IEEE802_11_RADIO"),
            LinkType::Other(v) => write!(f, "DLT({v})"),
        }
    }
}

/// One captured packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Seconds since the Unix epoch.
    pub ts_sec: u32,
    /// Sub-second part, in nanoseconds regardless of file precision.
    /// (Microsecond files lose the last three digits on write.)
    pub ts_nanos: u32,
    /// Original on-air length of the packet in bytes.
    pub orig_len: u32,
    /// Captured bytes (may be shorter than `orig_len` due to snaplen).
    pub data: Vec<u8>,
}

impl Record {
    /// A record whose captured data is the complete packet.
    #[must_use] 
    pub fn new(ts_sec: u32, ts_nanos: u32, data: Vec<u8>) -> Self {
        let orig_len = data.len() as u32;
        Record { ts_sec, ts_nanos, orig_len, data }
    }

    /// A record truncated by a snapshot length.
    #[must_use] 
    pub fn truncated(ts_sec: u32, ts_nanos: u32, orig_len: u32, data: Vec<u8>) -> Self {
        Record { ts_sec, ts_nanos, orig_len, data }
    }

    /// Creates a record from an absolute microsecond timestamp.
    #[must_use] 
    pub fn from_micros(ts_micros: u64, data: Vec<u8>) -> Self {
        Record::new((ts_micros / 1_000_000) as u32, ((ts_micros % 1_000_000) * 1000) as u32, data)
    }

    /// Absolute timestamp in microseconds since the epoch.
    #[must_use] 
    pub fn timestamp_micros(&self) -> u64 {
        u64::from(self.ts_sec) * 1_000_000 + u64::from(self.ts_nanos / 1000)
    }

    /// Absolute timestamp in nanoseconds since the epoch.
    #[must_use] 
    pub fn timestamp_nanos(&self) -> u64 {
        u64::from(self.ts_sec) * 1_000_000_000 + u64::from(self.ts_nanos)
    }

    /// `true` if snaplen truncated this record.
    #[must_use] 
    pub fn is_truncated(&self) -> bool {
        (self.data.len() as u32) < self.orig_len
    }
}

/// Header fields of one record, as returned by the buffer-reusing
/// [`Reader::read_record_into`](crate::Reader::read_record_into) —
/// everything a [`Record`] carries except the owned payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Seconds since the Unix epoch.
    pub ts_sec: u32,
    /// Sub-second part, in nanoseconds regardless of file precision.
    pub ts_nanos: u32,
    /// Original on-air length of the packet in bytes.
    pub orig_len: u32,
}

impl RecordMeta {
    /// Absolute timestamp in microseconds since the epoch.
    #[must_use] 
    pub fn timestamp_micros(&self) -> u64 {
        u64::from(self.ts_sec) * 1_000_000 + u64::from(self.ts_nanos / 1000)
    }

    /// Absolute timestamp in nanoseconds since the epoch.
    #[must_use] 
    pub fn timestamp_nanos(&self) -> u64 {
        u64::from(self.ts_sec) * 1_000_000_000 + u64::from(self.ts_nanos)
    }
}

/// Errors produced while reading or writing pcap files.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with a known pcap magic number.
    BadMagic(u32),
    /// A record header declares an implausible capture length.
    OversizedRecord {
        /// Declared capture length.
        incl_len: u32,
    },
    /// The file ended in the middle of a header or record body.
    TruncatedFile,
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::OversizedRecord { incl_len } => {
                write!(f, "record capture length {incl_len} exceeds sanity bound")
            }
            PcapError::TruncatedFile => f.write_str("file truncated mid-record"),
        }
    }
}

impl std::error::Error for PcapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PcapError {
    fn from(e: std::io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Maximum capture length accepted per record; generous upper bound used to
/// reject corrupt headers before attempting a huge allocation.
pub(crate) const MAX_SANE_INCL_LEN: u32 = 256 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_type_raw_round_trip() {
        for lt in [
            LinkType::Ethernet,
            LinkType::Ieee80211,
            LinkType::Prism,
            LinkType::Ieee80211Radiotap,
            LinkType::Other(228),
        ] {
            assert_eq!(LinkType::from_raw(lt.to_raw()), lt);
        }
    }

    #[test]
    fn record_timestamp_conversions() {
        let r = Record::from_micros(1_234_567_890_654_321, vec![1]);
        assert_eq!(r.ts_sec, 1_234_567_890);
        assert_eq!(r.ts_nanos, 654_321_000);
        assert_eq!(r.timestamp_micros(), 1_234_567_890_654_321);
        assert_eq!(r.timestamp_nanos(), 1_234_567_890_654_321_000);
    }

    #[test]
    fn truncation_flag() {
        let full = Record::new(0, 0, vec![0; 10]);
        assert!(!full.is_truncated());
        let cut = Record::truncated(0, 0, 100, vec![0; 10]);
        assert!(cut.is_truncated());
    }

    #[test]
    fn display_of_errors_and_linktypes() {
        assert_eq!(LinkType::Ieee80211Radiotap.to_string(), "IEEE802_11_RADIO");
        assert_eq!(LinkType::Other(9).to_string(), "DLT(9)");
        let e = PcapError::BadMagic(0xdead_beef);
        assert!(e.to_string().contains("0xdeadbeef"));
    }
}
