//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness.
//!
//! The build environment for this workspace is offline, so the real
//! criterion cannot be fetched from crates.io. This crate implements the
//! subset of its API the workspace benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `criterion_group!` and
//! `criterion_main!` — with a plain wall-clock measurement loop:
//! a timed warm-up, then `sample_size` samples whose per-iteration times
//! yield the reported median/mean/min.
//!
//! Extras over the real crate:
//!
//! * `WIFIPRINT_BENCH_JSON=<path>` appends one JSON object per finished
//!   bench (`{"name":…,"median_ns":…,"mean_ns":…,"min_ns":…,"samples":…}`)
//!   so perf snapshots like `BENCH_1.json` can be scripted;
//! * positional CLI arguments act as substring filters on bench names
//!   (`cargo bench --bench fingerprint -- match`), flags are ignored.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration; reported alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A bench identifier: a function name, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter (grouped benches prepend the
    /// group name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, auto-scaling iterations per sample so that timer
    /// resolution does not dominate sub-microsecond routines.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for the configured duration and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Aim for ~2 ms per sample, clamped to keep total time bounded.
        let iters_per_sample = ((2_000_000.0 / est_ns) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full bench name (group-qualified).
    pub name: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The bench registry and runner.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    filters: Vec<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            filters,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per bench.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per bench.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs one bench.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(id.id.clone(), None, |b| f(b));
        self
    }

    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// All results measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn matches_filter(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    fn run_one<F>(&mut self, name: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches_filter(&name) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            return; // closure never called iter()
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples[0];
        let result = BenchResult {
            name: name.clone(),
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
            samples: samples.len(),
        };
        report(&result, throughput);
        self.results.push(result);
    }
}

/// A group of related benches sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one bench within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, |b| f(b));
        self
    }

    /// Runs one bench parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn report(result: &BenchResult, throughput: Option<Throughput>) {
    let human = human_time(result.median_ns);
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let gib = n as f64 / result.median_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
            format!("  thrpt: {gib:.3} GiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / result.median_ns * 1e9;
            format!("  thrpt: {eps:.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "{:<48} time: [{human} median, {} min, {} samples]{rate}",
        result.name,
        human_time(result.min_ns),
        result.samples,
    );
    if let Ok(path) = std::env::var("WIFIPRINT_BENCH_JSON") {
        if let Ok(mut f) =
            std::fs::OpenOptions::new().create(true).append(true).open(path)
        {
            let _ = writeln!(
                f,
                "{{\"name\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{}}}",
                result.name, result.median_ns, result.mean_ns, result.min_ns, result.samples,
            );
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group: either `criterion_group!(name, target, …)` or
/// the long form with an explicit `config = …` constructor.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin_tiny", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
    }

    #[test]
    fn measures_and_records() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up: Duration::from_millis(1),
            filters: Vec::new(),
            results: Vec::new(),
        };
        spin(&mut c);
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.name, "spin_tiny");
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
    }

    #[test]
    fn groups_qualify_names_and_filters_apply() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up: Duration::from_millis(1),
            filters: vec!["wanted".into()],
            results: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(10));
            g.bench_function("wanted", |b| b.iter(|| black_box(1u32) + 1));
            g.bench_function("skipped", |b| b.iter(|| black_box(1u32) + 1));
            g.finish();
        }
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].name, "grp/wanted");
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
        assert!(human_time(12_000_000_000.0).ends_with("s"));
    }
}
