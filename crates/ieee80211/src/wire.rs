//! Borrowed, zero-copy view over an on-air 802.11 MAC frame.
//!
//! [`WireFrame`] parses exactly the header fields passive fingerprinting
//! needs — Frame Control, duration, addr1–3 (plus addr4 for WDS frames),
//! sequence control and the retry bit — directly from a byte slice. No
//! body copy is made and nothing is allocated: decoding a captured record
//! is pure header arithmetic. The view is proven field-for-field equal to
//! [`Frame::parse`] / [`Frame::parse_without_fcs`] on every valid frame
//! (see the crate's property tests).
//!
//! # Example
//!
//! ```
//! use wifiprint_ieee80211::{Frame, MacAddr, WireFrame};
//!
//! let sta = MacAddr::from_index(1);
//! let ap = MacAddr::from_index(2);
//! let bytes = Frame::data_to_ds(sta, ap, ap, 100).to_bytes();
//!
//! // Borrow the on-air bytes; no allocation, no body copy.
//! let view = WireFrame::try_from(&bytes[..]).unwrap();
//! assert_eq!(view.transmitter(), Some(sta));
//! assert_eq!(view.receiver(), ap);
//! assert_eq!(view.wire_len(), bytes.len());
//! ```

use crate::fc::{FrameControl, FrameKind, FrameType};
use crate::frame::{FrameError, FCS_LEN};
use crate::mac::MacAddr;

/// A borrowed typed view over one on-air 802.11 MAC frame.
///
/// Construction validates the header demanded by the frame's kind and
/// flags; accessors then read addresses and control fields straight out of
/// the underlying slice. Use [`WireFrame::parse`] for buffers that end with
/// an FCS (the usual monitor capture) and [`WireFrame::parse_without_fcs`]
/// for captures whose driver stripped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFrame<'a> {
    buf: &'a [u8],
    fc: FrameControl,
    header_len: usize,
    has_fcs: bool,
}

impl<'a> WireFrame<'a> {
    /// Parses a borrowed view over a buffer that ends with a 4-byte FCS.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] if the buffer is shorter than the header
    /// demanded by the frame's kind and flags, and
    /// [`FrameError::ReservedType`] for type bits `0b11` — the same errors,
    /// with the same `needed` counts, as [`Frame::parse`](crate::Frame::parse).
    #[inline]
    pub fn parse(buf: &'a [u8]) -> Result<WireFrame<'a>, FrameError> {
        Self::parse_inner(buf, true)
    }

    /// Parses a borrowed view over a buffer without a trailing FCS.
    ///
    /// # Errors
    ///
    /// Same as [`WireFrame::parse`].
    #[inline]
    pub fn parse_without_fcs(buf: &'a [u8]) -> Result<WireFrame<'a>, FrameError> {
        Self::parse_inner(buf, false)
    }

    #[inline]
    fn parse_inner(buf: &'a [u8], has_fcs: bool) -> Result<WireFrame<'a>, FrameError> {
        let err = |needed: usize| FrameError::Truncated { needed, available: buf.len() };
        if buf.len() < 10 {
            return Err(err(10));
        }
        let raw_fc = u16::from_le_bytes([buf[0], buf[1]]);
        if (raw_fc >> 2) & 0b11 == 3 {
            return Err(FrameError::ReservedType(3));
        }
        let fc = FrameControl::from_raw(raw_fc);
        let header_len = match fc.kind() {
            FrameKind::Cts | FrameKind::Ack => 10,
            FrameKind::Rts
            | FrameKind::PsPoll
            | FrameKind::CfEnd
            | FrameKind::CfEndCfAck
            | FrameKind::BlockAckReq
            | FrameKind::BlockAck => {
                if buf.len() < 16 {
                    return Err(err(16));
                }
                16
            }
            kind => {
                let mut need = 24;
                if fc.to_ds() && fc.from_ds() {
                    need += 6;
                }
                if kind.has_qos_control() {
                    need += 2;
                }
                if buf.len() < need {
                    return Err(err(need));
                }
                need
            }
        };
        Ok(WireFrame { buf, fc, header_len, has_fcs })
    }

    #[inline]
    fn addr_at(&self, off: usize) -> MacAddr {
        MacAddr::from_slice(&self.buf[off..]).expect("validated header length")
    }

    // ----- accessors (mirroring `Frame`) -----------------------------------

    /// The underlying captured bytes the view borrows.
    #[inline]
    #[must_use] 
    pub fn as_bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// The frame control field.
    #[inline]
    #[must_use] 
    pub fn frame_control(&self) -> FrameControl {
        self.fc
    }

    /// The frame kind (type + subtype).
    #[inline]
    #[must_use] 
    pub fn kind(&self) -> FrameKind {
        self.fc.kind()
    }

    /// Retry flag from Frame Control.
    #[inline]
    #[must_use] 
    pub fn retry(&self) -> bool {
        self.fc.retry()
    }

    /// The raw duration/ID field.
    #[inline]
    #[must_use] 
    pub fn duration(&self) -> u16 {
        u16::from_le_bytes([self.buf[2], self.buf[3]])
    }

    /// Receiver address (addr1), present on every frame.
    #[inline]
    #[must_use] 
    pub fn receiver(&self) -> MacAddr {
        self.addr_at(4)
    }

    /// Transmitter address (addr2), absent for ACK and CTS.
    ///
    /// This is the address the fingerprinting pipeline attributes
    /// observations to; `None` corresponds to the paper's `sᵢ = null`.
    #[inline]
    #[must_use] 
    pub fn transmitter(&self) -> Option<MacAddr> {
        if self.header_len >= 16 {
            Some(self.addr_at(10))
        } else {
            None
        }
    }

    /// The third address, when the kind carries one.
    #[inline]
    #[must_use] 
    pub fn addr3(&self) -> Option<MacAddr> {
        if self.header_len >= 24 {
            Some(self.addr_at(16))
        } else {
            None
        }
    }

    /// The fourth address (WDS frames with both `ToDS` and `FromDS` set).
    #[inline]
    #[must_use] 
    pub fn addr4(&self) -> Option<MacAddr> {
        if self.header_len >= 24 && self.fc.to_ds() && self.fc.from_ds() {
            Some(self.addr_at(24))
        } else {
            None
        }
    }

    /// Raw sequence-control field, when the frame carries one.
    #[inline]
    #[must_use] 
    pub fn sequence_control(&self) -> Option<u16> {
        if self.header_len >= 24 {
            Some(u16::from_le_bytes([self.buf[22], self.buf[23]]))
        } else {
            None
        }
    }

    /// Sequence number (0..=4095) when the frame carries one.
    #[inline]
    #[must_use] 
    pub fn sequence(&self) -> Option<u16> {
        self.sequence_control().map(|sc| sc >> 4)
    }

    /// `QoS` control field for `QoS` subtypes.
    #[inline]
    #[must_use] 
    pub fn qos_control(&self) -> Option<u16> {
        if self.fc.kind().has_qos_control() {
            let off = self.header_len - 2;
            Some(u16::from_le_bytes([self.buf[off], self.buf[off + 1]]))
        } else {
            None
        }
    }

    /// Logical destination address per the ToDS/FromDS rules.
    #[must_use] 
    pub fn destination(&self) -> Option<MacAddr> {
        match self.kind().frame_type() {
            FrameType::Management | FrameType::Control => Some(self.receiver()),
            FrameType::Data => {
                if self.fc.to_ds() {
                    self.addr3()
                } else {
                    Some(self.receiver())
                }
            }
        }
    }

    /// Logical source address per the ToDS/FromDS rules.
    #[must_use] 
    pub fn source(&self) -> Option<MacAddr> {
        match self.kind().frame_type() {
            FrameType::Management | FrameType::Control => self.transmitter(),
            FrameType::Data => match (self.fc.to_ds(), self.fc.from_ds()) {
                (false | true, false) => self.transmitter(),
                (false, true) => self.addr3(),
                (true, true) => self.addr4(),
            },
        }
    }

    /// BSSID per the ToDS/FromDS rules, when determinable.
    #[must_use] 
    pub fn bssid(&self) -> Option<MacAddr> {
        match self.kind().frame_type() {
            FrameType::Management => self.addr3(),
            FrameType::Control => match self.kind() {
                FrameKind::PsPoll => Some(self.receiver()),
                _ => None,
            },
            FrameType::Data => match (self.fc.to_ds(), self.fc.from_ds()) {
                (false, false) => self.addr3(),
                (true, false) => Some(self.receiver()),
                (false, true) => self.transmitter(),
                (true, true) => None,
            },
        }
    }

    /// Frame body (payload after the MAC header, before the FCS), borrowed.
    #[inline]
    #[must_use] 
    pub fn body(&self) -> &'a [u8] {
        &self.buf[self.header_len..self.body_end()]
    }

    #[inline]
    fn body_end(&self) -> usize {
        let tail = if self.has_fcs { FCS_LEN } else { 0 };
        self.buf.len().saturating_sub(tail).max(self.header_len)
    }

    /// Header length in bytes for this frame's kind and flags (no FCS).
    #[inline]
    #[must_use] 
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Total on-air length in bytes, including the 4-byte FCS — the
    /// paper's `sizeᵢ`, regardless of whether the capture stored the FCS.
    #[inline]
    #[must_use] 
    pub fn wire_len(&self) -> usize {
        self.body_end() + FCS_LEN
    }
}

/// The SNIPPETS-idiom entry point: a monitor capture's on-air bytes
/// (FCS included) viewed in place.
impl<'a> TryFrom<&'a [u8]> for WireFrame<'a> {
    type Error = FrameError;

    fn try_from(buf: &'a [u8]) -> Result<Self, Self::Error> {
        WireFrame::parse(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn sta() -> MacAddr {
        MacAddr::from_index(0x11)
    }
    fn ap() -> MacAddr {
        MacAddr::from_index(0x22)
    }
    fn peer() -> MacAddr {
        MacAddr::from_index(0x33)
    }

    /// Every accessor of the view must agree with the materializing parser.
    fn assert_matches_frame(bytes: &[u8], has_fcs: bool) {
        let (view, frame) = if has_fcs {
            (WireFrame::parse(bytes).unwrap(), Frame::parse(bytes).unwrap())
        } else {
            (
                WireFrame::parse_without_fcs(bytes).unwrap(),
                Frame::parse_without_fcs(bytes).unwrap(),
            )
        };
        assert_eq!(view.frame_control(), frame.frame_control());
        assert_eq!(view.kind(), frame.kind());
        assert_eq!(view.duration(), frame.duration());
        assert_eq!(view.receiver(), frame.receiver());
        assert_eq!(view.transmitter(), frame.transmitter());
        assert_eq!(view.addr3(), frame.addr3());
        assert_eq!(view.sequence(), frame.sequence());
        assert_eq!(view.qos_control(), frame.qos_control());
        assert_eq!(view.destination(), frame.destination());
        assert_eq!(view.source(), frame.source());
        assert_eq!(view.bssid(), frame.bssid());
        assert_eq!(view.body(), frame.body());
        assert_eq!(view.header_len(), frame.header_len());
        assert_eq!(view.wire_len(), frame.wire_len());
        assert_eq!(view.retry(), frame.frame_control().retry());
    }

    #[test]
    fn mirrors_frame_parse_on_representative_kinds() {
        let frames = [
            Frame::data_to_ds(sta(), ap(), peer(), 42).with_sequence(1234),
            Frame::data_from_ds(sta(), ap(), peer(), 10),
            Frame::data_ibss(sta(), ap(), peer(), 7),
            Frame::data_to_ds(sta(), ap(), peer(), 99).with_qos(6),
            Frame::null_function(sta(), ap(), true),
            Frame::beacon(ap(), vec![1, 2, 3]),
            Frame::probe_req(sta(), vec![]),
            Frame::rts(ap(), sta(), 314),
            Frame::cts(sta(), 200),
            Frame::ack(sta()),
            Frame::ps_poll(ap(), sta(), 5),
        ];
        for frame in frames {
            let bytes = frame.to_bytes();
            assert_matches_frame(&bytes, true);
            let stripped = &bytes[..bytes.len() - FCS_LEN];
            assert_matches_frame(stripped, false);
        }
    }

    #[test]
    fn four_address_frame_fields() {
        let fc = FrameControl::new(FrameKind::Data).with_to_ds(true).with_from_ds(true);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&fc.to_raw().to_le_bytes());
        bytes.extend_from_slice(&7u16.to_le_bytes());
        for addr in [ap(), sta(), peer(), MacAddr::from_index(0x44)] {
            bytes.extend_from_slice(&addr.octets());
            if bytes.len() == 22 {
                bytes.extend_from_slice(&((55u16) << 4).to_le_bytes());
            }
        }
        bytes.extend_from_slice(&[9; 20]);
        bytes.extend_from_slice(&[0; FCS_LEN]);
        let view = WireFrame::parse(&bytes).unwrap();
        assert_eq!(view.addr4(), Some(MacAddr::from_index(0x44)));
        assert_eq!(view.source(), Some(MacAddr::from_index(0x44)));
        assert_eq!(view.bssid(), None);
        assert_eq!(view.sequence(), Some(55));
        assert_matches_frame(&bytes, true);
    }

    #[test]
    fn truncation_errors_match_frame_parse() {
        let bytes = Frame::data_to_ds(sta(), ap(), peer(), 0).to_bytes();
        for cut in [0usize, 5, 9, 15, 23] {
            assert_eq!(
                WireFrame::parse(&bytes[..cut]).unwrap_err(),
                Frame::parse(&bytes[..cut]).unwrap_err(),
                "cut={cut}"
            );
        }
        let ack = Frame::ack(sta()).to_bytes();
        for cut in 0..ack.len() {
            assert_eq!(
                WireFrame::parse(&ack[..cut]).is_err(),
                Frame::parse(&ack[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn reserved_type_rejected() {
        let raw: u16 = 0b0000_0000_0000_1100;
        let mut buf = vec![0u8; 20];
        buf[..2].copy_from_slice(&raw.to_le_bytes());
        assert_eq!(WireFrame::parse(&buf), Err(FrameError::ReservedType(3)));
    }

    #[test]
    fn try_from_assumes_fcs() {
        let bytes = Frame::ack(sta()).to_bytes();
        let view = WireFrame::try_from(&bytes[..]).unwrap();
        assert_eq!(view.wire_len(), bytes.len());
        assert_eq!(view.transmitter(), None);
        assert!(view.body().is_empty());
    }

    #[test]
    fn borrows_without_copying() {
        let bytes = Frame::data_to_ds(sta(), ap(), peer(), 16).to_bytes();
        let view = WireFrame::parse(&bytes).unwrap();
        // The body view points into the original buffer.
        assert_eq!(view.body().as_ptr(), bytes[24..].as_ptr());
        assert_eq!(view.as_bytes().as_ptr(), bytes.as_ptr());
    }
}
