//! Frame Control field codec and the frame type/subtype table.

use core::fmt;

/// The three 802.11 frame classes encoded in bits 2–3 of Frame Control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FrameType {
    /// Management frames (beacons, probes, association, ...).
    Management,
    /// Control frames (RTS, CTS, ACK, ...).
    Control,
    /// Data frames (including `QoS` and null-function variants).
    Data,
}

impl FrameType {
    /// The on-air two-bit encoding.
    #[inline]
    #[must_use] 
    pub const fn bits(self) -> u8 {
        match self {
            FrameType::Management => 0,
            FrameType::Control => 1,
            FrameType::Data => 2,
        }
    }

    /// Decodes the two-bit type field; `3` is reserved and yields `None`.
    #[inline]
    #[must_use] 
    pub const fn from_bits(bits: u8) -> Option<FrameType> {
        match bits & 0b11 {
            0 => Some(FrameType::Management),
            1 => Some(FrameType::Control),
            2 => Some(FrameType::Data),
            _ => None,
        }
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameType::Management => "management",
            FrameType::Control => "control",
            FrameType::Data => "data",
        };
        f.write_str(s)
    }
}

/// Every 802.11-1999/2007 frame kind (type + subtype), plus a
/// [`FrameKind::Reserved`] escape hatch so arbitrary captures can be
/// represented without loss.
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::{FrameKind, FrameType};
///
/// assert_eq!(FrameKind::Beacon.frame_type(), FrameType::Management);
/// assert_eq!(FrameKind::from_type_subtype(1, 13), FrameKind::Ack);
/// assert!(FrameKind::Ack.is_sender_anonymous());
/// assert!(!FrameKind::Rts.is_sender_anonymous());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FrameKind {
    // --- Management (type 0) ---
    /// Association request (subtype 0).
    AssocReq,
    /// Association response (subtype 1).
    AssocResp,
    /// Reassociation request (subtype 2).
    ReassocReq,
    /// Reassociation response (subtype 3).
    ReassocResp,
    /// Probe request (subtype 4).
    ProbeReq,
    /// Probe response (subtype 5).
    ProbeResp,
    /// Beacon (subtype 8).
    Beacon,
    /// Announcement traffic indication message (subtype 9).
    Atim,
    /// Disassociation (subtype 10).
    Disassoc,
    /// Authentication (subtype 11).
    Auth,
    /// Deauthentication (subtype 12).
    Deauth,
    /// Action (subtype 13).
    Action,
    // --- Control (type 1) ---
    /// Block-ACK request (subtype 8).
    BlockAckReq,
    /// Block-ACK (subtype 9).
    BlockAck,
    /// Power-save poll (subtype 10).
    PsPoll,
    /// Request to send (subtype 11).
    Rts,
    /// Clear to send (subtype 12).
    Cts,
    /// Acknowledgement (subtype 13).
    Ack,
    /// Contention-free period end (subtype 14).
    CfEnd,
    /// CF-End + CF-Ack (subtype 15).
    CfEndCfAck,
    // --- Data (type 2) ---
    /// Plain data (subtype 0).
    Data,
    /// Data + CF-Ack (subtype 1).
    DataCfAck,
    /// Data + CF-Poll (subtype 2).
    DataCfPoll,
    /// Data + CF-Ack + CF-Poll (subtype 3).
    DataCfAckCfPoll,
    /// Null function — no data, used e.g. for power-save signalling
    /// (subtype 4). Central to Fig. 8 of the paper.
    NullFunction,
    /// CF-Ack, no data (subtype 5).
    CfAck,
    /// CF-Poll, no data (subtype 6).
    CfPoll,
    /// CF-Ack + CF-Poll, no data (subtype 7).
    CfAckCfPoll,
    /// `QoS` data (subtype 8).
    QosData,
    /// `QoS` data + CF-Ack (subtype 9).
    QosDataCfAck,
    /// `QoS` data + CF-Poll (subtype 10).
    QosDataCfPoll,
    /// `QoS` data + CF-Ack + CF-Poll (subtype 11).
    QosDataCfAckCfPoll,
    /// `QoS` null function (subtype 12).
    QosNull,
    /// `QoS` CF-Poll, no data (subtype 14).
    QosCfPoll,
    /// `QoS` CF-Ack + CF-Poll, no data (subtype 15).
    QosCfAckCfPoll,
    /// Any (type, subtype) combination not defined above.
    Reserved {
        /// Raw two-bit type field.
        type_bits: u8,
        /// Raw four-bit subtype field.
        subtype: u8,
    },
}

impl FrameKind {
    /// All concretely named kinds, in (type, subtype) order. Useful for
    /// exhaustive iteration in tests and histogram set-up.
    pub const ALL_NAMED: [FrameKind; 35] = [
        FrameKind::AssocReq,
        FrameKind::AssocResp,
        FrameKind::ReassocReq,
        FrameKind::ReassocResp,
        FrameKind::ProbeReq,
        FrameKind::ProbeResp,
        FrameKind::Beacon,
        FrameKind::Atim,
        FrameKind::Disassoc,
        FrameKind::Auth,
        FrameKind::Deauth,
        FrameKind::Action,
        FrameKind::BlockAckReq,
        FrameKind::BlockAck,
        FrameKind::PsPoll,
        FrameKind::Rts,
        FrameKind::Cts,
        FrameKind::Ack,
        FrameKind::CfEnd,
        FrameKind::CfEndCfAck,
        FrameKind::Data,
        FrameKind::DataCfAck,
        FrameKind::DataCfPoll,
        FrameKind::DataCfAckCfPoll,
        FrameKind::NullFunction,
        FrameKind::CfAck,
        FrameKind::CfPoll,
        FrameKind::CfAckCfPoll,
        FrameKind::QosData,
        FrameKind::QosDataCfAck,
        FrameKind::QosDataCfPoll,
        FrameKind::QosDataCfAckCfPoll,
        FrameKind::QosNull,
        FrameKind::QosCfPoll,
        FrameKind::QosCfAckCfPoll,
    ];

    /// Decodes a raw (type, subtype) pair. Unknown combinations map to
    /// [`FrameKind::Reserved`] rather than failing.
    #[must_use] 
    pub const fn from_type_subtype(type_bits: u8, subtype: u8) -> FrameKind {
        let type_bits = type_bits & 0b11;
        let subtype = subtype & 0b1111;
        match (type_bits, subtype) {
            (0, 0) => FrameKind::AssocReq,
            (0, 1) => FrameKind::AssocResp,
            (0, 2) => FrameKind::ReassocReq,
            (0, 3) => FrameKind::ReassocResp,
            (0, 4) => FrameKind::ProbeReq,
            (0, 5) => FrameKind::ProbeResp,
            (0, 8) => FrameKind::Beacon,
            (0, 9) => FrameKind::Atim,
            (0, 10) => FrameKind::Disassoc,
            (0, 11) => FrameKind::Auth,
            (0, 12) => FrameKind::Deauth,
            (0, 13) => FrameKind::Action,
            (1, 8) => FrameKind::BlockAckReq,
            (1, 9) => FrameKind::BlockAck,
            (1, 10) => FrameKind::PsPoll,
            (1, 11) => FrameKind::Rts,
            (1, 12) => FrameKind::Cts,
            (1, 13) => FrameKind::Ack,
            (1, 14) => FrameKind::CfEnd,
            (1, 15) => FrameKind::CfEndCfAck,
            (2, 0) => FrameKind::Data,
            (2, 1) => FrameKind::DataCfAck,
            (2, 2) => FrameKind::DataCfPoll,
            (2, 3) => FrameKind::DataCfAckCfPoll,
            (2, 4) => FrameKind::NullFunction,
            (2, 5) => FrameKind::CfAck,
            (2, 6) => FrameKind::CfPoll,
            (2, 7) => FrameKind::CfAckCfPoll,
            (2, 8) => FrameKind::QosData,
            (2, 9) => FrameKind::QosDataCfAck,
            (2, 10) => FrameKind::QosDataCfPoll,
            (2, 11) => FrameKind::QosDataCfAckCfPoll,
            (2, 12) => FrameKind::QosNull,
            (2, 14) => FrameKind::QosCfPoll,
            (2, 15) => FrameKind::QosCfAckCfPoll,
            _ => FrameKind::Reserved { type_bits, subtype },
        }
    }

    /// The frame class this kind belongs to.
    #[must_use] 
    pub const fn frame_type(self) -> FrameType {
        match self.type_subtype().0 {
            0 => FrameType::Management,
            1 => FrameType::Control,
            _ => FrameType::Data,
        }
    }

    /// The raw (type, subtype) encoding.
    #[must_use] 
    pub const fn type_subtype(self) -> (u8, u8) {
        match self {
            FrameKind::AssocReq => (0, 0),
            FrameKind::AssocResp => (0, 1),
            FrameKind::ReassocReq => (0, 2),
            FrameKind::ReassocResp => (0, 3),
            FrameKind::ProbeReq => (0, 4),
            FrameKind::ProbeResp => (0, 5),
            FrameKind::Beacon => (0, 8),
            FrameKind::Atim => (0, 9),
            FrameKind::Disassoc => (0, 10),
            FrameKind::Auth => (0, 11),
            FrameKind::Deauth => (0, 12),
            FrameKind::Action => (0, 13),
            FrameKind::BlockAckReq => (1, 8),
            FrameKind::BlockAck => (1, 9),
            FrameKind::PsPoll => (1, 10),
            FrameKind::Rts => (1, 11),
            FrameKind::Cts => (1, 12),
            FrameKind::Ack => (1, 13),
            FrameKind::CfEnd => (1, 14),
            FrameKind::CfEndCfAck => (1, 15),
            FrameKind::Data => (2, 0),
            FrameKind::DataCfAck => (2, 1),
            FrameKind::DataCfPoll => (2, 2),
            FrameKind::DataCfAckCfPoll => (2, 3),
            FrameKind::NullFunction => (2, 4),
            FrameKind::CfAck => (2, 5),
            FrameKind::CfPoll => (2, 6),
            FrameKind::CfAckCfPoll => (2, 7),
            FrameKind::QosData => (2, 8),
            FrameKind::QosDataCfAck => (2, 9),
            FrameKind::QosDataCfPoll => (2, 10),
            FrameKind::QosDataCfAckCfPoll => (2, 11),
            FrameKind::QosNull => (2, 12),
            FrameKind::QosCfPoll => (2, 14),
            FrameKind::QosCfAckCfPoll => (2, 15),
            FrameKind::Reserved { type_bits, subtype } => (type_bits, subtype),
        }
    }

    /// `true` for frames carrying no transmitter address on air (ACK, CTS).
    ///
    /// Per §IV-A of the paper, observations from these frames cannot be
    /// attributed to a sender and are dropped (`sᵢ = null`).
    #[must_use] 
    pub const fn is_sender_anonymous(self) -> bool {
        matches!(self, FrameKind::Ack | FrameKind::Cts)
    }

    /// `true` for `QoS` data subtypes, which carry a 2-byte `QoS` Control field.
    #[must_use] 
    pub const fn has_qos_control(self) -> bool {
        matches!(
            self,
            FrameKind::QosData
                | FrameKind::QosDataCfAck
                | FrameKind::QosDataCfPoll
                | FrameKind::QosDataCfAckCfPoll
                | FrameKind::QosNull
                | FrameKind::QosCfPoll
                | FrameKind::QosCfAckCfPoll
        )
    }

    /// `true` for data subtypes that carry a payload (excludes the
    /// null-function family).
    #[must_use] 
    pub const fn carries_data(self) -> bool {
        matches!(
            self,
            FrameKind::Data
                | FrameKind::DataCfAck
                | FrameKind::DataCfPoll
                | FrameKind::DataCfAckCfPoll
                | FrameKind::QosData
                | FrameKind::QosDataCfAck
                | FrameKind::QosDataCfPoll
                | FrameKind::QosDataCfAckCfPoll
        )
    }

    /// `true` for the null-function family (no payload; used for power
    /// management signalling).
    #[must_use] 
    pub const fn is_null_function(self) -> bool {
        matches!(self, FrameKind::NullFunction | FrameKind::QosNull)
    }

    /// Short lowercase label used in reports and persisted signatures.
    #[must_use] 
    pub fn label(self) -> String {
        match self {
            FrameKind::Reserved { type_bits, subtype } => {
                format!("reserved-{type_bits}-{subtype}")
            }
            _ => format!("{self}"),
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameKind::AssocReq => "assoc-req",
            FrameKind::AssocResp => "assoc-resp",
            FrameKind::ReassocReq => "reassoc-req",
            FrameKind::ReassocResp => "reassoc-resp",
            FrameKind::ProbeReq => "probe-req",
            FrameKind::ProbeResp => "probe-resp",
            FrameKind::Beacon => "beacon",
            FrameKind::Atim => "atim",
            FrameKind::Disassoc => "disassoc",
            FrameKind::Auth => "auth",
            FrameKind::Deauth => "deauth",
            FrameKind::Action => "action",
            FrameKind::BlockAckReq => "block-ack-req",
            FrameKind::BlockAck => "block-ack",
            FrameKind::PsPoll => "ps-poll",
            FrameKind::Rts => "rts",
            FrameKind::Cts => "cts",
            FrameKind::Ack => "ack",
            FrameKind::CfEnd => "cf-end",
            FrameKind::CfEndCfAck => "cf-end-cf-ack",
            FrameKind::Data => "data",
            FrameKind::DataCfAck => "data-cf-ack",
            FrameKind::DataCfPoll => "data-cf-poll",
            FrameKind::DataCfAckCfPoll => "data-cf-ack-cf-poll",
            FrameKind::NullFunction => "null-function",
            FrameKind::CfAck => "cf-ack",
            FrameKind::CfPoll => "cf-poll",
            FrameKind::CfAckCfPoll => "cf-ack-cf-poll",
            FrameKind::QosData => "qos-data",
            FrameKind::QosDataCfAck => "qos-data-cf-ack",
            FrameKind::QosDataCfPoll => "qos-data-cf-poll",
            FrameKind::QosDataCfAckCfPoll => "qos-data-cf-ack-cf-poll",
            FrameKind::QosNull => "qos-null",
            FrameKind::QosCfPoll => "qos-cf-poll",
            FrameKind::QosCfAckCfPoll => "qos-cf-ack-cf-poll",
            FrameKind::Reserved { .. } => "reserved",
        };
        f.write_str(s)
    }
}

/// Decoded 16-bit Frame Control field.
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::{FrameControl, FrameKind};
///
/// let fc = FrameControl::new(FrameKind::QosData).with_to_ds(true).with_retry(true);
/// let raw = fc.to_raw();
/// assert_eq!(FrameControl::from_raw(raw), fc);
/// assert!(fc.retry());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrameControl {
    kind: FrameKind,
    protocol_version: u8,
    to_ds: bool,
    from_ds: bool,
    more_fragments: bool,
    retry: bool,
    power_management: bool,
    more_data: bool,
    protected: bool,
    order: bool,
}

impl FrameControl {
    /// Creates a Frame Control field for `kind` with all flags cleared.
    #[must_use] 
    pub const fn new(kind: FrameKind) -> Self {
        FrameControl {
            kind,
            protocol_version: 0,
            to_ds: false,
            from_ds: false,
            more_fragments: false,
            retry: false,
            power_management: false,
            more_data: false,
            protected: false,
            order: false,
        }
    }

    /// Decodes a host-order value of the little-endian on-air field.
    #[must_use] 
    pub const fn from_raw(raw: u16) -> Self {
        let type_bits = ((raw >> 2) & 0b11) as u8;
        let subtype = ((raw >> 4) & 0b1111) as u8;
        FrameControl {
            kind: FrameKind::from_type_subtype(type_bits, subtype),
            protocol_version: (raw & 0b11) as u8,
            to_ds: raw & (1 << 8) != 0,
            from_ds: raw & (1 << 9) != 0,
            more_fragments: raw & (1 << 10) != 0,
            retry: raw & (1 << 11) != 0,
            power_management: raw & (1 << 12) != 0,
            more_data: raw & (1 << 13) != 0,
            protected: raw & (1 << 14) != 0,
            order: raw & (1 << 15) != 0,
        }
    }

    /// Encodes to the host-order value of the little-endian on-air field.
    #[must_use] 
    pub const fn to_raw(self) -> u16 {
        let (type_bits, subtype) = self.kind.type_subtype();
        (self.protocol_version as u16 & 0b11)
            | ((type_bits as u16) << 2)
            | ((subtype as u16) << 4)
            | ((self.to_ds as u16) << 8)
            | ((self.from_ds as u16) << 9)
            | ((self.more_fragments as u16) << 10)
            | ((self.retry as u16) << 11)
            | ((self.power_management as u16) << 12)
            | ((self.more_data as u16) << 13)
            | ((self.protected as u16) << 14)
            | ((self.order as u16) << 15)
    }

    /// The frame kind (type + subtype).
    #[must_use] 
    pub const fn kind(self) -> FrameKind {
        self.kind
    }

    /// Protocol version bits (always 0 in deployed networks).
    #[must_use] 
    pub const fn protocol_version(self) -> u8 {
        self.protocol_version
    }

    /// To-DS flag.
    #[must_use] 
    pub const fn to_ds(self) -> bool {
        self.to_ds
    }

    /// From-DS flag.
    #[must_use] 
    pub const fn from_ds(self) -> bool {
        self.from_ds
    }

    /// More-fragments flag.
    #[must_use] 
    pub const fn more_fragments(self) -> bool {
        self.more_fragments
    }

    /// Retry flag — set on retransmissions. Fig. 4 of the paper filters
    /// retries out when isolating backoff behaviour.
    #[must_use] 
    pub const fn retry(self) -> bool {
        self.retry
    }

    /// Power-management flag — the station enters power save after this
    /// frame when set.
    #[must_use] 
    pub const fn power_management(self) -> bool {
        self.power_management
    }

    /// More-data flag (AP has queued frames for a dozing station).
    #[must_use] 
    pub const fn more_data(self) -> bool {
        self.more_data
    }

    /// Protected flag — payload is encrypted (WEP/TKIP/CCMP).
    #[must_use] 
    pub const fn protected(self) -> bool {
        self.protected
    }

    /// Order flag (strictly-ordered service class).
    #[must_use] 
    pub const fn order(self) -> bool {
        self.order
    }

    /// Returns a copy with the To-DS flag set to `v`.
    #[must_use] 
    pub const fn with_to_ds(mut self, v: bool) -> Self {
        self.to_ds = v;
        self
    }

    /// Returns a copy with the From-DS flag set to `v`.
    #[must_use] 
    pub const fn with_from_ds(mut self, v: bool) -> Self {
        self.from_ds = v;
        self
    }

    /// Returns a copy with the retry flag set to `v`.
    #[must_use] 
    pub const fn with_retry(mut self, v: bool) -> Self {
        self.retry = v;
        self
    }

    /// Returns a copy with the power-management flag set to `v`.
    #[must_use] 
    pub const fn with_power_management(mut self, v: bool) -> Self {
        self.power_management = v;
        self
    }

    /// Returns a copy with the more-data flag set to `v`.
    #[must_use] 
    pub const fn with_more_data(mut self, v: bool) -> Self {
        self.more_data = v;
        self
    }

    /// Returns a copy with the protected flag set to `v`.
    #[must_use] 
    pub const fn with_protected(mut self, v: bool) -> Self {
        self.protected = v;
        self
    }

    /// Returns a copy with the more-fragments flag set to `v`.
    #[must_use] 
    pub const fn with_more_fragments(mut self, v: bool) -> Self {
        self.more_fragments = v;
        self
    }

    /// Returns a copy with the order flag set to `v`.
    #[must_use] 
    pub const fn with_order(mut self, v: bool) -> Self {
        self.order = v;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_kind_round_trips() {
        for kind in FrameKind::ALL_NAMED {
            let (t, s) = kind.type_subtype();
            assert_eq!(FrameKind::from_type_subtype(t, s), kind, "{kind:?}");
        }
    }

    #[test]
    fn reserved_round_trips() {
        let kind = FrameKind::from_type_subtype(3, 5);
        assert_eq!(kind, FrameKind::Reserved { type_bits: 3, subtype: 5 });
        assert_eq!(kind.type_subtype(), (3, 5));
        assert_eq!(kind.label(), "reserved-3-5");
    }

    #[test]
    fn frame_type_classification() {
        assert_eq!(FrameKind::Beacon.frame_type(), FrameType::Management);
        assert_eq!(FrameKind::Rts.frame_type(), FrameType::Control);
        assert_eq!(FrameKind::QosData.frame_type(), FrameType::Data);
    }

    #[test]
    fn anonymous_senders_match_paper_rule() {
        // Fig. 1: ACK and CTS carry no transmitter address.
        assert!(FrameKind::Ack.is_sender_anonymous());
        assert!(FrameKind::Cts.is_sender_anonymous());
        // but RTS does (the paper attributes an RTS to station C).
        assert!(!FrameKind::Rts.is_sender_anonymous());
        assert!(!FrameKind::Data.is_sender_anonymous());
        assert!(!FrameKind::Beacon.is_sender_anonymous());
    }

    #[test]
    fn qos_and_null_classification() {
        assert!(FrameKind::QosData.has_qos_control());
        assert!(FrameKind::QosNull.has_qos_control());
        assert!(!FrameKind::Data.has_qos_control());
        assert!(FrameKind::NullFunction.is_null_function());
        assert!(FrameKind::QosNull.is_null_function());
        assert!(!FrameKind::QosNull.carries_data());
        assert!(FrameKind::QosData.carries_data());
        assert!(FrameKind::Data.carries_data());
    }

    #[test]
    fn frame_control_bit_layout() {
        // RTS = type 1, subtype 11: 0b1011_01_00 = 0xB4 in the low byte.
        let fc = FrameControl::new(FrameKind::Rts);
        assert_eq!(fc.to_raw(), 0x00B4);
        // ACK = 0xD4, CTS = 0xC4, Beacon = 0x80, Data = 0x08, QoS data = 0x88.
        assert_eq!(FrameControl::new(FrameKind::Ack).to_raw(), 0x00D4);
        assert_eq!(FrameControl::new(FrameKind::Cts).to_raw(), 0x00C4);
        assert_eq!(FrameControl::new(FrameKind::Beacon).to_raw(), 0x0080);
        assert_eq!(FrameControl::new(FrameKind::Data).to_raw(), 0x0008);
        assert_eq!(FrameControl::new(FrameKind::QosData).to_raw(), 0x0088);
    }

    #[test]
    fn flags_round_trip() {
        let fc = FrameControl::new(FrameKind::Data)
            .with_to_ds(true)
            .with_retry(true)
            .with_power_management(true)
            .with_protected(true);
        let raw = fc.to_raw();
        assert_eq!(raw & (1 << 8), 1 << 8);
        assert_eq!(raw & (1 << 11), 1 << 11);
        assert_eq!(raw & (1 << 12), 1 << 12);
        assert_eq!(raw & (1 << 14), 1 << 14);
        assert_eq!(FrameControl::from_raw(raw), fc);
    }

    #[test]
    fn from_raw_total_for_all_u16() {
        // The decoder must be total: every possible 16-bit value decodes and
        // re-encodes to the same value (type bits 3 map to Reserved).
        for raw in 0..=u16::MAX {
            let fc = FrameControl::from_raw(raw);
            assert_eq!(fc.to_raw(), raw, "raw={raw:#06x}");
        }
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(FrameKind::ProbeReq.to_string(), "probe-req");
        assert_eq!(FrameKind::NullFunction.label(), "null-function");
    }
}
