//! 48-bit MAC addresses.

use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::MacAddr;
///
/// let a: MacAddr = "00:1b:77:12:34:56".parse()?;
/// assert_eq!(a.octets()[0], 0x00);
/// assert!(!a.is_broadcast());
/// assert_eq!(a.to_string(), "00:1b:77:12:34:56");
/// # Ok::<(), wifiprint_ieee80211::ParseMacAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, conventionally "unspecified".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    #[inline]
    #[must_use] 
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Builds a locally-administered unicast address from a 40-bit index.
    ///
    /// Handy for simulations that need many distinct stable addresses: the
    /// first octet is fixed to `0x02` (locally administered, unicast).
    #[inline]
    #[must_use] 
    pub const fn from_index(index: u64) -> Self {
        MacAddr([
            0x02,
            (index >> 32) as u8,
            (index >> 24) as u8,
            (index >> 16) as u8,
            (index >> 8) as u8,
            index as u8,
        ])
    }

    /// Builds a universally-administered (burned-in-looking) unicast
    /// address from a 40-bit index: the vendor-OUI counterpart of
    /// [`MacAddr::from_index`], with both the U/L and I/G bits clear.
    ///
    /// Rotation scenarios use this for a device's *stable* hardware
    /// address — a MAC-randomization linker's pre-gate can tell it apart
    /// from a randomized one by the U/L bit alone.
    #[inline]
    #[must_use] 
    pub const fn universal_from_index(index: u64) -> Self {
        MacAddr([
            0x00,
            (index >> 32) as u8,
            (index >> 24) as u8,
            (index >> 16) as u8,
            (index >> 8) as u8,
            index as u8,
        ])
    }

    /// Derives a randomized locally-administered unicast address from a
    /// 64-bit seed, the shape OS MAC randomization emits: the seed is
    /// bit-mixed (`SplitMix64` finalizer) across all six octets, then the
    /// U/L bit is forced on and the I/G bit forced off.
    ///
    /// Deterministic in the seed; distinct seeds collide only with the
    /// usual 46-bit birthday probability.
    #[inline]
    #[must_use] 
    pub const fn randomized(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        MacAddr([
            ((z >> 40) as u8 | 0x02) & !0x01,
            (z >> 32) as u8,
            (z >> 24) as u8,
            (z >> 16) as u8,
            (z >> 8) as u8,
            z as u8,
        ])
    }

    /// The six octets of the address.
    #[inline]
    #[must_use] 
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// The 24-bit organisationally-unique identifier (first three octets).
    #[inline]
    #[must_use] 
    pub const fn oui(self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// `true` for `ff:ff:ff:ff:ff:ff`.
    #[inline]
    #[must_use] 
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// `true` if the group bit (I/G, lowest bit of the first octet) is set.
    /// Broadcast is also a group address.
    #[inline]
    #[must_use] 
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// `true` if the locally-administered (U/L) bit is set.
    ///
    /// Randomized MACs (iOS/Android/Windows privacy addresses) set this
    /// bit, so it is the cheap first gate of a MAC-randomization linker:
    /// an address with the bit *clear* is burned-in and cannot rotate.
    #[inline]
    #[must_use] 
    pub const fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// `true` if the U/L bit is clear: a universally-administered
    /// (vendor burned-in) address. The complement of
    /// [`MacAddr::is_locally_administered`].
    #[inline]
    #[must_use] 
    pub const fn is_universally_administered(self) -> bool {
        !self.is_locally_administered()
    }

    /// `true` for an individual (non-group) address — the I/G bit is
    /// clear.
    #[inline]
    #[must_use] 
    pub const fn is_unicast(self) -> bool {
        !self.is_multicast()
    }

    /// `true` if the address carries the given 24-bit vendor OUI prefix
    /// (first three octets).
    #[inline]
    #[must_use] 
    pub fn oui_matches(self, prefix: [u8; 3]) -> bool {
        self.oui() == prefix
    }

    /// Returns a copy with the OUI (first three octets) replaced,
    /// keeping the device-specific low 24 bits.
    #[inline]
    #[must_use] 
    pub const fn with_oui(self, oui: [u8; 3]) -> Self {
        MacAddr([oui[0], oui[1], oui[2], self.0[3], self.0[4], self.0[5]])
    }

    /// Reads an address from the first six bytes of `buf`.
    ///
    /// Returns `None` if `buf` is shorter than six bytes.
    #[inline]
    #[must_use] 
    pub fn from_slice(buf: &[u8]) -> Option<Self> {
        let octets: [u8; 6] = buf.get(..6)?.try_into().ok()?;
        Some(MacAddr(octets))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(addr: MacAddr) -> Self {
        addr.0
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned when parsing a textual MAC address fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacAddrError {
    input: String,
}

impl fmt::Display for ParseMacAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseMacAddrError {}

impl FromStr for MacAddr {
    type Err = ParseMacAddrError;

    /// Parses `aa:bb:cc:dd:ee:ff` or `aa-bb-cc-dd-ee-ff` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseMacAddrError { input: s.to_owned() };
        let sep = if s.contains('-') { '-' } else { ':' };
        let mut octets = [0u8; 6];
        let mut parts = s.split(sep);
        for octet in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            if part.len() != 2 {
                return Err(err());
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let a = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        let s = a.to_string();
        assert_eq!(s, "de:ad:be:ef:00:42");
        assert_eq!(s.parse::<MacAddr>().unwrap(), a);
    }

    #[test]
    fn parse_dash_separator_and_case() {
        let a: MacAddr = "DE-AD-BE-EF-00-42".parse().unwrap();
        assert_eq!(a, MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("0g:11:22:33:44:55".parse::<MacAddr>().is_err());
        assert!("001:1:22:33:44:55".parse::<MacAddr>().is_err());
    }

    #[test]
    fn classification_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let mcast = MacAddr::new([0x01, 0x00, 0x5e, 0, 0, 1]);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_broadcast());
        let local = MacAddr::from_index(7);
        assert!(local.is_locally_administered());
        assert!(!local.is_multicast());
    }

    #[test]
    fn from_index_is_unique_and_stable() {
        let a = MacAddr::from_index(0x01_0203_0405);
        assert_eq!(a.octets(), [0x02, 0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_ne!(MacAddr::from_index(1), MacAddr::from_index(2));
    }

    #[test]
    fn from_slice_handles_short_input() {
        assert_eq!(MacAddr::from_slice(&[1, 2, 3]), None);
        assert_eq!(
            MacAddr::from_slice(&[1, 2, 3, 4, 5, 6, 7]),
            Some(MacAddr::new([1, 2, 3, 4, 5, 6]))
        );
    }

    #[test]
    fn oui_prefix() {
        let a = MacAddr::new([0x00, 0x1b, 0x77, 1, 2, 3]);
        assert_eq!(a.oui(), [0x00, 0x1b, 0x77]);
        assert!(a.oui_matches([0x00, 0x1b, 0x77]));
        assert!(!a.oui_matches([0x00, 0x1b, 0x78]));
        let b = a.with_oui([0xde, 0xad, 0xbe]);
        assert_eq!(b.octets(), [0xde, 0xad, 0xbe, 1, 2, 3]);
    }

    #[test]
    fn administration_bits() {
        // from_index is locally administered; universal_from_index is not.
        let local = MacAddr::from_index(0x01_0203_0405);
        let universal = MacAddr::universal_from_index(0x01_0203_0405);
        assert!(local.is_locally_administered());
        assert!(!local.is_universally_administered());
        assert!(universal.is_universally_administered());
        assert!(!universal.is_locally_administered());
        assert!(universal.is_unicast());
        // Same device-index payload, different administration bit.
        assert_eq!(local.octets()[1..], universal.octets()[1..]);
        assert_ne!(local, universal);
    }

    #[test]
    fn randomized_is_local_unicast_and_seed_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF_CAFE] {
            let a = MacAddr::randomized(seed);
            assert!(a.is_locally_administered(), "{a} from seed {seed}");
            assert!(a.is_unicast(), "{a} from seed {seed}");
            assert_eq!(a, MacAddr::randomized(seed));
        }
        assert_ne!(MacAddr::randomized(1), MacAddr::randomized(2));
        // The mixer spreads nearby seeds across the whole address, not
        // just the low octets.
        let x = MacAddr::randomized(100).octets();
        let y = MacAddr::randomized(101).octets();
        assert_ne!(x[..3], y[..3]);
    }
}
