//! 48-bit MAC addresses.

use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::MacAddr;
///
/// let a: MacAddr = "00:1b:77:12:34:56".parse()?;
/// assert_eq!(a.octets()[0], 0x00);
/// assert!(!a.is_broadcast());
/// assert_eq!(a.to_string(), "00:1b:77:12:34:56");
/// # Ok::<(), wifiprint_ieee80211::ParseMacAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, conventionally "unspecified".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    #[inline]
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Builds a locally-administered unicast address from a 40-bit index.
    ///
    /// Handy for simulations that need many distinct stable addresses: the
    /// first octet is fixed to `0x02` (locally administered, unicast).
    #[inline]
    pub const fn from_index(index: u64) -> Self {
        MacAddr([
            0x02,
            (index >> 32) as u8,
            (index >> 24) as u8,
            (index >> 16) as u8,
            (index >> 8) as u8,
            index as u8,
        ])
    }

    /// The six octets of the address.
    #[inline]
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// The 24-bit organisationally-unique identifier (first three octets).
    #[inline]
    pub const fn oui(self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// `true` for `ff:ff:ff:ff:ff:ff`.
    #[inline]
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// `true` if the group bit (I/G, lowest bit of the first octet) is set.
    /// Broadcast is also a group address.
    #[inline]
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// `true` if the locally-administered (U/L) bit is set.
    #[inline]
    pub const fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Reads an address from the first six bytes of `buf`.
    ///
    /// Returns `None` if `buf` is shorter than six bytes.
    #[inline]
    pub fn from_slice(buf: &[u8]) -> Option<Self> {
        let octets: [u8; 6] = buf.get(..6)?.try_into().ok()?;
        Some(MacAddr(octets))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(addr: MacAddr) -> Self {
        addr.0
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned when parsing a textual MAC address fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacAddrError {
    input: String,
}

impl fmt::Display for ParseMacAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseMacAddrError {}

impl FromStr for MacAddr {
    type Err = ParseMacAddrError;

    /// Parses `aa:bb:cc:dd:ee:ff` or `aa-bb-cc-dd-ee-ff` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseMacAddrError { input: s.to_owned() };
        let sep = if s.contains('-') { '-' } else { ':' };
        let mut octets = [0u8; 6];
        let mut parts = s.split(sep);
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or_else(err)?;
            if part.len() != 2 {
                return Err(err());
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let a = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        let s = a.to_string();
        assert_eq!(s, "de:ad:be:ef:00:42");
        assert_eq!(s.parse::<MacAddr>().unwrap(), a);
    }

    #[test]
    fn parse_dash_separator_and_case() {
        let a: MacAddr = "DE-AD-BE-EF-00-42".parse().unwrap();
        assert_eq!(a, MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("0g:11:22:33:44:55".parse::<MacAddr>().is_err());
        assert!("001:1:22:33:44:55".parse::<MacAddr>().is_err());
    }

    #[test]
    fn classification_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let mcast = MacAddr::new([0x01, 0x00, 0x5e, 0, 0, 1]);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_broadcast());
        let local = MacAddr::from_index(7);
        assert!(local.is_locally_administered());
        assert!(!local.is_multicast());
    }

    #[test]
    fn from_index_is_unique_and_stable() {
        let a = MacAddr::from_index(0x0102030405);
        assert_eq!(a.octets(), [0x02, 0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_ne!(MacAddr::from_index(1), MacAddr::from_index(2));
    }

    #[test]
    fn from_slice_handles_short_input() {
        assert_eq!(MacAddr::from_slice(&[1, 2, 3]), None);
        assert_eq!(
            MacAddr::from_slice(&[1, 2, 3, 4, 5, 6, 7]),
            Some(MacAddr::new([1, 2, 3, 4, 5, 6]))
        );
    }

    #[test]
    fn oui_prefix() {
        let a = MacAddr::new([0x00, 0x1b, 0x77, 1, 2, 3]);
        assert_eq!(a.oui(), [0x00, 0x1b, 0x77]);
    }
}
