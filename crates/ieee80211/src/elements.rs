//! Information elements (IEs) carried in management-frame bodies.
//!
//! Only the elements needed by the simulator's beacons, probe requests and
//! probe responses are modelled semantically; everything else round-trips as
//! [`Element::Other`].

use core::fmt;

use crate::rate::Rate;

/// Element IDs used by this crate.
pub mod ids {
    /// SSID element.
    pub const SSID: u8 = 0;
    /// Supported rates element.
    pub const SUPPORTED_RATES: u8 = 1;
    /// DS parameter set (current channel).
    pub const DS_PARAMS: u8 = 3;
    /// Traffic indication map.
    pub const TIM: u8 = 5;
    /// Extended supported rates.
    pub const EXT_SUPPORTED_RATES: u8 = 50;
    /// RSN (WPA2) element.
    pub const RSN: u8 = 48;
}

/// A single information element.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Element {
    /// Network name. Zero-length means "wildcard" in probe requests /
    /// "hidden" in beacons.
    Ssid(String),
    /// Up to eight rates; the `bool` marks a rate as basic (mandatory).
    SupportedRates(Vec<(Rate, bool)>),
    /// Rates beyond the first eight.
    ExtSupportedRates(Vec<(Rate, bool)>),
    /// Current channel number.
    DsParams(u8),
    /// Traffic indication map: DTIM count, DTIM period, bitmap control and
    /// partial virtual bitmap.
    Tim {
        /// Beacons until the next DTIM.
        dtim_count: u8,
        /// Beacon interval between DTIMs.
        dtim_period: u8,
        /// Bitmap control octet.
        bitmap_control: u8,
        /// Partial virtual bitmap.
        bitmap: Vec<u8>,
    },
    /// An RSN (WPA2) element with raw contents.
    Rsn(Vec<u8>),
    /// Any element this crate does not interpret.
    Other {
        /// Element ID.
        id: u8,
        /// Raw element payload.
        data: Vec<u8>,
    },
}

impl Element {
    /// The element's on-air ID byte.
    #[must_use] 
    pub fn id(&self) -> u8 {
        match self {
            Element::Ssid(_) => ids::SSID,
            Element::SupportedRates(_) => ids::SUPPORTED_RATES,
            Element::ExtSupportedRates(_) => ids::EXT_SUPPORTED_RATES,
            Element::DsParams(_) => ids::DS_PARAMS,
            Element::Tim { .. } => ids::TIM,
            Element::Rsn(_) => ids::RSN,
            Element::Other { id, .. } => *id,
        }
    }

    /// Appends the element's TLV encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Element::Ssid(name) => {
                let bytes = name.as_bytes();
                let len = bytes.len().min(32);
                out.push(ids::SSID);
                out.push(len as u8);
                out.extend_from_slice(&bytes[..len]);
            }
            Element::SupportedRates(rates) => {
                encode_rates(ids::SUPPORTED_RATES, rates, out);
            }
            Element::ExtSupportedRates(rates) => {
                encode_rates(ids::EXT_SUPPORTED_RATES, rates, out);
            }
            Element::DsParams(channel) => {
                out.push(ids::DS_PARAMS);
                out.push(1);
                out.push(*channel);
            }
            Element::Tim { dtim_count, dtim_period, bitmap_control, bitmap } => {
                out.push(ids::TIM);
                out.push((3 + bitmap.len()) as u8);
                out.push(*dtim_count);
                out.push(*dtim_period);
                out.push(*bitmap_control);
                out.extend_from_slice(bitmap);
            }
            Element::Rsn(data) => {
                out.push(ids::RSN);
                out.push(data.len() as u8);
                out.extend_from_slice(data);
            }
            Element::Other { id, data } => {
                out.push(*id);
                out.push(data.len() as u8);
                out.extend_from_slice(data);
            }
        }
    }

    /// Encodes a list of elements to bytes.
    #[must_use] 
    pub fn encode_all(elements: &[Element]) -> Vec<u8> {
        let mut out = Vec::new();
        for e in elements {
            e.encode_into(&mut out);
        }
        out
    }

    /// Parses all elements from `buf`, stopping at the first malformed TLV.
    #[must_use] 
    pub fn parse_all(buf: &[u8]) -> Vec<Element> {
        let mut out = Vec::new();
        let mut off = 0;
        while off + 2 <= buf.len() {
            let id = buf[off];
            let len = buf[off + 1] as usize;
            let Some(data) = buf.get(off + 2..off + 2 + len) else { break };
            out.push(Element::decode(id, data));
            off += 2 + len;
        }
        out
    }

    fn decode(id: u8, data: &[u8]) -> Element {
        match id {
            ids::SSID => Element::Ssid(String::from_utf8_lossy(data).into_owned()),
            ids::SUPPORTED_RATES => Element::SupportedRates(decode_rates(data)),
            ids::EXT_SUPPORTED_RATES => Element::ExtSupportedRates(decode_rates(data)),
            ids::DS_PARAMS if data.len() == 1 => Element::DsParams(data[0]),
            ids::TIM if data.len() >= 3 => Element::Tim {
                dtim_count: data[0],
                dtim_period: data[1],
                bitmap_control: data[2],
                bitmap: data[3..].to_vec(),
            },
            ids::RSN => Element::Rsn(data.to_vec()),
            _ => Element::Other { id, data: data.to_vec() },
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Ssid(s) => write!(f, "SSID({s:?})"),
            Element::SupportedRates(r) => write!(f, "Rates({} entries)", r.len()),
            Element::ExtSupportedRates(r) => write!(f, "ExtRates({} entries)", r.len()),
            Element::DsParams(c) => write!(f, "Channel({c})"),
            Element::Tim { dtim_count, dtim_period, .. } => {
                write!(f, "TIM(count={dtim_count}, period={dtim_period})")
            }
            Element::Rsn(_) => write!(f, "RSN"),
            Element::Other { id, data } => write!(f, "IE(id={id}, {} bytes)", data.len()),
        }
    }
}

fn encode_rates(id: u8, rates: &[(Rate, bool)], out: &mut Vec<u8>) {
    out.push(id);
    out.push(rates.len() as u8);
    for (rate, basic) in rates {
        let raw = rate.to_raw() | if *basic { 0x80 } else { 0 };
        out.push(raw);
    }
}

fn decode_rates(data: &[u8]) -> Vec<(Rate, bool)> {
    data.iter()
        .filter_map(|&b| {
            let basic = b & 0x80 != 0;
            Rate::from_raw(b & 0x7f).map(|r| (r, basic))
        })
        .collect()
}

/// Builds the body of a beacon or probe-response frame: the 12-byte fixed
/// part (timestamp, beacon interval in TU, capability info) followed by the
/// given elements.
#[must_use] 
pub fn beacon_body(
    timestamp_us: u64,
    beacon_interval_tu: u16,
    capabilities: u16,
    elements: &[Element],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 64);
    out.extend_from_slice(&timestamp_us.to_le_bytes());
    out.extend_from_slice(&beacon_interval_tu.to_le_bytes());
    out.extend_from_slice(&capabilities.to_le_bytes());
    out.extend_from_slice(&Element::encode_all(elements));
    out
}

/// Builds the body of a probe-request frame (SSID + supported rates).
#[must_use] 
pub fn probe_req_body(ssid: &str, rates: &[(Rate, bool)]) -> Vec<u8> {
    Element::encode_all(&[
        Element::Ssid(ssid.to_owned()),
        Element::SupportedRates(rates.to_vec()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_round_trip() {
        let elements = vec![
            Element::Ssid("homenet".into()),
            Element::SupportedRates(vec![(Rate::R1M, true), (Rate::R54M, false)]),
            Element::DsParams(6),
            Element::Tim { dtim_count: 1, dtim_period: 3, bitmap_control: 0, bitmap: vec![0x02] },
            Element::Rsn(vec![1, 0]),
            Element::Other { id: 221, data: vec![0x00, 0x50, 0xf2] },
        ];
        let bytes = Element::encode_all(&elements);
        let parsed = Element::parse_all(&bytes);
        assert_eq!(parsed, elements);
    }

    #[test]
    fn ssid_truncated_to_32_bytes() {
        let long = "x".repeat(40);
        let mut out = Vec::new();
        Element::Ssid(long).encode_into(&mut out);
        assert_eq!(out[1], 32);
        assert_eq!(out.len(), 2 + 32);
    }

    #[test]
    fn parse_stops_at_malformed_tlv() {
        // Second element claims 10 bytes but only 2 remain.
        let buf = [0u8, 1, b'a', 3, 10, 1, 2];
        let parsed = Element::parse_all(&buf);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], Element::Ssid("a".into()));
    }

    #[test]
    fn beacon_body_layout() {
        let body = beacon_body(0x1122_3344_5566_7788, 100, 0x0431, &[Element::DsParams(6)]);
        assert_eq!(&body[..8], &0x1122_3344_5566_7788u64.to_le_bytes());
        assert_eq!(u16::from_le_bytes([body[8], body[9]]), 100);
        assert_eq!(u16::from_le_bytes([body[10], body[11]]), 0x0431);
        let elements = Element::parse_all(&body[12..]);
        assert_eq!(elements, vec![Element::DsParams(6)]);
    }

    #[test]
    fn probe_req_body_contains_wildcard_ssid() {
        let body = probe_req_body("", &[(Rate::R1M, true)]);
        let parsed = Element::parse_all(&body);
        assert_eq!(parsed[0], Element::Ssid(String::new()));
        assert!(matches!(parsed[1], Element::SupportedRates(ref r) if r.len() == 1));
    }

    #[test]
    fn rate_decode_skips_zero() {
        // 0x80 alone encodes "basic rate 0", which is invalid and skipped.
        let rates = decode_rates(&[0x80, 0x82, 0x0c]);
        assert_eq!(rates, vec![(Rate::R1M, true), (Rate::R6M, false)]);
    }
}
