//! Nanosecond time quantities shared across the wifiprint suite.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A non-negative time quantity with nanosecond resolution.
///
/// All MAC/PHY timing in this suite (slot times, SIFS, air times, simulation
/// clocks) is expressed in `Nanos`. The newtype prevents accidentally mixing
/// nanoseconds with the microsecond values used in capture headers; convert
/// explicitly with [`Nanos::as_micros`] / [`Nanos::from_micros`].
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::Nanos;
///
/// let sifs = Nanos::from_micros(10);
/// let slot = Nanos::from_micros(20);
/// assert_eq!(sifs + slot * 2, Nanos::from_micros(50));
/// assert_eq!((sifs + slot).as_micros(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration / simulation epoch.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant; used as an "infinite" timeout.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a quantity from raw nanoseconds.
    #[inline]
    #[must_use] 
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a quantity from whole microseconds, saturating at
    /// [`Nanos::MAX`] (a hostile capture header can carry a TSFT near
    /// `u64::MAX` µs).
    #[inline]
    #[must_use] 
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us.saturating_mul(1_000))
    }

    /// Creates a quantity from whole milliseconds, saturating at
    /// [`Nanos::MAX`].
    #[inline]
    #[must_use] 
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms.saturating_mul(1_000_000))
    }

    /// Creates a quantity from whole seconds, saturating at
    /// [`Nanos::MAX`].
    #[inline]
    #[must_use] 
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s.saturating_mul(1_000_000_000))
    }

    /// Creates a quantity from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs saturate to zero.
    #[inline]
    #[must_use] 
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Nanos::ZERO
        } else {
            Nanos((s * 1e9).round() as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    #[must_use] 
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    #[must_use] 
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds.
    #[inline]
    #[must_use] 
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Whole milliseconds (truncating).
    #[inline]
    #[must_use] 
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    #[must_use] 
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    #[inline]
    #[must_use] 
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    #[must_use] 
    pub const fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Saturating addition: returns [`Nanos::MAX`] instead of wrapping.
    #[inline]
    #[must_use] 
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// `true` if this quantity is zero.
    #[inline]
    #[must_use] 
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two quantities.
    #[inline]
    #[must_use] 
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two quantities.
    #[inline]
    #[must_use] 
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`Nanos::saturating_sub`] when underflow is expected.
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Rem<Nanos> for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for Nanos {
    /// Interprets the raw integer as nanoseconds.
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

impl From<Nanos> for u64 {
    fn from(n: Nanos) -> Self {
        n.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_micros(123).as_micros(), 123);
        assert_eq!(Nanos::from_millis(7).as_millis(), 7);
        assert_eq!(Nanos::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Nanos::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(Nanos::from_secs_f64(-2.0), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(4);
        assert_eq!(a + b, Nanos::from_micros(14));
        assert_eq!(a - b, Nanos::from_micros(6));
        assert_eq!(a * 3, Nanos::from_micros(30));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.checked_sub(b), Some(Nanos::from_micros(6)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(Nanos::MAX.saturating_add(a), Nanos::MAX);
    }

    #[test]
    fn ordering_helpers() {
        let a = Nanos::from_nanos(5);
        let b = Nanos::from_nanos(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Nanos::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_iter() {
        let total: Nanos = (1..=4).map(Nanos::from_micros).sum();
        assert_eq!(total, Nanos::from_micros(10));
    }
}
