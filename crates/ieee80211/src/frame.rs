//! MAC frame representation, wire serialisation and parsing.

use core::fmt;

use crate::fc::{FrameControl, FrameKind};
use crate::mac::MacAddr;

/// Number of FCS (CRC-32) bytes at the end of every frame.
pub const FCS_LEN: usize = 4;

/// A parsed or constructed 802.11 MAC frame.
///
/// The struct stores the fields that actually appear on air for the frame's
/// kind; accessors expose the logical addresses (transmitter, receiver,
/// source, destination, BSSID) derived from the ToDS/FromDS rules of IEEE
/// 802.11-2007 §7.2.
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::{Frame, FrameKind, MacAddr};
///
/// let sta = MacAddr::from_index(1);
/// let ap = MacAddr::from_index(2);
///
/// // An uplink data frame (ToDS=1): addr1=BSSID, addr2=SA, addr3=DA.
/// let f = Frame::data_to_ds(sta, ap, MacAddr::BROADCAST, 100);
/// assert_eq!(f.transmitter(), Some(sta));
/// assert_eq!(f.destination(), Some(MacAddr::BROADCAST));
/// assert_eq!(f.bssid(), Some(ap));
///
/// // ACKs carry no transmitter address.
/// let ack = Frame::ack(sta);
/// assert_eq!(ack.transmitter(), None);
/// assert_eq!(ack.kind(), FrameKind::Ack);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frame {
    fc: FrameControl,
    duration: u16,
    addr1: MacAddr,
    addr2: Option<MacAddr>,
    addr3: Option<MacAddr>,
    addr4: Option<MacAddr>,
    seq_ctrl: Option<u16>,
    qos_ctrl: Option<u16>,
    body: Vec<u8>,
}

/// Error returned when parsing a byte buffer as an 802.11 frame fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the fixed header was complete.
    Truncated {
        /// Bytes needed for the header of this frame kind.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The two-bit type field held the reserved value 3.
    ReservedType(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, available } => {
                write!(f, "frame truncated: needed {needed} bytes, got {available}")
            }
            FrameError::ReservedType(bits) => {
                write!(f, "reserved frame type bits {bits:#04b}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    // ----- constructors ---------------------------------------------------

    /// Generic constructor from a prepared Frame Control field.
    ///
    /// Addresses beyond what the frame kind carries are ignored at
    /// serialisation time.
    #[must_use] 
    pub fn new(fc: FrameControl, addr1: MacAddr) -> Self {
        Frame {
            fc,
            duration: 0,
            addr1,
            addr2: None,
            addr3: None,
            addr4: None,
            seq_ctrl: if fc.kind().frame_type() == crate::fc::FrameType::Control {
                None
            } else {
                Some(0)
            },
            qos_ctrl: if fc.kind().has_qos_control() { Some(0) } else { None },
            body: Vec::new(),
        }
    }

    /// An uplink data frame (station → AP): ToDS=1, addr1=BSSID, addr2=SA,
    /// addr3=DA, with a zero-filled body of `payload_len` bytes.
    #[must_use] 
    pub fn data_to_ds(sa: MacAddr, bssid: MacAddr, da: MacAddr, payload_len: usize) -> Self {
        let fc = FrameControl::new(FrameKind::Data).with_to_ds(true);
        Frame {
            fc,
            duration: 0,
            addr1: bssid,
            addr2: Some(sa),
            addr3: Some(da),
            addr4: None,
            seq_ctrl: Some(0),
            qos_ctrl: None,
            body: vec![0; payload_len],
        }
    }

    /// A downlink data frame (AP → station): FromDS=1, addr1=DA,
    /// addr2=BSSID, addr3=SA.
    #[must_use] 
    pub fn data_from_ds(da: MacAddr, bssid: MacAddr, sa: MacAddr, payload_len: usize) -> Self {
        let fc = FrameControl::new(FrameKind::Data).with_from_ds(true);
        Frame {
            fc,
            duration: 0,
            addr1: da,
            addr2: Some(bssid),
            addr3: Some(sa),
            addr4: None,
            seq_ctrl: Some(0),
            qos_ctrl: None,
            body: vec![0; payload_len],
        }
    }

    /// An IBSS / ad-hoc data frame (ToDS=0, FromDS=0): addr1=DA, addr2=SA,
    /// addr3=BSSID.
    #[must_use] 
    pub fn data_ibss(da: MacAddr, sa: MacAddr, bssid: MacAddr, payload_len: usize) -> Self {
        let fc = FrameControl::new(FrameKind::Data);
        Frame {
            fc,
            duration: 0,
            addr1: da,
            addr2: Some(sa),
            addr3: Some(bssid),
            addr4: None,
            seq_ctrl: Some(0),
            qos_ctrl: None,
            body: vec![0; payload_len],
        }
    }

    /// A null-function frame used for power-save signalling (uplink).
    #[must_use] 
    pub fn null_function(sa: MacAddr, bssid: MacAddr, power_save: bool) -> Self {
        let fc = FrameControl::new(FrameKind::NullFunction)
            .with_to_ds(true)
            .with_power_management(power_save);
        Frame {
            fc,
            duration: 0,
            addr1: bssid,
            addr2: Some(sa),
            addr3: Some(bssid),
            addr4: None,
            seq_ctrl: Some(0),
            qos_ctrl: None,
            body: Vec::new(),
        }
    }

    /// A management frame: addr1=DA, addr2=SA, addr3=BSSID.
    #[must_use] 
    pub fn management(kind: FrameKind, da: MacAddr, sa: MacAddr, bssid: MacAddr, body: Vec<u8>) -> Self {
        debug_assert_eq!(kind.frame_type(), crate::fc::FrameType::Management);
        Frame {
            fc: FrameControl::new(kind),
            duration: 0,
            addr1: da,
            addr2: Some(sa),
            addr3: Some(bssid),
            addr4: None,
            seq_ctrl: Some(0),
            qos_ctrl: None,
            body,
        }
    }

    /// A broadcast probe request from `sa`.
    #[must_use] 
    pub fn probe_req(sa: MacAddr, body: Vec<u8>) -> Self {
        Self::management(FrameKind::ProbeReq, MacAddr::BROADCAST, sa, MacAddr::BROADCAST, body)
    }

    /// A beacon from `bssid`.
    #[must_use] 
    pub fn beacon(bssid: MacAddr, body: Vec<u8>) -> Self {
        Self::management(FrameKind::Beacon, MacAddr::BROADCAST, bssid, bssid, body)
    }

    /// An RTS: addr1=RA, addr2=TA.
    #[must_use] 
    pub fn rts(ra: MacAddr, ta: MacAddr, duration: u16) -> Self {
        Frame {
            fc: FrameControl::new(FrameKind::Rts),
            duration,
            addr1: ra,
            addr2: Some(ta),
            addr3: None,
            addr4: None,
            seq_ctrl: None,
            qos_ctrl: None,
            body: Vec::new(),
        }
    }

    /// A CTS: addr1=RA only; no transmitter address on air.
    #[must_use] 
    pub fn cts(ra: MacAddr, duration: u16) -> Self {
        Frame {
            fc: FrameControl::new(FrameKind::Cts),
            duration,
            addr1: ra,
            addr2: None,
            addr3: None,
            addr4: None,
            seq_ctrl: None,
            qos_ctrl: None,
            body: Vec::new(),
        }
    }

    /// An ACK: addr1=RA only; no transmitter address on air.
    #[must_use] 
    pub fn ack(ra: MacAddr) -> Self {
        Frame {
            fc: FrameControl::new(FrameKind::Ack),
            duration: 0,
            addr1: ra,
            addr2: None,
            addr3: None,
            addr4: None,
            seq_ctrl: None,
            qos_ctrl: None,
            body: Vec::new(),
        }
    }

    /// A PS-Poll: the duration field carries the association ID.
    #[must_use] 
    pub fn ps_poll(bssid: MacAddr, ta: MacAddr, aid: u16) -> Self {
        Frame {
            fc: FrameControl::new(FrameKind::PsPoll),
            duration: aid | 0xC000,
            addr1: bssid,
            addr2: Some(ta),
            addr3: None,
            addr4: None,
            seq_ctrl: None,
            qos_ctrl: None,
            body: Vec::new(),
        }
    }

    // ----- builder-style modifiers ----------------------------------------

    /// Sets the NAV duration field (or AID for PS-Poll) and returns `self`.
    #[must_use] 
    pub fn with_duration(mut self, duration: u16) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the sequence number (0..=4095), fragment 0, and returns `self`.
    /// No-op for control frames, which carry no sequence control field.
    #[must_use] 
    pub fn with_sequence(mut self, seq: u16) -> Self {
        if self.seq_ctrl.is_some() {
            self.seq_ctrl = Some((seq & 0x0fff) << 4);
        }
        self
    }

    /// Replaces the frame control field and returns `self`. The kind must
    /// stay compatible with the stored addresses; this is intended for flag
    /// tweaks (retry, protected, power management).
    #[must_use] 
    pub fn with_fc(mut self, fc: FrameControl) -> Self {
        self.fc = fc;
        self
    }

    /// Upgrades a plain data frame to `QoS` data with the given `QoS` Control
    /// field, adjusting the subtype, and returns `self`.
    #[must_use] 
    pub fn with_qos(mut self, qos_ctrl: u16) -> Self {
        let kind = match self.fc.kind() {
            FrameKind::Data => FrameKind::QosData,
            FrameKind::NullFunction => FrameKind::QosNull,
            other => other,
        };
        let mut fc = FrameControl::new(kind)
            .with_to_ds(self.fc.to_ds())
            .with_from_ds(self.fc.from_ds())
            .with_retry(self.fc.retry())
            .with_power_management(self.fc.power_management())
            .with_more_data(self.fc.more_data())
            .with_protected(self.fc.protected());
        fc = fc.with_more_fragments(self.fc.more_fragments()).with_order(self.fc.order());
        self.fc = fc;
        self.qos_ctrl = Some(qos_ctrl);
        self
    }

    /// Replaces the body bytes and returns `self`.
    #[must_use] 
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    // ----- accessors -------------------------------------------------------

    /// The frame control field.
    #[must_use] 
    pub fn frame_control(&self) -> FrameControl {
        self.fc
    }

    /// The frame kind (type + subtype).
    #[must_use] 
    pub fn kind(&self) -> FrameKind {
        self.fc.kind()
    }

    /// The raw duration/ID field.
    #[must_use] 
    pub fn duration(&self) -> u16 {
        self.duration
    }

    /// Receiver address (addr1), present on every frame.
    #[must_use] 
    pub fn receiver(&self) -> MacAddr {
        self.addr1
    }

    /// Transmitter address (addr2), absent for ACK and CTS.
    ///
    /// This is the address the fingerprinting pipeline attributes
    /// observations to; `None` corresponds to the paper's `sᵢ = null`.
    #[must_use] 
    pub fn transmitter(&self) -> Option<MacAddr> {
        self.addr2
    }

    /// The third address, when the kind carries one.
    #[must_use] 
    pub fn addr3(&self) -> Option<MacAddr> {
        self.addr3
    }

    /// Logical destination address per the ToDS/FromDS rules.
    #[must_use] 
    pub fn destination(&self) -> Option<MacAddr> {
        match self.kind().frame_type() {
            crate::fc::FrameType::Management => Some(self.addr1),
            crate::fc::FrameType::Control => Some(self.addr1),
            crate::fc::FrameType::Data => match (self.fc.to_ds(), self.fc.from_ds()) {
                (false, _) => Some(self.addr1),
                (true, false) => self.addr3,
                (true, true) => self.addr3,
            },
        }
    }

    /// Logical source address per the ToDS/FromDS rules.
    #[must_use] 
    pub fn source(&self) -> Option<MacAddr> {
        match self.kind().frame_type() {
            crate::fc::FrameType::Management => self.addr2,
            crate::fc::FrameType::Control => self.addr2,
            crate::fc::FrameType::Data => match (self.fc.to_ds(), self.fc.from_ds()) {
                (false, false) => self.addr2,
                (true, false) => self.addr2,
                (false, true) => self.addr3,
                (true, true) => self.addr4,
            },
        }
    }

    /// BSSID per the ToDS/FromDS rules, when determinable.
    #[must_use] 
    pub fn bssid(&self) -> Option<MacAddr> {
        match self.kind().frame_type() {
            crate::fc::FrameType::Management => self.addr3,
            crate::fc::FrameType::Control => match self.kind() {
                FrameKind::PsPoll => Some(self.addr1),
                _ => None,
            },
            crate::fc::FrameType::Data => match (self.fc.to_ds(), self.fc.from_ds()) {
                (false, false) => self.addr3,
                (true, false) => Some(self.addr1),
                (false, true) => self.addr2,
                (true, true) => None,
            },
        }
    }

    /// Sequence number (0..=4095) when the frame carries one.
    #[must_use] 
    pub fn sequence(&self) -> Option<u16> {
        self.seq_ctrl.map(|sc| sc >> 4)
    }

    /// `QoS` control field for `QoS` subtypes.
    #[must_use] 
    pub fn qos_control(&self) -> Option<u16> {
        self.qos_ctrl
    }

    /// Frame body (payload after the MAC header, before the FCS).
    #[must_use] 
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Header length in bytes for this frame's kind and flags (no FCS).
    #[must_use] 
    pub fn header_len(&self) -> usize {
        match self.kind() {
            FrameKind::Cts | FrameKind::Ack => 10,
            FrameKind::Rts | FrameKind::PsPoll | FrameKind::CfEnd | FrameKind::CfEndCfAck => 16,
            FrameKind::BlockAckReq | FrameKind::BlockAck => 16,
            kind => {
                let mut len = 24; // fc + dur + 3 addresses + seq
                if self.fc.to_ds() && self.fc.from_ds() {
                    len += 6;
                }
                if kind.has_qos_control() {
                    len += 2;
                }
                len
            }
        }
    }

    /// Total on-air length in bytes, including the 4-byte FCS.
    #[must_use] 
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.body.len() + FCS_LEN
    }

    // ----- codec ------------------------------------------------------------

    /// Serialises the frame to its on-air byte representation, including a
    /// valid FCS.
    #[must_use] 
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.fc.to_raw().to_le_bytes());
        out.extend_from_slice(&self.duration.to_le_bytes());
        out.extend_from_slice(&self.addr1.octets());
        match self.kind() {
            FrameKind::Cts | FrameKind::Ack => {}
            FrameKind::Rts
            | FrameKind::PsPoll
            | FrameKind::CfEnd
            | FrameKind::CfEndCfAck
            | FrameKind::BlockAckReq
            | FrameKind::BlockAck => {
                out.extend_from_slice(&self.addr2.unwrap_or(MacAddr::ZERO).octets());
            }
            kind => {
                out.extend_from_slice(&self.addr2.unwrap_or(MacAddr::ZERO).octets());
                out.extend_from_slice(&self.addr3.unwrap_or(MacAddr::ZERO).octets());
                out.extend_from_slice(&self.seq_ctrl.unwrap_or(0).to_le_bytes());
                if self.fc.to_ds() && self.fc.from_ds() {
                    out.extend_from_slice(&self.addr4.unwrap_or(MacAddr::ZERO).octets());
                }
                if kind.has_qos_control() {
                    out.extend_from_slice(&self.qos_ctrl.unwrap_or(0).to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&self.body);
        let fcs = crc32(&out);
        out.extend_from_slice(&fcs.to_le_bytes());
        out
    }

    /// Parses a frame from its on-air byte representation.
    ///
    /// The final four bytes are taken as the FCS and not validated; use
    /// [`Frame::verify_fcs`] to check integrity. Buffers without an FCS (as
    /// produced by some capture setups) can be parsed with
    /// [`Frame::parse_without_fcs`].
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Truncated`] if the buffer is shorter than the
    /// header demanded by the frame's kind and flags, and
    /// [`FrameError::ReservedType`] for type bits `0b11`.
    pub fn parse(buf: &[u8]) -> Result<Frame, FrameError> {
        Self::parse_inner(buf, true)
    }

    /// Parses a frame from a buffer that does not end with an FCS.
    ///
    /// # Errors
    ///
    /// Same as [`Frame::parse`].
    pub fn parse_without_fcs(buf: &[u8]) -> Result<Frame, FrameError> {
        Self::parse_inner(buf, false)
    }

    fn parse_inner(buf: &[u8], has_fcs: bool) -> Result<Frame, FrameError> {
        let err = |needed: usize| FrameError::Truncated { needed, available: buf.len() };
        if buf.len() < 10 {
            return Err(err(10));
        }
        let raw_fc = u16::from_le_bytes([buf[0], buf[1]]);
        if (raw_fc >> 2) & 0b11 == 3 {
            return Err(FrameError::ReservedType(3));
        }
        let fc = FrameControl::from_raw(raw_fc);
        let duration = u16::from_le_bytes([buf[2], buf[3]]);
        let addr1 = MacAddr::from_slice(&buf[4..]).expect("checked length");

        let mut frame = Frame {
            fc,
            duration,
            addr1,
            addr2: None,
            addr3: None,
            addr4: None,
            seq_ctrl: None,
            qos_ctrl: None,
            body: Vec::new(),
        };

        let header_len = match fc.kind() {
            FrameKind::Cts | FrameKind::Ack => 10,
            FrameKind::Rts
            | FrameKind::PsPoll
            | FrameKind::CfEnd
            | FrameKind::CfEndCfAck
            | FrameKind::BlockAckReq
            | FrameKind::BlockAck => {
                if buf.len() < 16 {
                    return Err(err(16));
                }
                frame.addr2 = MacAddr::from_slice(&buf[10..]);
                16
            }
            kind => {
                let mut need = 24;
                if fc.to_ds() && fc.from_ds() {
                    need += 6;
                }
                if kind.has_qos_control() {
                    need += 2;
                }
                if buf.len() < need {
                    return Err(err(need));
                }
                frame.addr2 = MacAddr::from_slice(&buf[10..]);
                frame.addr3 = MacAddr::from_slice(&buf[16..]);
                frame.seq_ctrl = Some(u16::from_le_bytes([buf[22], buf[23]]));
                let mut off = 24;
                if fc.to_ds() && fc.from_ds() {
                    frame.addr4 = MacAddr::from_slice(&buf[off..]);
                    off += 6;
                }
                if kind.has_qos_control() {
                    frame.qos_ctrl = Some(u16::from_le_bytes([buf[off], buf[off + 1]]));
                    off += 2;
                }
                off
            }
        };

        let tail = if has_fcs { FCS_LEN } else { 0 };
        let body_end = buf.len().saturating_sub(tail).max(header_len);
        frame.body = buf[header_len..body_end].to_vec();
        Ok(frame)
    }

    /// Verifies the trailing FCS of an on-air byte buffer.
    ///
    /// Returns `false` for buffers too short to hold an FCS.
    #[must_use] 
    pub fn verify_fcs(buf: &[u8]) -> bool {
        if buf.len() < FCS_LEN {
            return false;
        }
        let (payload, fcs_bytes) = buf.split_at(buf.len() - FCS_LEN);
        let expected = u32::from_le_bytes(fcs_bytes.try_into().expect("4 bytes"));
        crc32(payload) == expected
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) as used for the 802.11 FCS.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fc::FrameType;

    fn sta() -> MacAddr {
        MacAddr::from_index(0x11)
    }
    fn ap() -> MacAddr {
        MacAddr::from_index(0x22)
    }
    fn peer() -> MacAddr {
        MacAddr::from_index(0x33)
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn data_to_ds_round_trip() {
        let f = Frame::data_to_ds(sta(), ap(), peer(), 42).with_sequence(1234);
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), 24 + 42 + FCS_LEN);
        assert!(Frame::verify_fcs(&bytes));
        let parsed = Frame::parse(&bytes).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(parsed.transmitter(), Some(sta()));
        assert_eq!(parsed.destination(), Some(peer()));
        assert_eq!(parsed.source(), Some(sta()));
        assert_eq!(parsed.bssid(), Some(ap()));
        assert_eq!(parsed.sequence(), Some(1234));
    }

    #[test]
    fn data_from_ds_addressing() {
        let f = Frame::data_from_ds(sta(), ap(), peer(), 10);
        assert_eq!(f.receiver(), sta());
        assert_eq!(f.transmitter(), Some(ap()));
        assert_eq!(f.source(), Some(peer()));
        assert_eq!(f.destination(), Some(sta()));
        assert_eq!(f.bssid(), Some(ap()));
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn control_frames_round_trip() {
        let rts = Frame::rts(ap(), sta(), 314);
        let bytes = rts.to_bytes();
        assert_eq!(bytes.len(), crate::timing::RTS_LEN);
        let parsed = Frame::parse(&bytes).unwrap();
        assert_eq!(parsed, rts);
        assert_eq!(parsed.transmitter(), Some(sta()));
        assert_eq!(parsed.duration(), 314);

        let cts = Frame::cts(sta(), 200);
        let bytes = cts.to_bytes();
        assert_eq!(bytes.len(), crate::timing::ACK_LEN);
        assert_eq!(Frame::parse(&bytes).unwrap().transmitter(), None);

        let ack = Frame::ack(sta());
        let bytes = ack.to_bytes();
        assert_eq!(bytes.len(), crate::timing::ACK_LEN);
        assert_eq!(Frame::parse(&bytes).unwrap(), ack);
    }

    #[test]
    fn qos_upgrade_adds_field_and_subtype() {
        let f = Frame::data_to_ds(sta(), ap(), peer(), 99).with_qos(6);
        assert_eq!(f.kind(), FrameKind::QosData);
        assert_eq!(f.header_len(), 26);
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        assert_eq!(parsed.qos_control(), Some(6));
        assert_eq!(parsed.body().len(), 99);
    }

    #[test]
    fn null_function_flags() {
        let f = Frame::null_function(sta(), ap(), true);
        assert!(f.frame_control().power_management());
        assert!(f.kind().is_null_function());
        assert_eq!(f.body().len(), 0);
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn beacon_and_probe_are_broadcast_management() {
        let b = Frame::beacon(ap(), vec![1, 2, 3]);
        assert_eq!(b.kind().frame_type(), FrameType::Management);
        assert_eq!(b.destination(), Some(MacAddr::BROADCAST));
        assert_eq!(b.bssid(), Some(ap()));
        let p = Frame::probe_req(sta(), vec![]);
        assert_eq!(p.transmitter(), Some(sta()));
        assert_eq!(p.receiver(), MacAddr::BROADCAST);
    }

    #[test]
    fn ps_poll_carries_aid() {
        let f = Frame::ps_poll(ap(), sta(), 5);
        assert_eq!(f.duration() & 0x3fff, 5);
        assert_eq!(f.bssid(), Some(ap()));
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn four_address_frame_round_trip() {
        let fc = FrameControl::new(FrameKind::Data).with_to_ds(true).with_from_ds(true);
        let mut f = Frame::new(fc, ap());
        f.addr2 = Some(sta());
        f.addr3 = Some(peer());
        f.addr4 = Some(MacAddr::from_index(0x44));
        f.body = vec![9; 20];
        assert_eq!(f.header_len(), 30);
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(parsed.source(), Some(MacAddr::from_index(0x44)));
        assert_eq!(parsed.bssid(), None);
    }

    #[test]
    fn parse_rejects_truncation() {
        let bytes = Frame::data_to_ds(sta(), ap(), peer(), 0).to_bytes();
        for cut in [0, 5, 9, 15, 23] {
            let e = Frame::parse(&bytes[..cut]);
            assert!(matches!(e, Err(FrameError::Truncated { .. })), "cut={cut}");
        }
    }

    #[test]
    fn parse_rejects_reserved_type() {
        // type bits = 3 => raw fc with bits 2..3 = 0b11.
        let raw: u16 = 0b0000_0000_0000_1100;
        let mut buf = vec![0u8; 20];
        buf[..2].copy_from_slice(&raw.to_le_bytes());
        assert_eq!(Frame::parse(&buf), Err(FrameError::ReservedType(3)));
    }

    #[test]
    fn parse_without_fcs_keeps_full_body() {
        let f = Frame::data_to_ds(sta(), ap(), peer(), 8);
        let mut bytes = f.to_bytes();
        bytes.truncate(bytes.len() - FCS_LEN); // strip FCS
        let parsed = Frame::parse_without_fcs(&bytes).unwrap();
        assert_eq!(parsed.body().len(), 8);
    }

    #[test]
    fn corrupted_fcs_detected() {
        let mut bytes = Frame::ack(sta()).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(!Frame::verify_fcs(&bytes));
        assert!(!Frame::verify_fcs(&[1, 2]));
    }

    #[test]
    fn with_duration_and_retry_flags() {
        let f = Frame::data_to_ds(sta(), ap(), peer(), 1)
            .with_duration(44)
            .with_fc(FrameControl::new(FrameKind::Data).with_to_ds(true).with_retry(true));
        assert_eq!(f.duration(), 44);
        assert!(f.frame_control().retry());
    }

    #[test]
    fn sequence_is_masked_to_12_bits() {
        let f = Frame::data_to_ds(sta(), ap(), peer(), 0).with_sequence(5000);
        assert_eq!(f.sequence(), Some(0x0388)); // 5000 mod 4096
        // Control frames silently ignore sequence numbers.
        let ack = Frame::ack(sta()).with_sequence(7);
        assert_eq!(ack.sequence(), None);
    }
}
