//! Per-station sequence-number allocation.

/// A modulo-4096 sequence-number counter, one per transmitting station.
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::SequenceCounter;
///
/// let mut seq = SequenceCounter::new();
/// assert_eq!(seq.next(), 0);
/// assert_eq!(seq.next(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequenceCounter {
    next: u16,
}

impl SequenceCounter {
    /// A counter starting at sequence number 0.
    #[must_use] 
    pub const fn new() -> Self {
        SequenceCounter { next: 0 }
    }

    /// A counter starting at an arbitrary point (wrapped into range).
    #[must_use] 
    pub const fn starting_at(seq: u16) -> Self {
        SequenceCounter { next: seq & 0x0fff }
    }

    /// Returns the next sequence number (0..=4095) and advances.
    // Not an Iterator: the counter is infinite and yields plain u16s.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u16 {
        let v = self.next;
        self.next = (self.next + 1) & 0x0fff;
        v
    }

    /// The value `next()` would return, without advancing.
    #[must_use] 
    pub const fn peek(&self) -> u16 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_and_wraps() {
        let mut c = SequenceCounter::starting_at(4094);
        assert_eq!(c.next(), 4094);
        assert_eq!(c.next(), 4095);
        assert_eq!(c.next(), 0);
        assert_eq!(c.peek(), 1);
    }

    #[test]
    fn starting_at_masks() {
        let mut c = SequenceCounter::starting_at(5000);
        assert_eq!(c.next(), 0x0388); // 5000 mod 4096
    }
}
