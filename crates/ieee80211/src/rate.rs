//! Transmission rates for 802.11b/g.

use core::fmt;

/// The modulation family a rate belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Modulation {
    /// Direct-sequence spread spectrum (1, 2 Mb/s) and CCK (5.5, 11 Mb/s).
    Dsss,
    /// ERP-OFDM (6–54 Mb/s), i.e. 802.11g rates in the 2.4 GHz band.
    Ofdm,
}

/// A PHY transmission rate in units of 500 kb/s, as reported by Radiotap.
///
/// The constants cover the complete 802.11b/g rate set the paper's traces
/// contain (`1, 2, 5.5, 11, 6, 9, 12, 18, 24, 36, 48, 54` Mb/s).
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::{Modulation, Rate};
///
/// assert_eq!(Rate::R54M.mbps(), 54.0);
/// assert_eq!(Rate::R5_5M.to_raw(), 11);
/// assert_eq!(Rate::R11M.modulation(), Modulation::Dsss);
/// assert_eq!(Rate::R6M.modulation(), Modulation::Ofdm);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rate(u8);

impl Rate {
    /// 1 Mb/s DSSS — the lowest, most robust rate.
    pub const R1M: Rate = Rate(2);
    /// 2 Mb/s DSSS.
    pub const R2M: Rate = Rate(4);
    /// 5.5 Mb/s CCK.
    pub const R5_5M: Rate = Rate(11);
    /// 11 Mb/s CCK.
    pub const R11M: Rate = Rate(22);
    /// 6 Mb/s ERP-OFDM.
    pub const R6M: Rate = Rate(12);
    /// 9 Mb/s ERP-OFDM.
    pub const R9M: Rate = Rate(18);
    /// 12 Mb/s ERP-OFDM.
    pub const R12M: Rate = Rate(24);
    /// 18 Mb/s ERP-OFDM.
    pub const R18M: Rate = Rate(36);
    /// 24 Mb/s ERP-OFDM.
    pub const R24M: Rate = Rate(48);
    /// 36 Mb/s ERP-OFDM.
    pub const R36M: Rate = Rate(72);
    /// 48 Mb/s ERP-OFDM.
    pub const R48M: Rate = Rate(96);
    /// 54 Mb/s ERP-OFDM — the highest 802.11g rate.
    pub const R54M: Rate = Rate(108);

    /// The full 802.11b/g rate set in increasing speed order.
    pub const ALL_BG: [Rate; 12] = [
        Rate::R1M,
        Rate::R2M,
        Rate::R5_5M,
        Rate::R6M,
        Rate::R9M,
        Rate::R11M,
        Rate::R12M,
        Rate::R18M,
        Rate::R24M,
        Rate::R36M,
        Rate::R48M,
        Rate::R54M,
    ];

    /// The 802.11b-only rate set.
    pub const ALL_B: [Rate; 4] = [Rate::R1M, Rate::R2M, Rate::R5_5M, Rate::R11M];

    /// The ERP-OFDM (802.11g) rate set.
    pub const ALL_G: [Rate; 8] = [
        Rate::R6M,
        Rate::R9M,
        Rate::R12M,
        Rate::R18M,
        Rate::R24M,
        Rate::R36M,
        Rate::R48M,
        Rate::R54M,
    ];

    /// Creates a rate from a raw Radiotap value (units of 500 kb/s).
    ///
    /// Returns `None` for zero, which Radiotap uses for "unknown".
    #[inline]
    #[must_use] 
    pub const fn from_raw(half_mbps: u8) -> Option<Rate> {
        if half_mbps == 0 {
            None
        } else {
            Some(Rate(half_mbps))
        }
    }

    /// The raw Radiotap encoding (units of 500 kb/s).
    #[inline]
    #[must_use] 
    pub const fn to_raw(self) -> u8 {
        self.0
    }

    /// The rate in megabits per second.
    #[inline]
    #[must_use] 
    pub fn mbps(self) -> f64 {
        f64::from(self.0) / 2.0
    }

    /// The rate in bits per microsecond (equals Mb/s numerically).
    #[inline]
    #[must_use] 
    pub fn bits_per_micro(self) -> f64 {
        self.mbps()
    }

    /// Which modulation family this rate uses.
    ///
    /// Note 11 Mb/s (raw 22) is CCK while 12 Mb/s (raw 24) is OFDM.
    #[must_use] 
    pub const fn modulation(self) -> Modulation {
        match self.0 {
            2 | 4 | 11 | 22 => Modulation::Dsss,
            _ => Modulation::Ofdm,
        }
    }

    /// Data bits per 4 µs OFDM symbol. Zero for DSSS/CCK rates.
    ///
    /// For any OFDM rate — standard or not — this is `raw × 2`
    /// (`Mb/s × 4 µs`); computing it instead of table-lookup keeps
    /// nonstandard rates from corrupt capture headers out of the
    /// divide-by-zero path in `air_time`.
    #[must_use] 
    pub const fn bits_per_ofdm_symbol(self) -> u32 {
        match self.modulation() {
            Modulation::Dsss => 0,
            Modulation::Ofdm => self.0 as u32 * 2,
        }
    }

    /// `true` if this is one of the twelve standard 802.11b/g rates.
    #[must_use] 
    pub fn is_standard_bg(self) -> bool {
        Rate::ALL_BG.contains(&self)
    }

    /// The highest standard rate less than or equal to `self` in the given
    /// set, falling back to the set's lowest rate.
    #[must_use] 
    pub fn clamp_to_set(self, set: &[Rate]) -> Rate {
        let mut best: Option<Rate> = None;
        for &r in set {
            if r <= self && best.is_none_or(|b| r > b) {
                best = Some(r);
            }
        }
        best.or_else(|| set.iter().min().copied()).unwrap_or(self)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mbps();
        if m.fract() == 0.0 {
            write!(f, "{}Mbps", m as u64)
        } else {
            write!(f, "{m}Mbps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        for r in Rate::ALL_BG {
            assert_eq!(Rate::from_raw(r.to_raw()), Some(r));
        }
        assert_eq!(Rate::from_raw(0), None);
    }

    #[test]
    fn mbps_values() {
        assert_eq!(Rate::R1M.mbps(), 1.0);
        assert_eq!(Rate::R5_5M.mbps(), 5.5);
        assert_eq!(Rate::R54M.mbps(), 54.0);
    }

    #[test]
    fn modulation_split() {
        for r in Rate::ALL_B {
            assert_eq!(r.modulation(), Modulation::Dsss);
        }
        for r in Rate::ALL_G {
            assert_eq!(r.modulation(), Modulation::Ofdm);
            assert!(r.bits_per_ofdm_symbol() > 0);
        }
        assert_eq!(Rate::R11M.bits_per_ofdm_symbol(), 0);
    }

    #[test]
    fn ofdm_symbol_bits() {
        assert_eq!(Rate::R6M.bits_per_ofdm_symbol(), 24);
        assert_eq!(Rate::R54M.bits_per_ofdm_symbol(), 216);
    }

    #[test]
    fn ordering_follows_speed() {
        let mut sorted = Rate::ALL_BG.to_vec();
        sorted.sort();
        let mbps: Vec<f64> = sorted.iter().map(|r| r.mbps()).collect();
        for pair in mbps.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn clamp_to_set() {
        assert_eq!(Rate::R54M.clamp_to_set(&Rate::ALL_B), Rate::R11M);
        assert_eq!(Rate::R9M.clamp_to_set(&Rate::ALL_B), Rate::R5_5M);
        assert_eq!(Rate::R1M.clamp_to_set(&Rate::ALL_G), Rate::R6M);
        assert_eq!(Rate::R24M.clamp_to_set(&Rate::ALL_BG), Rate::R24M);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rate::R5_5M.to_string(), "5.5Mbps");
        assert_eq!(Rate::R54M.to_string(), "54Mbps");
    }
}
