//! PHY and MAC timing: slot times, interframe spaces, contention windows
//! and frame air-time computation for 802.11b/g.
//!
//! All quantities are expressed as [`Nanos`]. The numbers follow IEEE
//! 802.11-2007 clauses 17 (ERP) and 18 (HR/DSSS).

use crate::rate::{Modulation, Rate};
use crate::time::Nanos;

/// Preamble length used by DSSS/CCK transmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Preamble {
    /// 144-bit preamble + 48-bit PLCP header, all at 1 Mb/s (192 µs).
    #[default]
    Long,
    /// 72-bit preamble at 1 Mb/s + PLCP header at 2 Mb/s (96 µs total).
    Short,
}

/// The slot-time regime of the BSS.
///
/// 802.11b and mixed b/g networks use 20 µs slots; g-only networks may use
/// the optional 9 µs short slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SlotTime {
    /// 20 µs (802.11b, and 802.11g protection mode).
    #[default]
    Long,
    /// 9 µs (802.11g-only BSS).
    Short,
}

impl SlotTime {
    /// The slot duration.
    #[inline]
    #[must_use] 
    pub const fn duration(self) -> Nanos {
        match self {
            SlotTime::Long => Nanos::from_micros(20),
            SlotTime::Short => Nanos::from_micros(9),
        }
    }
}

/// Short interframe space (both DSSS and ERP in 2.4 GHz): 10 µs.
pub const SIFS: Nanos = Nanos::from_micros(10);

/// ERP "signal extension" appended after OFDM transmissions in 2.4 GHz: 6 µs.
pub const SIGNAL_EXTENSION: Nanos = Nanos::from_micros(6);

/// OFDM PLCP preamble (16 µs) + SIGNAL field (4 µs).
pub const OFDM_PLCP: Nanos = Nanos::from_micros(20);

/// OFDM symbol duration: 4 µs.
pub const OFDM_SYMBOL: Nanos = Nanos::from_micros(4);

/// Long DSSS PLCP preamble + header: 192 µs.
pub const DSSS_LONG_PLCP: Nanos = Nanos::from_micros(192);

/// Short DSSS PLCP preamble + header: 96 µs.
pub const DSSS_SHORT_PLCP: Nanos = Nanos::from_micros(96);

/// Default minimum contention window for DSSS (802.11b): 31 slots.
pub const CW_MIN_DSSS: u32 = 31;

/// Default minimum contention window for ERP-OFDM (802.11g): 15 slots.
pub const CW_MIN_OFDM: u32 = 15;

/// Maximum contention window: 1023 slots.
pub const CW_MAX: u32 = 1023;

/// DCF interframe space: `SIFS + 2 × slot`.
#[inline]
#[must_use] 
pub const fn difs(slot: SlotTime) -> Nanos {
    Nanos::from_nanos(SIFS.as_nanos() + 2 * slot.duration().as_nanos())
}

/// Extended interframe space used after a reception error:
/// `SIFS + DIFS + ACK-time at the lowest basic rate`.
#[inline]
#[must_use] 
pub fn eifs(slot: SlotTime, lowest_basic: Rate, preamble: Preamble) -> Nanos {
    let ack_time = air_time(PhyTx::new(lowest_basic, preamble), ACK_LEN);
    SIFS + difs(slot) + ack_time
}

/// Length in bytes (incl. FCS) of an ACK or CTS frame.
pub const ACK_LEN: usize = 14;
/// Length in bytes (incl. FCS) of an RTS frame.
pub const RTS_LEN: usize = 20;

/// Everything the PHY needs to know to time one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhyTx {
    /// Data rate of the PSDU.
    pub rate: Rate,
    /// DSSS preamble length (ignored for OFDM rates).
    pub preamble: Preamble,
    /// Whether to append the 6 µs ERP signal extension after OFDM frames.
    pub signal_extension: bool,
}

impl PhyTx {
    /// A transmission at `rate` with the given DSSS preamble and the ERP
    /// signal extension enabled for OFDM rates.
    #[must_use] 
    pub const fn new(rate: Rate, preamble: Preamble) -> Self {
        PhyTx { rate, preamble, signal_extension: true }
    }

    /// An ERP-OFDM transmission (802.11g) with signal extension.
    #[must_use] 
    pub const fn erp_ofdm(rate: Rate) -> Self {
        PhyTx { rate, preamble: Preamble::Long, signal_extension: true }
    }

    /// A DSSS/CCK transmission with a long preamble.
    #[must_use] 
    pub const fn dsss_long(rate: Rate) -> Self {
        PhyTx { rate, preamble: Preamble::Long, signal_extension: false }
    }

    /// A DSSS/CCK transmission with a short preamble.
    #[must_use] 
    pub const fn dsss_short(rate: Rate) -> Self {
        PhyTx { rate, preamble: Preamble::Short, signal_extension: false }
    }
}

/// Computes the time a frame of `len` bytes (including FCS) occupies the
/// medium when sent with PHY parameters `tx`.
///
/// For DSSS/CCK: `PLCP + ⌈8·len / rate⌉`. For ERP-OFDM:
/// `20 µs PLCP + 4 µs × ⌈(16 + 6 + 8·len) / bits-per-symbol⌉`, plus the 6 µs
/// signal extension when enabled.
///
/// # Example
///
/// ```
/// use wifiprint_ieee80211::{Rate, timing::{air_time, PhyTx}};
///
/// // A 1534-byte frame at 54 Mb/s: 20 + 4*ceil(12294/216) + 6 = 254 µs.
/// let t = air_time(PhyTx::erp_ofdm(Rate::R54M), 1534);
/// assert_eq!(t.as_micros(), 254);
///
/// // An ACK at 1 Mb/s long preamble: 192 + 112 = 304 µs.
/// let t = air_time(PhyTx::dsss_long(Rate::R1M), 14);
/// assert_eq!(t.as_micros(), 304);
/// ```
#[inline]
#[must_use] 
pub fn air_time(tx: PhyTx, len: usize) -> Nanos {
    let bits = 8 * len as u64;
    match tx.rate.modulation() {
        Modulation::Dsss => {
            let plcp = match tx.preamble {
                Preamble::Long => DSSS_LONG_PLCP,
                Preamble::Short => DSSS_SHORT_PLCP,
            };
            // Payload time: bits / (Mb/s) microseconds, rounded up to the
            // nearest microsecond (symbol granularity of 1 µs at 1 Mb/s is
            // the coarsest case; CCK uses 8-bit symbols but sub-µs detail
            // is below Radiotap's timestamp resolution anyway).
            let ns = (bits as f64 * 1000.0 / tx.rate.mbps()).ceil() as u64;
            plcp + Nanos::from_nanos(ns)
        }
        Modulation::Ofdm => {
            // 16 service bits + 6 tail bits + payload, in 4 µs symbols.
            // `.max(1)` guards the unreachable-but-fatal zero-width
            // symbol (a `Rate` of 0 cannot come out of the header
            // decoders, but a division by zero must not be possible).
            let n_dbps = u64::from(tx.rate.bits_per_ofdm_symbol().max(1));
            let total = 16 + 6 + bits;
            // Spelling out the standard divisors lets the compiler
            // strength-reduce each to a multiply — replay decodes
            // millions of frames per second, and a hardware divide per
            // frame is the single costliest instruction on that path.
            let symbols = match n_dbps {
                24 => total.div_ceil(24),
                36 => total.div_ceil(36),
                48 => total.div_ceil(48),
                72 => total.div_ceil(72),
                96 => total.div_ceil(96),
                144 => total.div_ceil(144),
                192 => total.div_ceil(192),
                216 => total.div_ceil(216),
                d => total.div_ceil(d),
            };
            let ext = if tx.signal_extension { SIGNAL_EXTENSION } else { Nanos::ZERO };
            OFDM_PLCP + OFDM_SYMBOL * symbols + ext
        }
    }
}

/// The paper's *estimated* transmission time `ttᵢ = sizeᵢ / rateᵢ`
/// (§IV-A), in microseconds.
///
/// This deliberately ignores PLCP overhead — it is what a passive monitor
/// computes from Radiotap's size and rate fields alone, and is the quantity
/// the "transmission time" fingerprint histograms bin.
#[inline]
#[must_use] 
pub fn estimated_tx_time_micros(len: usize, rate: Rate) -> f64 {
    8.0 * len as f64 / rate.mbps()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_and_ifs_values() {
        assert_eq!(SlotTime::Long.duration().as_micros(), 20);
        assert_eq!(SlotTime::Short.duration().as_micros(), 9);
        assert_eq!(difs(SlotTime::Long).as_micros(), 50);
        assert_eq!(difs(SlotTime::Short).as_micros(), 28);
    }

    #[test]
    fn ofdm_air_time_formula() {
        // 100 bytes at 6 Mb/s: symbols = ceil((16+6+800)/24) = 35
        // => 20 + 140 + 6 = 166 µs.
        let t = air_time(PhyTx::erp_ofdm(Rate::R6M), 100);
        assert_eq!(t.as_micros(), 166);
        // Without signal extension: 160 µs.
        let mut tx = PhyTx::erp_ofdm(Rate::R6M);
        tx.signal_extension = false;
        assert_eq!(air_time(tx, 100).as_micros(), 160);
    }

    #[test]
    fn dsss_air_time_formula() {
        // 1000 bytes at 11 Mb/s CCK, long preamble:
        // 192 + ceil(8000/11) = 192 + 727.27->728 ... computed in ns.
        let t = air_time(PhyTx::dsss_long(Rate::R11M), 1000);
        let expected_payload_ns = (8000.0f64 * 1000.0 / 11.0).ceil() as u64;
        assert_eq!(t.as_nanos(), 192_000 + expected_payload_ns);
        // Short preamble saves 96 µs exactly.
        let ts = air_time(PhyTx::dsss_short(Rate::R11M), 1000);
        assert_eq!(t - ts, Nanos::from_micros(96));
    }

    #[test]
    fn air_time_monotonic_in_size() {
        for rate in Rate::ALL_BG {
            let tx = PhyTx::new(rate, Preamble::Long);
            let mut last = Nanos::ZERO;
            for len in [14, 100, 500, 1500, 2346] {
                let t = air_time(tx, len);
                assert!(t >= last, "rate {rate} len {len}");
                last = t;
            }
        }
    }

    #[test]
    fn air_time_antitone_in_rate_within_family() {
        // More speed, less air time, same family and size.
        let ofdm: Vec<Nanos> =
            Rate::ALL_G.iter().map(|&r| air_time(PhyTx::erp_ofdm(r), 1500)).collect();
        for pair in ofdm.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        let dsss: Vec<Nanos> =
            Rate::ALL_B.iter().map(|&r| air_time(PhyTx::dsss_long(r), 1500)).collect();
        for pair in dsss.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn eifs_exceeds_difs() {
        let e = eifs(SlotTime::Long, Rate::R1M, Preamble::Long);
        assert!(e > difs(SlotTime::Long));
        // SIFS + DIFS + 304 µs ACK = 10 + 50 + 304 = 364 µs.
        assert_eq!(e.as_micros(), 364);
    }

    #[test]
    fn estimated_tx_time_matches_paper_definition() {
        // size/rate with size in bits and rate in Mb/s gives µs.
        assert_eq!(estimated_tx_time_micros(1500, Rate::R54M), 8.0 * 1500.0 / 54.0);
        assert_eq!(estimated_tx_time_micros(100, Rate::R1M), 800.0);
    }
}
