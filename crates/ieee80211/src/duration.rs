//! NAV duration-field computation, including per-card quirk models.
//!
//! Cache (2006), cited by the paper as a passive fingerprinting source,
//! observed that *"each wireless card computes the duration field in a
//! slightly different way"*. This module provides a standard-conformant
//! computation plus a parameterised quirk model so simulated devices can
//! reproduce that behavioural diversity.

use crate::rate::Rate;
use crate::time::Nanos;
use crate::timing::{air_time, PhyTx, ACK_LEN, SIFS};

/// How a card computes the duration/ID (NAV) field of its data frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DurationModel {
    /// Standard-conformant: `SIFS + ACK at the highest basic rate ≤ data
    /// rate`, zero for group-addressed frames.
    #[default]
    Standard,
    /// Computes the ACK time at the *data* rate instead of the basic rate —
    /// a common firmware shortcut.
    AckAtDataRate,
    /// Standard value rounded up to a multiple of the given microsecond
    /// quantum (some cards round to 8 or 16 µs).
    RoundedUp(
        /// Rounding quantum in microseconds.
        u16,
    ),
    /// Adds a fixed pad (µs) to the standard value.
    Padded(
        /// Pad in microseconds.
        u16,
    ),
    /// Always writes the same constant (µs) regardless of rate — observed
    /// on some drivers.
    Constant(
        /// The constant value in microseconds.
        u16,
    ),
    /// Always writes zero, even for unicast frames.
    AlwaysZero,
}

impl DurationModel {
    /// Computes the duration field (µs) for a unicast data frame expecting
    /// an ACK, given the data `rate` and the set of `basic_rates` of the
    /// BSS.
    ///
    /// `broadcast` frames get 0 under the standard model (no ACK follows).
    #[must_use] 
    pub fn data_frame_duration(self, rate: Rate, basic_rates: &[Rate], broadcast: bool) -> u16 {
        if broadcast && !matches!(self, DurationModel::Constant(_)) {
            return 0;
        }
        let ack_rate = match self {
            DurationModel::AckAtDataRate => rate,
            _ => rate.clamp_to_set(basic_rates),
        };
        let standard = SIFS + air_time(PhyTx::erp_or_dsss(ack_rate), ACK_LEN);
        let us = standard.as_micros() as u16;
        match self {
            DurationModel::Standard | DurationModel::AckAtDataRate => us,
            DurationModel::RoundedUp(q) => {
                let q = q.max(1);
                us.div_ceil(q) * q
            }
            DurationModel::Padded(pad) => us.saturating_add(pad),
            DurationModel::Constant(v) => v,
            DurationModel::AlwaysZero => 0,
        }
    }

    /// Computes the duration field (µs) an RTS should carry: time for
    /// `CTS + data + ACK` plus three SIFS.
    #[must_use] 
    pub fn rts_duration(self, data_air: Nanos, ack_rate: Rate) -> u16 {
        let cts = air_time(PhyTx::erp_or_dsss(ack_rate), ACK_LEN);
        let ack = cts;
        let total = SIFS * 3 + cts + data_air + ack;
        let us = total.as_micros().min(32767) as u16;
        match self {
            DurationModel::RoundedUp(q) => {
                let q = q.max(1);
                us.div_ceil(q) * q
            }
            DurationModel::Padded(pad) => us.saturating_add(pad),
            DurationModel::Constant(v) => v,
            DurationModel::AlwaysZero => 0,
            _ => us,
        }
    }
}

impl PhyTx {
    /// Chooses ERP-OFDM or long-preamble DSSS timing automatically from the
    /// rate's modulation family — the common case for control responses.
    #[must_use] 
    pub const fn erp_or_dsss(rate: Rate) -> PhyTx {
        match rate.modulation() {
            crate::rate::Modulation::Ofdm => PhyTx::erp_ofdm(rate),
            crate::rate::Modulation::Dsss => PhyTx::dsss_long(rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASIC: [Rate; 4] = [Rate::R1M, Rate::R2M, Rate::R5_5M, Rate::R11M];

    #[test]
    fn standard_unicast_duration() {
        // Data at 11 Mb/s, basic rates b-only: ACK at 11 Mb/s CCK long
        // preamble = 192 + ceil(112/11) µs ≈ 203 µs; + SIFS = 213 µs.
        let d = DurationModel::Standard.data_frame_duration(Rate::R11M, &BASIC, false);
        let ack = air_time(PhyTx::dsss_long(Rate::R11M), ACK_LEN);
        assert_eq!(u64::from(d), (SIFS + ack).as_micros());
    }

    #[test]
    fn broadcast_is_zero() {
        for model in [
            DurationModel::Standard,
            DurationModel::AckAtDataRate,
            DurationModel::RoundedUp(16),
            DurationModel::Padded(4),
            DurationModel::AlwaysZero,
        ] {
            assert_eq!(model.data_frame_duration(Rate::R54M, &BASIC, true), 0, "{model:?}");
        }
    }

    #[test]
    fn quirks_differ_from_standard() {
        let std_d = DurationModel::Standard.data_frame_duration(Rate::R54M, &BASIC, false);
        let data_rate = DurationModel::AckAtDataRate.data_frame_duration(Rate::R54M, &BASIC, false);
        // ACK at 54 Mb/s OFDM is much shorter than at 11 Mb/s CCK.
        assert!(data_rate < std_d);
        let rounded = DurationModel::RoundedUp(16).data_frame_duration(Rate::R54M, &BASIC, false);
        assert_eq!(rounded % 16, 0);
        assert!(rounded >= std_d);
        let padded = DurationModel::Padded(7).data_frame_duration(Rate::R54M, &BASIC, false);
        assert_eq!(padded, std_d + 7);
        assert_eq!(
            DurationModel::Constant(314).data_frame_duration(Rate::R54M, &BASIC, false),
            314
        );
        assert_eq!(DurationModel::AlwaysZero.data_frame_duration(Rate::R54M, &BASIC, false), 0);
    }

    #[test]
    fn rts_duration_covers_exchange() {
        let data_air = air_time(PhyTx::erp_ofdm(Rate::R54M), 1500);
        let d = DurationModel::Standard.rts_duration(data_air, Rate::R11M);
        let cts_ack = air_time(PhyTx::dsss_long(Rate::R11M), ACK_LEN);
        let expected = (SIFS * 3 + cts_ack * 2 + data_air).as_micros() as u16;
        assert_eq!(d, expected);
        assert!(d > data_air.as_micros() as u16);
    }

    #[test]
    fn rts_quirks() {
        let data_air = air_time(PhyTx::erp_ofdm(Rate::R24M), 500);
        let base = DurationModel::Standard.rts_duration(data_air, Rate::R2M);
        assert_eq!(DurationModel::AlwaysZero.rts_duration(data_air, Rate::R2M), 0);
        assert_eq!(DurationModel::Padded(3).rts_duration(data_air, Rate::R2M), base + 3);
        let r = DurationModel::RoundedUp(8).rts_duration(data_air, Rate::R2M);
        assert_eq!(r % 8, 0);
    }
}
