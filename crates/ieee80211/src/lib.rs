//! IEEE 802.11 MAC-layer model for the wifiprint suite.
//!
//! This crate provides the 802.11 substrate that both the discrete-event
//! simulator ([`wifiprint-netsim`]) and the fingerprinting library
//! ([`wifiprint-core`]) build on:
//!
//! * [`MacAddr`] — 48-bit MAC addresses with OUI helpers,
//! * [`FrameControl`] / [`FrameKind`] — bit-exact Frame Control codec and the
//!   full management/control/data subtype table,
//! * [`Frame`] — wire-format serialisation and parsing of MAC frames with
//!   the ToDS/FromDS addressing rules,
//! * [`Rate`] — DSSS/CCK and ERP-OFDM rates in 500 kb/s units,
//! * [`timing`] — PHY timing constants (slot, SIFS, DIFS, EIFS, contention
//!   windows, PLCP preambles) and frame air-time computation,
//! * [`duration`] — NAV duration-field computation including the per-card
//!   quirk models observed by Cache (2006),
//! * [`elements`] — the information elements needed for beacons and probes.
//!
//! # Example
//!
//! ```
//! use wifiprint_ieee80211::{Frame, FrameKind, MacAddr, Rate, timing};
//!
//! # fn main() -> Result<(), wifiprint_ieee80211::FrameError> {
//! let sta = MacAddr::new([0x00, 0x1b, 0x77, 0x00, 0x00, 0x01]);
//! let ap = MacAddr::new([0x00, 0x14, 0x6c, 0x00, 0x00, 0xff]);
//! let frame = Frame::data_to_ds(sta, ap, ap, 1460);
//! let bytes = frame.to_bytes();
//! let parsed = Frame::parse(&bytes)?;
//! assert_eq!(parsed.transmitter(), Some(sta));
//! assert_eq!(parsed.kind(), FrameKind::Data);
//!
//! // How long does this frame occupy the medium at 54 Mb/s?
//! let t = timing::air_time(timing::PhyTx::erp_ofdm(Rate::R54M), bytes.len());
//! assert!(t.as_micros() > 200 && t.as_micros() < 300);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::pedantic)]
// Pedantic lints this crate opts out of, mirroring wifiprint-core:
#![allow(
    // Wire codecs narrow u64/usize into header fields whose widths the
    // 802.11 standard fixes; the bounds are checked where they matter.
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss,
    // Exact float compares pin deliberate sentinel values in tests.
    clippy::float_cmp,
    // Getter-heavy API: #[must_use] on every accessor is noise.
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    // Public items are re-exported from the crate root, so
    // module-qualified names repeat the module name.
    clippy::module_name_repetitions,
    // Frame parsing keeps one match arm per 802.11 subtype even when
    // neighbouring subtypes currently decode identically — the standard's
    // table structure is the point.
    clippy::match_same_arms,
    // The flagged `expect`s are fixed-size slice conversions
    // (`[u8; N]` from a length-checked slice) that cannot fail.
    clippy::missing_panics_doc,
    // FrameControl mirrors the standard's flag bits; each bool is one
    // wire bit, an enum would obscure the mapping.
    clippy::struct_excessive_bools,
    // 802.11 jargon (DSSS/CCK, Duration/ID, …) trips the identifier
    // heuristic on prose that is not code.
    clippy::doc_markdown
)]

pub mod duration;
pub mod elements;
mod fc;
mod frame;
mod mac;
mod rate;
mod seq;
mod time;
pub mod timing;
pub mod wire;

pub use fc::{FrameControl, FrameKind, FrameType};
pub use frame::{Frame, FrameError};
pub use mac::{MacAddr, ParseMacAddrError};
pub use rate::{Modulation, Rate};
pub use seq::SequenceCounter;
pub use time::Nanos;
pub use wire::WireFrame;
