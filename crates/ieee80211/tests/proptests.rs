//! Property-based tests for the 802.11 codec layer.

use proptest::prelude::*;
use wifiprint_ieee80211::elements::Element;
use wifiprint_ieee80211::timing::{air_time, estimated_tx_time_micros, PhyTx, Preamble};
use wifiprint_ieee80211::{Frame, FrameControl, FrameKind, MacAddr, Nanos, Rate, WireFrame};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_rate() -> impl Strategy<Value = Rate> {
    prop::sample::select(Rate::ALL_BG.to_vec())
}

proptest! {
    #[test]
    fn frame_control_round_trips_all_values(raw in any::<u16>()) {
        let fc = FrameControl::from_raw(raw);
        prop_assert_eq!(fc.to_raw(), raw);
    }

    #[test]
    fn mac_display_parse_round_trip(mac in arb_mac()) {
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        prop_assert_eq!(parsed, mac);
    }

    #[test]
    fn data_frame_round_trip(
        sa in arb_mac(),
        bssid in arb_mac(),
        da in arb_mac(),
        len in 0usize..2304,
        seq in 0u16..4096,
        retry in any::<bool>(),
        protected in any::<bool>(),
    ) {
        let fc = FrameControl::new(FrameKind::Data)
            .with_to_ds(true)
            .with_retry(retry)
            .with_protected(protected);
        let frame = Frame::data_to_ds(sa, bssid, da, len)
            .with_fc(fc)
            .with_sequence(seq);
        let bytes = frame.to_bytes();
        prop_assert!(Frame::verify_fcs(&bytes));
        let parsed = Frame::parse(&bytes).unwrap();
        prop_assert_eq!(&parsed, &frame);
        prop_assert_eq!(parsed.wire_len(), bytes.len());
    }

    #[test]
    fn qos_data_round_trip(
        sa in arb_mac(),
        bssid in arb_mac(),
        len in 0usize..1000,
        qos in any::<u16>(),
    ) {
        let frame = Frame::data_to_ds(sa, bssid, bssid, len).with_qos(qos);
        let parsed = Frame::parse(&frame.to_bytes()).unwrap();
        prop_assert_eq!(parsed.qos_control(), Some(qos));
        prop_assert_eq!(parsed.body().len(), len);
    }

    #[test]
    fn parse_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Frame::parse(&bytes);
        let _ = Frame::parse_without_fcs(&bytes);
        let _ = Frame::verify_fcs(&bytes);
    }

    #[test]
    fn air_time_positive_and_bounded(rate in arb_rate(), len in 1usize..2400) {
        for preamble in [Preamble::Long, Preamble::Short] {
            let t = air_time(PhyTx::new(rate, preamble), len);
            prop_assert!(t > Nanos::ZERO);
            // Upper bound: at 1 Mb/s, 2400 bytes is 19.2 ms + preamble.
            prop_assert!(t < Nanos::from_millis(25));
        }
    }

    #[test]
    fn air_time_monotone_in_len(rate in arb_rate(), a in 1usize..2000, b in 1usize..2000) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let tx = PhyTx::new(rate, Preamble::Long);
        prop_assert!(air_time(tx, small) <= air_time(tx, large));
    }

    #[test]
    fn estimated_tx_time_scales_linearly(rate in arb_rate(), len in 1usize..2000) {
        let one = estimated_tx_time_micros(len, rate);
        let double = estimated_tx_time_micros(2 * len, rate);
        prop_assert!((double - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn elements_round_trip(
        ssid in "[a-zA-Z0-9]{0,32}",
        channel in 1u8..14,
        extra in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let elements = vec![
            Element::Ssid(ssid),
            Element::DsParams(channel),
            Element::Other { id: 221, data: extra },
        ];
        let bytes = Element::encode_all(&elements);
        prop_assert_eq!(Element::parse_all(&bytes), elements);
    }

    #[test]
    fn element_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Element::parse_all(&bytes);
    }
}

/// An arbitrary well-formed frame covering every address layout the wire
/// format has: anonymous control frames, 16-byte control frames,
/// management, plain and QoS data in all DS directions.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        (arb_mac(), arb_mac(), arb_mac()),
        (0usize..600, 0u16..4096, any::<u16>()),
        (any::<bool>(), any::<bool>(), 0usize..12),
    )
        .prop_map(|((a, b, c), (len, seq, qos), (retry, pm, pick))| {
            let frame = match pick {
                0 => Frame::ack(a),
                1 => Frame::cts(a, seq),
                2 => Frame::rts(a, b, seq),
                3 => Frame::ps_poll(a, b, seq & 0x3fff),
                4 => Frame::beacon(a, vec![7; len]),
                5 => Frame::probe_req(a, vec![3; len]),
                6 => Frame::management(FrameKind::Auth, a, b, c, vec![1; len]),
                7 => Frame::null_function(a, b, pm),
                8 => Frame::data_from_ds(a, b, c, len),
                9 => Frame::data_ibss(a, b, c, len),
                10 => Frame::data_to_ds(a, b, c, len).with_qos(qos),
                _ => Frame::data_to_ds(a, b, c, len),
            };
            let fc = frame.frame_control().with_retry(retry);
            frame.with_fc(fc).with_sequence(seq)
        })
}

/// Every `WireFrame` accessor must agree with the materializing parser.
fn assert_wire_parity(bytes: &[u8], has_fcs: bool) {
    let (view, frame) = if has_fcs {
        (WireFrame::parse(bytes).unwrap(), Frame::parse(bytes).unwrap())
    } else {
        (WireFrame::parse_without_fcs(bytes).unwrap(), Frame::parse_without_fcs(bytes).unwrap())
    };
    assert_eq!(view.frame_control(), frame.frame_control());
    assert_eq!(view.kind(), frame.kind());
    assert_eq!(view.duration(), frame.duration());
    assert_eq!(view.receiver(), frame.receiver());
    assert_eq!(view.transmitter(), frame.transmitter());
    assert_eq!(view.addr3(), frame.addr3());
    assert_eq!(view.sequence(), frame.sequence());
    assert_eq!(view.qos_control(), frame.qos_control());
    assert_eq!(view.destination(), frame.destination());
    assert_eq!(view.source(), frame.source());
    assert_eq!(view.bssid(), frame.bssid());
    assert_eq!(view.body(), frame.body());
    assert_eq!(view.header_len(), frame.header_len());
    assert_eq!(view.wire_len(), frame.wire_len());
    assert_eq!(view.retry(), frame.frame_control().retry());
}

proptest! {
    // Tentpole contract: the borrowed view is field-for-field equal to
    // `Frame::parse` / `parse_without_fcs` on every valid frame.
    #[test]
    fn wire_view_matches_owned_parse(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        assert_wire_parity(&bytes, true);
        let stripped = &bytes[..bytes.len() - 4];
        assert_wire_parity(stripped, false);
    }

    // The borrowed parser is as total as the owned one: identical
    // accept/reject decisions and identical typed errors on garbage.
    #[test]
    fn wire_view_never_panics_and_errors_match(
        bytes in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        match (WireFrame::parse(&bytes), Frame::parse(&bytes)) {
            (Ok(_), Ok(_)) => {}
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "decision mismatch: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
        let _ = WireFrame::parse_without_fcs(&bytes);
    }

    // Truncating a valid frame anywhere yields the same truncation error
    // from both parsers.
    #[test]
    fn wire_view_truncation_parity(frame in arb_frame(), cut_seed in any::<u64>()) {
        let bytes = frame.to_bytes();
        let cut = (cut_seed as usize) % bytes.len();
        match (WireFrame::parse(&bytes[..cut]), Frame::parse(&bytes[..cut])) {
            (Ok(_), Ok(_)) => {}
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "decision mismatch: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}
