//! Property-based tests for the 802.11 codec layer.

use proptest::prelude::*;
use wifiprint_ieee80211::elements::Element;
use wifiprint_ieee80211::timing::{air_time, estimated_tx_time_micros, PhyTx, Preamble};
use wifiprint_ieee80211::{Frame, FrameControl, FrameKind, MacAddr, Nanos, Rate};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_rate() -> impl Strategy<Value = Rate> {
    prop::sample::select(Rate::ALL_BG.to_vec())
}

proptest! {
    #[test]
    fn frame_control_round_trips_all_values(raw in any::<u16>()) {
        let fc = FrameControl::from_raw(raw);
        prop_assert_eq!(fc.to_raw(), raw);
    }

    #[test]
    fn mac_display_parse_round_trip(mac in arb_mac()) {
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        prop_assert_eq!(parsed, mac);
    }

    #[test]
    fn data_frame_round_trip(
        sa in arb_mac(),
        bssid in arb_mac(),
        da in arb_mac(),
        len in 0usize..2304,
        seq in 0u16..4096,
        retry in any::<bool>(),
        protected in any::<bool>(),
    ) {
        let fc = FrameControl::new(FrameKind::Data)
            .with_to_ds(true)
            .with_retry(retry)
            .with_protected(protected);
        let frame = Frame::data_to_ds(sa, bssid, da, len)
            .with_fc(fc)
            .with_sequence(seq);
        let bytes = frame.to_bytes();
        prop_assert!(Frame::verify_fcs(&bytes));
        let parsed = Frame::parse(&bytes).unwrap();
        prop_assert_eq!(&parsed, &frame);
        prop_assert_eq!(parsed.wire_len(), bytes.len());
    }

    #[test]
    fn qos_data_round_trip(
        sa in arb_mac(),
        bssid in arb_mac(),
        len in 0usize..1000,
        qos in any::<u16>(),
    ) {
        let frame = Frame::data_to_ds(sa, bssid, bssid, len).with_qos(qos);
        let parsed = Frame::parse(&frame.to_bytes()).unwrap();
        prop_assert_eq!(parsed.qos_control(), Some(qos));
        prop_assert_eq!(parsed.body().len(), len);
    }

    #[test]
    fn parse_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Frame::parse(&bytes);
        let _ = Frame::parse_without_fcs(&bytes);
        let _ = Frame::verify_fcs(&bytes);
    }

    #[test]
    fn air_time_positive_and_bounded(rate in arb_rate(), len in 1usize..2400) {
        for preamble in [Preamble::Long, Preamble::Short] {
            let t = air_time(PhyTx::new(rate, preamble), len);
            prop_assert!(t > Nanos::ZERO);
            // Upper bound: at 1 Mb/s, 2400 bytes is 19.2 ms + preamble.
            prop_assert!(t < Nanos::from_millis(25));
        }
    }

    #[test]
    fn air_time_monotone_in_len(rate in arb_rate(), a in 1usize..2000, b in 1usize..2000) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let tx = PhyTx::new(rate, Preamble::Long);
        prop_assert!(air_time(tx, small) <= air_time(tx, large));
    }

    #[test]
    fn estimated_tx_time_scales_linearly(rate in arb_rate(), len in 1usize..2000) {
        let one = estimated_tx_time_micros(len, rate);
        let double = estimated_tx_time_micros(2 * len, rate);
        prop_assert!((double - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn elements_round_trip(
        ssid in "[a-zA-Z0-9]{0,32}",
        channel in 1u8..14,
        extra in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let elements = vec![
            Element::Ssid(ssid),
            Element::DsParams(channel),
            Element::Other { id: 221, data: extra },
        ];
        let bytes = Element::encode_all(&elements);
        prop_assert_eq!(Element::parse_all(&bytes), elements);
    }

    #[test]
    fn element_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Element::parse_all(&bytes);
    }
}
