//! The monitor-side view of one captured 802.11 frame.
//!
//! [`CapturedFrame`] is the interchange type of the whole suite: the
//! discrete-event simulator's monitor tap produces them, pcap decoding
//! produces them, and the fingerprinting pipeline consumes them. It carries
//! exactly the observables the paper's method is allowed to use — capture
//! metadata (timestamp, rate, size) plus the MAC header summary (type,
//! addresses, retry flag) — and nothing else.

use wifiprint_ieee80211::timing::{air_time, PhyTx, Preamble};
use wifiprint_ieee80211::{
    Frame, FrameError, FrameKind, MacAddr, Modulation, Nanos, Rate, WireFrame,
};

use crate::{HeaderError, RxInfo};

/// One frame as seen by a passive monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapturedFrame {
    /// End-of-reception time on the monitor's clock (the paper's `tᵢ`).
    pub t_end: Nanos,
    /// Time the frame occupied the medium; reception started at
    /// `t_end - air_time`.
    pub air_time: Nanos,
    /// PHY rate the frame was received at.
    pub rate: Rate,
    /// On-air frame size in bytes, including FCS (the paper's `sizeᵢ`).
    pub size: usize,
    /// Frame kind (type + subtype) — the paper's `ftype`.
    pub kind: FrameKind,
    /// Transmitter address, or `None` for ACK/CTS (the paper's `sᵢ = null`).
    pub transmitter: Option<MacAddr>,
    /// Receiver address (addr1).
    pub receiver: MacAddr,
    /// `true` if the logical destination (DA) is group-addressed. For
    /// uplink (`ToDS`) frames the DA is addr3, not the receiver — this flag
    /// is what "broadcast frames" means in Fig. 7 and the Pang baseline.
    pub dest_group: bool,
    /// Retry flag from Frame Control.
    pub retry: bool,
    /// Received signal strength, dBm.
    pub signal_dbm: i8,
}

impl CapturedFrame {
    /// Assembles a captured frame from a parsed MAC frame plus reception
    /// metadata, deriving air time from size and rate.
    pub fn from_frame(frame: &Frame, rate: Rate, t_end: Nanos, signal_dbm: i8) -> Self {
        let size = frame.wire_len();
        let tx = match rate.modulation() {
            Modulation::Ofdm => PhyTx::erp_ofdm(rate),
            Modulation::Dsss => PhyTx::new(rate, Preamble::Long),
        };
        CapturedFrame {
            t_end,
            air_time: air_time(tx, size),
            rate,
            size,
            kind: frame.kind(),
            transmitter: frame.transmitter(),
            receiver: frame.receiver(),
            dest_group: frame.destination().is_some_and(MacAddr::is_multicast),
            retry: frame.frame_control().retry(),
            signal_dbm,
        }
    }

    /// Assembles a captured frame from a borrowed wire view plus reception
    /// metadata — the zero-copy analogue of [`CapturedFrame::from_frame`].
    #[inline]
    pub fn from_wire(view: &WireFrame<'_>, rate: Rate, t_end: Nanos, signal_dbm: i8) -> Self {
        let size = view.wire_len();
        let tx = match rate.modulation() {
            Modulation::Ofdm => PhyTx::erp_ofdm(rate),
            Modulation::Dsss => PhyTx::new(rate, Preamble::Long),
        };
        CapturedFrame {
            t_end,
            air_time: air_time(tx, size),
            rate,
            size,
            kind: view.kind(),
            transmitter: view.transmitter(),
            receiver: view.receiver(),
            dest_group: view.destination().is_some_and(MacAddr::is_multicast),
            retry: view.retry(),
            signal_dbm,
        }
    }

    /// Decodes a Radiotap-prefixed packet (as stored in a DLT 127 pcap
    /// record) into a captured frame.
    ///
    /// `fallback_t_end` is used when the header lacks a TSFT field — pcap
    /// record timestamps are the usual source. `fcs_in_size` controls
    /// whether the captured bytes include the FCS (Radiotap flag 0x10);
    /// when absent the size is adjusted so `sizeᵢ` is always the on-air
    /// length.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when either the capture header or the MAC
    /// frame cannot be parsed.
    #[inline]
    pub fn from_radiotap_packet(
        bytes: &[u8],
        fallback_t_end: Nanos,
    ) -> Result<CapturedFrame, DecodeError> {
        Self::from_radiotap_packet_counted(bytes, fallback_t_end).map(|(cap, _)| cap)
    }

    /// Like [`CapturedFrame::from_radiotap_packet`], but also reports which
    /// capture-metadata fields were absent and had to be defaulted.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when either the capture header or the MAC
    /// frame cannot be parsed.
    #[inline]
    pub fn from_radiotap_packet_counted(
        bytes: &[u8],
        fallback_t_end: Nanos,
    ) -> Result<(CapturedFrame, DefaultedFields), DecodeError> {
        let (info, hdr_len) = RxInfo::from_radiotap(bytes)?;
        Self::from_decoded(&info, &bytes[hdr_len..], fallback_t_end)
    }

    /// Decodes a Prism-prefixed packet (DLT 119 pcap record).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when either the capture header or the MAC
    /// frame cannot be parsed.
    #[inline]
    pub fn from_prism_packet(
        bytes: &[u8],
        fallback_t_end: Nanos,
    ) -> Result<CapturedFrame, DecodeError> {
        Self::from_prism_packet_counted(bytes, fallback_t_end).map(|(cap, _)| cap)
    }

    /// Like [`CapturedFrame::from_prism_packet`], but also reports which
    /// capture-metadata fields were absent and had to be defaulted.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when either the capture header or the MAC
    /// frame cannot be parsed.
    #[inline]
    pub fn from_prism_packet_counted(
        bytes: &[u8],
        fallback_t_end: Nanos,
    ) -> Result<(CapturedFrame, DefaultedFields), DecodeError> {
        let (info, hdr_len) = RxInfo::from_prism(bytes)?;
        Self::from_decoded(&info, &bytes[hdr_len..], fallback_t_end)
    }

    #[inline]
    fn from_decoded(
        info: &RxInfo,
        frame_bytes: &[u8],
        fallback_t_end: Nanos,
    ) -> Result<(CapturedFrame, DefaultedFields), DecodeError> {
        let fcs_included = info.flags.contains(crate::RxFlags::FCS_INCLUDED);
        // Borrowed view: no body copy, no `Frame` materialization. The
        // parity proptests pin this to `Frame::parse` field for field.
        let view = if fcs_included {
            WireFrame::parse(frame_bytes)?
        } else {
            WireFrame::parse_without_fcs(frame_bytes)?
        };
        let defaulted = DefaultedFields {
            rate: info.rate.is_none(),
            signal: info.signal_dbm.is_none(),
            timestamp: info.tsft_us.is_none(),
        };
        let rate = info.rate.unwrap_or(Rate::R1M);
        let t_end = info.tsft_us.map_or(fallback_t_end, Nanos::from_micros);
        let signal = info.signal_dbm.unwrap_or(-70);
        // `wire_len` already includes the FCS, so the size is on-air
        // regardless of whether the capture stored those 4 bytes.
        Ok((CapturedFrame::from_wire(&view, rate, t_end, signal), defaulted))
    }

    /// Start-of-reception time (`t_end - air_time`).
    #[must_use] 
    pub fn t_start(&self) -> Nanos {
        self.t_end.saturating_sub(self.air_time)
    }

    /// `true` if the frame's logical destination is group-addressed
    /// (broadcast or multicast), regardless of the addr1 receiver.
    #[must_use] 
    pub fn is_group_destined(&self) -> bool {
        self.dest_group
    }

    /// `true` if the frame is addressed (addr1) to the broadcast address.
    #[must_use] 
    pub fn is_broadcast(&self) -> bool {
        self.receiver.is_broadcast()
    }
}

/// Which capture-metadata fields were missing from the Radiotap/Prism
/// header and were filled with defaults during decode.
///
/// Replay consumers aggregate these to judge capture quality: a monitor
/// that never reports rate skews every derived `air_time` toward the
/// 1 Mb/s worst case, and a missing TSFT falls back to the (coarser) pcap
/// record timestamp.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefaultedFields {
    /// No rate field: `Rate::R1M` was assumed.
    pub rate: bool,
    /// No signal field: `-70` dBm was assumed.
    pub signal: bool,
    /// No TSFT field: the caller-supplied fallback timestamp was used.
    pub timestamp: bool,
}

impl DefaultedFields {
    /// `true` if any field had to be defaulted.
    #[must_use] 
    pub fn any(self) -> bool {
        self.rate || self.signal || self.timestamp
    }

    /// Number of defaulted fields (0–3).
    #[must_use] 
    pub fn count(self) -> usize {
        usize::from(self.rate) + usize::from(self.signal) + usize::from(self.timestamp)
    }
}

/// Error decoding a capture record into a [`CapturedFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The capture header (Radiotap/Prism) was malformed.
    Header(HeaderError),
    /// The 802.11 frame after the header was malformed.
    Frame(FrameError),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Header(e) => write!(f, "capture header: {e}"),
            DecodeError::Frame(e) => write!(f, "802.11 frame: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Header(e) => Some(e),
            DecodeError::Frame(e) => Some(e),
        }
    }
}

impl From<HeaderError> for DecodeError {
    fn from(e: HeaderError) -> Self {
        DecodeError::Header(e)
    }
}

impl From<FrameError> for DecodeError {
    fn from(e: FrameError) -> Self {
        DecodeError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RxFlags;

    fn sta() -> MacAddr {
        MacAddr::from_index(1)
    }
    fn ap() -> MacAddr {
        MacAddr::from_index(2)
    }

    #[test]
    fn from_frame_derives_air_time_and_sender() {
        let frame = Frame::data_to_ds(sta(), ap(), ap(), 1000);
        let cap = CapturedFrame::from_frame(&frame, Rate::R54M, Nanos::from_micros(500), -50);
        assert_eq!(cap.size, 1000 + 24 + 4);
        assert_eq!(cap.transmitter, Some(sta()));
        assert!(cap.air_time > Nanos::ZERO);
        assert_eq!(cap.t_start(), cap.t_end - cap.air_time);
        assert!(!cap.is_broadcast());
    }

    #[test]
    fn ack_has_no_transmitter() {
        let cap =
            CapturedFrame::from_frame(&Frame::ack(sta()), Rate::R11M, Nanos::from_micros(10), -60);
        assert_eq!(cap.transmitter, None);
        assert_eq!(cap.kind, FrameKind::Ack);
    }

    #[test]
    fn radiotap_packet_round_trip() {
        // A broadcast relayed by the AP: addr1 (receiver) is broadcast.
        let frame = Frame::data_from_ds(MacAddr::BROADCAST, ap(), sta(), 64);
        let info = RxInfo {
            tsft_us: Some(123_000),
            rate: Some(Rate::R11M),
            channel_mhz: Some(2437),
            signal_dbm: Some(-55),
            noise_dbm: None,
            antenna: None,
            flags: RxFlags::FCS_INCLUDED,
        };
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        let cap = CapturedFrame::from_radiotap_packet(&packet, Nanos::ZERO).unwrap();
        assert_eq!(cap.t_end, Nanos::from_micros(123_000));
        assert_eq!(cap.rate, Rate::R11M);
        assert_eq!(cap.signal_dbm, -55);
        assert_eq!(cap.transmitter, Some(ap()));
        assert!(cap.is_broadcast());
        assert_eq!(cap.size, frame.wire_len());
    }

    #[test]
    fn fallback_timestamp_used_without_tsft() {
        let frame = Frame::ack(sta());
        let info = RxInfo { rate: Some(Rate::R1M), ..RxInfo::default() };
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        let cap =
            CapturedFrame::from_radiotap_packet(&packet, Nanos::from_micros(777)).unwrap();
        assert_eq!(cap.t_end, Nanos::from_micros(777));
    }

    #[test]
    fn prism_packet_decodes() {
        let frame = Frame::null_function(sta(), ap(), true);
        let frame_bytes = frame.to_bytes();
        let info = RxInfo {
            tsft_us: Some(42),
            rate: Some(Rate::R2M),
            channel_mhz: Some(2412),
            signal_dbm: Some(-80),
            ..RxInfo::default()
        };
        let mut packet = info.to_prism(frame_bytes.len() as u32);
        packet.extend_from_slice(&frame_bytes);
        // Prism captures traditionally include the FCS.
        let cap = CapturedFrame::from_prism_packet(&packet, Nanos::ZERO).unwrap();
        assert_eq!(cap.kind, FrameKind::NullFunction);
        assert_eq!(cap.rate, Rate::R2M);
        assert_eq!(cap.t_end, Nanos::from_micros(42));
    }

    #[test]
    fn counted_decode_reports_defaulted_fields() {
        let frame = Frame::ack(sta());
        // Only a rate: signal and TSFT must be reported as defaulted.
        let info = RxInfo { rate: Some(Rate::R1M), ..RxInfo::default() };
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        let (cap, defaulted) =
            CapturedFrame::from_radiotap_packet_counted(&packet, Nanos::from_micros(9)).unwrap();
        assert_eq!(cap.t_end, Nanos::from_micros(9));
        assert!(!defaulted.rate);
        assert!(defaulted.signal);
        assert!(defaulted.timestamp);
        assert_eq!(defaulted.count(), 2);
        assert!(defaulted.any());

        // A fully-populated header defaults nothing.
        let full = RxInfo {
            tsft_us: Some(1),
            rate: Some(Rate::R11M),
            signal_dbm: Some(-40),
            ..RxInfo::default()
        };
        let mut packet = full.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        let (_, defaulted) =
            CapturedFrame::from_radiotap_packet_counted(&packet, Nanos::ZERO).unwrap();
        assert_eq!(defaulted, DefaultedFields::default());
        assert_eq!(defaulted.count(), 0);
    }

    #[test]
    fn from_wire_matches_from_frame() {
        let frame = Frame::data_to_ds(sta(), ap(), MacAddr::BROADCAST, 200).with_sequence(17);
        let bytes = frame.to_bytes();
        let view = WireFrame::parse(&bytes).unwrap();
        let a = CapturedFrame::from_frame(&frame, Rate::R24M, Nanos::from_micros(33), -48);
        let b = CapturedFrame::from_wire(&view, Rate::R24M, Nanos::from_micros(33), -48);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_errors_are_classified() {
        let err = CapturedFrame::from_radiotap_packet(&[0u8; 2], Nanos::ZERO).unwrap_err();
        assert!(matches!(err, DecodeError::Header(_)));
        let info = RxInfo::default();
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&[1, 2, 3]); // not a full MAC frame
        let err = CapturedFrame::from_radiotap_packet(&packet, Nanos::ZERO).unwrap_err();
        assert!(matches!(err, DecodeError::Frame(_)));
    }
}
