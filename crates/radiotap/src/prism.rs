//! Prism (wlan-ng) monitor header: the older fixed-size capture header
//! format (`DLT_PRISM_HEADER` = 119) mentioned by the paper alongside
//! Radiotap.
//!
//! Layout (all little-endian):
//!
//! ```text
//! u32 msgcode  (0x00000044, "sniff frame")
//! u32 msglen   (144)
//! u8  devname[16]
//! 10 × { u32 did; u16 status; u16 len; u32 data }
//! ```
//!
//! Items in order: hosttime, mactime, channel, rssi, sq, signal, noise,
//! rate, istx, frmlen. `status == 0` marks a value as present.

use wifiprint_ieee80211::Rate;

use crate::{HeaderError, RxInfo};

/// Total header size in bytes.
pub const PRISM_LEN: usize = 144;

/// The wlan-ng "sniff frame" message code.
pub const MSGCODE: u32 = 0x0000_0044;

const DID_HOSTTIME: u32 = 0x0001_0044;
const DID_MACTIME: u32 = 0x0002_0044;
const DID_CHANNEL: u32 = 0x0003_0044;
const DID_RSSI: u32 = 0x0004_0044;
const DID_SQ: u32 = 0x0005_0044;
const DID_SIGNAL: u32 = 0x0006_0044;
const DID_NOISE: u32 = 0x0007_0044;
const DID_RATE: u32 = 0x0008_0044;
const DID_ISTX: u32 = 0x0009_0044;
const DID_FRMLEN: u32 = 0x000A_0044;

const ITEM_DIDS: [u32; 10] = [
    DID_HOSTTIME,
    DID_MACTIME,
    DID_CHANNEL,
    DID_RSSI,
    DID_SQ,
    DID_SIGNAL,
    DID_NOISE,
    DID_RATE,
    DID_ISTX,
    DID_FRMLEN,
];

fn push_item(out: &mut Vec<u8>, did: u32, value: Option<u32>) {
    out.extend_from_slice(&did.to_le_bytes());
    let status: u16 = u16::from(value.is_none());
    out.extend_from_slice(&status.to_le_bytes());
    out.extend_from_slice(&4u16.to_le_bytes());
    out.extend_from_slice(&value.unwrap_or(0).to_le_bytes());
}

/// Encodes `info` as a 144-byte Prism header.
///
/// `mactime` is truncated to 32 bits (as real wlan-ng drivers do; it wraps
/// roughly every 71 minutes). `frame_len` is the length of the following
/// 802.11 frame.
pub fn encode(info: &RxInfo, frame_len: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(PRISM_LEN);
    out.extend_from_slice(&MSGCODE.to_le_bytes());
    out.extend_from_slice(&(PRISM_LEN as u32).to_le_bytes());
    let mut devname = [0u8; 16];
    devname[..5].copy_from_slice(b"wlan0");
    out.extend_from_slice(&devname);

    let channel = info.channel_mhz.and_then(RxInfo::mhz_to_channel).map(u32::from);
    push_item(&mut out, DID_HOSTTIME, info.tsft_us.map(|t| (t / 10_000) as u32));
    push_item(&mut out, DID_MACTIME, info.tsft_us.map(|t| t as u32));
    push_item(&mut out, DID_CHANNEL, channel);
    push_item(&mut out, DID_RSSI, info.signal_dbm.map(|s| (i32::from(s) + 100).max(0) as u32));
    push_item(&mut out, DID_SQ, None);
    push_item(&mut out, DID_SIGNAL, info.signal_dbm.map(|s| i32::from(s) as u32));
    push_item(&mut out, DID_NOISE, info.noise_dbm.map(|n| i32::from(n) as u32));
    push_item(&mut out, DID_RATE, info.rate.map(|r| u32::from(r.to_raw())));
    push_item(&mut out, DID_ISTX, Some(0));
    push_item(&mut out, DID_FRMLEN, Some(frame_len));
    debug_assert_eq!(out.len(), PRISM_LEN);
    out
}

/// Parses a Prism header from the start of `buf`.
///
/// Returns the decoded [`RxInfo`] and the fixed header length (144). The
/// MAC time is only 32 bits wide in this format; callers needing a
/// monotonic clock should combine it with capture-record timestamps.
///
/// # Errors
///
/// [`HeaderError::Truncated`] if fewer than 144 bytes are available,
/// [`HeaderError::BadMagic`] if the message code is unknown.
pub fn parse(buf: &[u8]) -> Result<(RxInfo, usize), HeaderError> {
    if buf.len() < PRISM_LEN {
        return Err(HeaderError::Truncated { needed: PRISM_LEN, available: buf.len() });
    }
    let msgcode = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if msgcode != MSGCODE {
        return Err(HeaderError::BadMagic(msgcode));
    }

    let mut info = RxInfo::default();
    let mut off = 24;
    for _ in 0..ITEM_DIDS.len() {
        let did = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
        let status = u16::from_le_bytes([buf[off + 4], buf[off + 5]]);
        let data = u32::from_le_bytes(buf[off + 8..off + 12].try_into().expect("4 bytes"));
        off += 12;
        if status != 0 {
            continue;
        }
        match did {
            DID_MACTIME => info.tsft_us = Some(u64::from(data)),
            DID_CHANNEL
                if (1..=14).contains(&data) => {
                    info.channel_mhz = Some(RxInfo::channel_to_mhz(data as u8));
                }
            DID_SIGNAL => info.signal_dbm = Some(data as i32 as i8),
            DID_NOISE => info.noise_dbm = Some(data as i32 as i8),
            DID_RATE => info.rate = Rate::from_raw(data as u8),
            _ => {}
        }
    }
    Ok((info, PRISM_LEN))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RxFlags;

    #[test]
    fn round_trip_preserves_monitor_fields() {
        let info = RxInfo {
            tsft_us: Some(42_000_000), // < 2^32: survives the 32-bit mactime
            rate: Some(Rate::R5_5M),
            channel_mhz: Some(2437),
            signal_dbm: Some(-71),
            noise_dbm: Some(-90),
            antenna: None,
            flags: RxFlags::EMPTY,
        };
        let buf = encode(&info, 1234);
        assert_eq!(buf.len(), PRISM_LEN);
        let (parsed, len) = parse(&buf).unwrap();
        assert_eq!(len, PRISM_LEN);
        assert_eq!(parsed.tsft_us, info.tsft_us);
        assert_eq!(parsed.rate, info.rate);
        assert_eq!(parsed.channel_mhz, info.channel_mhz);
        assert_eq!(parsed.signal_dbm, info.signal_dbm);
        assert_eq!(parsed.noise_dbm, info.noise_dbm);
    }

    #[test]
    fn mactime_truncates_to_32_bits() {
        let info = RxInfo { tsft_us: Some(0x1_0000_0001), ..RxInfo::default() };
        let (parsed, _) = parse(&encode(&info, 0)).unwrap();
        assert_eq!(parsed.tsft_us, Some(1));
    }

    #[test]
    fn absent_fields_stay_absent() {
        let (parsed, _) = parse(&encode(&RxInfo::default(), 60)).unwrap();
        assert_eq!(parsed.rate, None);
        assert_eq!(parsed.channel_mhz, None);
        assert_eq!(parsed.signal_dbm, None);
        // tsft defaults present? No: absent in input stays absent.
        assert_eq!(parsed.tsft_us, None);
    }

    #[test]
    fn rejects_short_and_bad_magic() {
        assert!(matches!(parse(&[0u8; 10]), Err(HeaderError::Truncated { .. })));
        let mut buf = encode(&RxInfo::default(), 0);
        buf[0] = 0xFF;
        assert!(matches!(parse(&buf), Err(HeaderError::BadMagic(_))));
    }

    #[test]
    fn frmlen_recorded() {
        let buf = encode(&RxInfo::default(), 0xDEAD);
        // Last item is frmlen; data is the last 4 bytes.
        let data = u32::from_le_bytes(buf[PRISM_LEN - 4..].try_into().unwrap());
        assert_eq!(data, 0xDEAD);
    }

    #[test]
    fn out_of_range_channel_ignored() {
        let mut buf = encode(
            &RxInfo { channel_mhz: Some(2437), ..RxInfo::default() },
            0,
        );
        // Patch the channel item's data (item 2 => offset 24 + 2*12 + 8).
        let off = 24 + 2 * 12 + 8;
        buf[off..off + 4].copy_from_slice(&100u32.to_le_bytes());
        let (parsed, _) = parse(&buf).unwrap();
        assert_eq!(parsed.channel_mhz, None);
    }
}
