//! Radiotap header (version 0) encoding and parsing.
//!
//! Format reference: <http://www.radiotap.org/>. The header is:
//!
//! ```text
//! u8  it_version   (0)
//! u8  it_pad
//! u16 it_len       (total header length, little endian)
//! u32 it_present   (presence bitmap; bit 31 chains another bitmap word)
//! ... fields in bit order, each naturally aligned from header start ...
//! ```
//!
//! This module encodes the fields a passive monitor cares about (TSFT,
//! Flags, Rate, Channel, antenna signal/noise, antenna index, RX flags) and
//! parses headers containing any subset of the first 15 standard fields,
//! skipping unknown trailing content via `it_len`.

use wifiprint_ieee80211::Rate;

use crate::{HeaderError, RxFlags, RxInfo};

/// Presence-bit numbers from the Radiotap standard field table.
pub mod bit {
    /// TSFT: u64 MAC time in µs (alignment 8).
    pub const TSFT: u32 = 0;
    /// Flags: u8.
    pub const FLAGS: u32 = 1;
    /// Rate: u8 in 500 kb/s units.
    pub const RATE: u32 = 2;
    /// Channel: u16 frequency (MHz) + u16 flags (alignment 2).
    pub const CHANNEL: u32 = 3;
    /// FHSS: u16.
    pub const FHSS: u32 = 4;
    /// Antenna signal: i8 dBm.
    pub const ANT_SIGNAL: u32 = 5;
    /// Antenna noise: i8 dBm.
    pub const ANT_NOISE: u32 = 6;
    /// Lock quality: u16.
    pub const LOCK_QUALITY: u32 = 7;
    /// TX attenuation: u16.
    pub const TX_ATTENUATION: u32 = 8;
    /// TX attenuation in dB: u16.
    pub const DB_TX_ATTENUATION: u32 = 9;
    /// TX power: i8 dBm.
    pub const DBM_TX_POWER: u32 = 10;
    /// Antenna index: u8.
    pub const ANTENNA: u32 = 11;
    /// Antenna signal in dB: u8.
    pub const DB_ANT_SIGNAL: u32 = 12;
    /// Antenna noise in dB: u8.
    pub const DB_ANT_NOISE: u32 = 13;
    /// RX flags: u16.
    pub const RX_FLAGS: u32 = 14;
    /// Bitmap extension marker.
    pub const EXT: u32 = 31;
}

/// Channel-flags bit for the 2.4 GHz band.
pub const CHAN_2GHZ: u16 = 0x0080;
/// Channel-flags bit for OFDM modulation.
pub const CHAN_OFDM: u16 = 0x0040;
/// Channel-flags bit for CCK modulation.
pub const CHAN_CCK: u16 = 0x0020;

fn align_to(offset: usize, align: usize) -> usize {
    // Every radiotap field alignment is a power of two (1, 2, 4 or 8);
    // the mask form avoids a hardware division in the per-record decode.
    debug_assert!(align.is_power_of_two());
    (offset + align - 1) & !(align - 1)
}

/// Encodes `info` as a Radiotap header.
#[must_use] 
pub fn encode(info: &RxInfo) -> Vec<u8> {
    let mut present: u32 = 0;
    // Body is assembled relative to offset 8 (after the fixed header +
    // one present word); alignment is relative to the header start.
    let mut body = Vec::with_capacity(24);
    let base = 8usize;

    let put = |body: &mut Vec<u8>, align: usize, bytes: &[u8]| {
        let pos = align_to(base + body.len(), align);
        body.resize(pos - base, 0);
        body.extend_from_slice(bytes);
    };

    if let Some(tsft) = info.tsft_us {
        present |= 1 << bit::TSFT;
        put(&mut body, 8, &tsft.to_le_bytes());
    }
    present |= 1 << bit::FLAGS;
    put(&mut body, 1, &[info.flags.to_raw()]);
    if let Some(rate) = info.rate {
        present |= 1 << bit::RATE;
        put(&mut body, 1, &[rate.to_raw()]);
    }
    if let Some(mhz) = info.channel_mhz {
        present |= 1 << bit::CHANNEL;
        let chan_flags = CHAN_2GHZ
            | match info.rate.map(wifiprint_ieee80211::Rate::modulation) {
                Some(wifiprint_ieee80211::Modulation::Ofdm) => CHAN_OFDM,
                _ => CHAN_CCK,
            };
        let mut chan = [0u8; 4];
        chan[..2].copy_from_slice(&mhz.to_le_bytes());
        chan[2..].copy_from_slice(&chan_flags.to_le_bytes());
        put(&mut body, 2, &chan);
    }
    if let Some(signal) = info.signal_dbm {
        present |= 1 << bit::ANT_SIGNAL;
        put(&mut body, 1, &[signal as u8]);
    }
    if let Some(noise) = info.noise_dbm {
        present |= 1 << bit::ANT_NOISE;
        put(&mut body, 1, &[noise as u8]);
    }
    if let Some(ant) = info.antenna {
        present |= 1 << bit::ANTENNA;
        put(&mut body, 1, &[ant]);
    }

    let total_len = 8 + body.len();
    let mut out = Vec::with_capacity(total_len);
    out.push(0); // it_version
    out.push(0); // it_pad
    out.extend_from_slice(&(total_len as u16).to_le_bytes());
    out.extend_from_slice(&present.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Parses a Radiotap header from the start of `buf`.
///
/// Returns the decoded [`RxInfo`] and the header length (`it_len`), i.e.
/// the offset at which the 802.11 frame begins.
///
/// Fields beyond the first present word (bit 31 chained bitmaps) are
/// vendor/extension content; field decoding stops there but `it_len` still
/// positions the payload correctly.
///
/// # Errors
///
/// [`HeaderError::Truncated`] if `buf` is shorter than `it_len` or 8 bytes;
/// [`HeaderError::BadVersion`] for a nonzero version byte;
/// [`HeaderError::BadLength`] if `it_len` is smaller than the fixed header.
#[inline]
pub fn parse(buf: &[u8]) -> Result<(RxInfo, usize), HeaderError> {
    if buf.len() < 8 {
        return Err(HeaderError::Truncated { needed: 8, available: buf.len() });
    }
    if buf[0] != 0 {
        return Err(HeaderError::BadVersion(buf[0]));
    }
    let it_len = u16::from_le_bytes([buf[2], buf[3]]) as usize;
    if it_len < 8 {
        return Err(HeaderError::BadLength(it_len));
    }
    if buf.len() < it_len {
        return Err(HeaderError::Truncated { needed: it_len, available: buf.len() });
    }

    // Walk the chained present words. Only the first word's standard
    // fields are decoded — extension words describe vendor namespaces
    // whose sizes we cannot know — so nothing is collected, which keeps
    // this parse allocation-free (the replay hot path depends on that).
    let mut present = 0u32;
    let mut is_first = true;
    let mut off = 4;
    loop {
        if off + 4 > it_len {
            return Err(HeaderError::BadLength(it_len));
        }
        let word = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
        if is_first {
            present = word;
            is_first = false;
        }
        off += 4;
        if word & (1 << bit::EXT) == 0 {
            break;
        }
    }

    let mut info = RxInfo::default();
    let take = |off: &mut usize, align: usize, size: usize| -> Option<usize> {
        let pos = align_to(*off, align);
        if pos + size > it_len {
            return None;
        }
        *off = pos + size;
        Some(pos)
    };

    // Visit only the set bits, lowest first (radiotap field order). One
    // match per field does both the align/size step and the store — this
    // loop runs per captured record, so every branch counts.
    let mut remaining = present & ((1u32 << (bit::RX_FLAGS + 1)) - 1);
    while remaining != 0 {
        let bit_idx = remaining.trailing_zeros();
        remaining &= remaining - 1;
        match bit_idx {
            bit::TSFT => {
                let Some(pos) = take(&mut off, 8, 8) else { break };
                info.tsft_us =
                    Some(u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes")));
            }
            bit::FLAGS => {
                let Some(pos) = take(&mut off, 1, 1) else { break };
                info.flags = RxFlags::from_raw(buf[pos]);
            }
            bit::RATE => {
                let Some(pos) = take(&mut off, 1, 1) else { break };
                info.rate = Rate::from_raw(buf[pos]);
            }
            bit::CHANNEL => {
                let Some(pos) = take(&mut off, 2, 4) else { break };
                info.channel_mhz = Some(u16::from_le_bytes([buf[pos], buf[pos + 1]]));
            }
            bit::ANT_SIGNAL => {
                let Some(pos) = take(&mut off, 1, 1) else { break };
                info.signal_dbm = Some(buf[pos] as i8);
            }
            bit::ANT_NOISE => {
                let Some(pos) = take(&mut off, 1, 1) else { break };
                info.noise_dbm = Some(buf[pos] as i8);
            }
            bit::ANTENNA => {
                let Some(pos) = take(&mut off, 1, 1) else { break };
                info.antenna = Some(buf[pos]);
            }
            // Known-size fields we expose nothing from: step over them
            // so later fields stay correctly positioned.
            bit::DBM_TX_POWER | bit::DB_ANT_SIGNAL | bit::DB_ANT_NOISE => {
                if take(&mut off, 1, 1).is_none() {
                    break;
                }
            }
            _ => {
                // FHSS, lock quality, TX attenuations, RX flags: u16 @ 2.
                if take(&mut off, 2, 2).is_none() {
                    break;
                }
            }
        }
    }

    Ok((info, it_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_info() -> RxInfo {
        RxInfo {
            tsft_us: Some(123_456_789_012),
            rate: Some(Rate::R11M),
            channel_mhz: Some(2437),
            signal_dbm: Some(-60),
            noise_dbm: Some(-92),
            antenna: Some(1),
            flags: RxFlags::FCS_INCLUDED | RxFlags::SHORT_PREAMBLE,
        }
    }

    #[test]
    fn full_header_round_trip() {
        let info = full_info();
        let buf = encode(&info);
        let (parsed, len) = parse(&buf).unwrap();
        assert_eq!(len, buf.len());
        assert_eq!(parsed, info);
    }

    #[test]
    fn minimal_header_round_trip() {
        let info = RxInfo::default();
        let buf = encode(&info);
        // version, pad, len, present(FLAGS), flags byte => 9 bytes.
        assert_eq!(buf.len(), 9);
        let (parsed, len) = parse(&buf).unwrap();
        assert_eq!(len, 9);
        assert_eq!(parsed, info);
    }

    #[test]
    fn tsft_is_eight_byte_aligned() {
        let info = full_info();
        let buf = encode(&info);
        // Header start: 8 bytes fixed; TSFT must begin at offset 8.
        let tsft = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        assert_eq!(tsft, 123_456_789_012);
    }

    #[test]
    fn channel_is_two_byte_aligned_after_odd_fields() {
        // With TSFT absent and flags+rate (2 odd bytes) present, the channel
        // field must be padded to an even offset.
        let info = RxInfo {
            rate: Some(Rate::R54M),
            channel_mhz: Some(2412),
            ..RxInfo::default()
        };
        let buf = encode(&info);
        let (parsed, _) = parse(&buf).unwrap();
        assert_eq!(parsed.channel_mhz, Some(2412));
        assert_eq!(parsed.rate, Some(Rate::R54M));
        // flags at 8, rate at 9, channel at 10 (already even).
        assert_eq!(u16::from_le_bytes([buf[10], buf[11]]), 2412);
    }

    #[test]
    fn channel_flags_reflect_modulation() {
        let ofdm = encode(&RxInfo {
            rate: Some(Rate::R54M),
            channel_mhz: Some(2437),
            ..RxInfo::default()
        });
        let (_, len) = parse(&ofdm).unwrap();
        let flags = u16::from_le_bytes([ofdm[len - 2], ofdm[len - 1]]);
        assert_ne!(flags & CHAN_OFDM, 0);
        assert_ne!(flags & CHAN_2GHZ, 0);

        let cck = encode(&RxInfo {
            rate: Some(Rate::R11M),
            channel_mhz: Some(2437),
            ..RxInfo::default()
        });
        let (_, len) = parse(&cck).unwrap();
        let flags = u16::from_le_bytes([cck[len - 2], cck[len - 1]]);
        assert_ne!(flags & CHAN_CCK, 0);
    }

    #[test]
    fn rejects_bad_version_and_truncation() {
        let mut buf = encode(&full_info());
        buf[0] = 1;
        assert_eq!(parse(&buf), Err(HeaderError::BadVersion(1)));
        buf[0] = 0;
        assert!(matches!(parse(&buf[..5]), Err(HeaderError::Truncated { .. })));
        let short_len = {
            let mut b = buf.clone();
            b[2] = 4; // it_len < 8
            b[3] = 0;
            b
        };
        assert_eq!(parse(&short_len), Err(HeaderError::BadLength(4)));
    }

    #[test]
    fn truncated_to_it_len_rejected() {
        let buf = encode(&full_info());
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(parse(cut), Err(HeaderError::Truncated { .. })));
    }

    #[test]
    fn skips_unknown_intermediate_fields() {
        // Hand-build a header with FHSS (bit 4, 2 bytes) we don't expose +
        // antenna signal after it; the parser must skip FHSS correctly.
        let mut buf = vec![0u8, 0, 0, 0];
        let present: u32 = (1 << bit::FHSS) | (1 << bit::ANT_SIGNAL);
        buf.extend_from_slice(&present.to_le_bytes());
        buf.extend_from_slice(&[0xAA, 0xBB]); // FHSS @8..10
        buf.push((-55i8) as u8); // signal @10
        let len = buf.len() as u16;
        buf[2..4].copy_from_slice(&len.to_le_bytes());
        let (info, _) = parse(&buf).unwrap();
        assert_eq!(info.signal_dbm, Some(-55));
    }

    #[test]
    fn chained_present_words_position_payload() {
        // present word 0 with EXT bit + an empty vendor word; flags field.
        let mut buf = vec![0u8, 0, 0, 0];
        let w0: u32 = (1 << bit::FLAGS) | (1 << bit::EXT);
        let w1: u32 = 0;
        buf.extend_from_slice(&w0.to_le_bytes());
        buf.extend_from_slice(&w1.to_le_bytes());
        buf.push(0x10);
        let len = buf.len() as u16;
        buf[2..4].copy_from_slice(&len.to_le_bytes());
        let (info, hdr_len) = parse(&buf).unwrap();
        assert_eq!(hdr_len, buf.len());
        assert_eq!(info.flags, RxFlags::FCS_INCLUDED);
    }

    #[test]
    fn runaway_ext_chain_rejected() {
        // A present word with EXT set but it_len too small for another word.
        let mut buf = vec![0u8, 0, 8, 0];
        let w0: u32 = 1 << bit::EXT;
        buf.extend_from_slice(&w0.to_le_bytes());
        assert_eq!(parse(&buf), Err(HeaderError::BadLength(8)));
    }
}
