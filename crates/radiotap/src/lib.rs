//! Radiotap and Prism capture-header codecs for the wifiprint suite.
//!
//! A passive 802.11 monitor receives each frame prefixed with a
//! driver-generated metadata header. The paper's method reads **only** this
//! metadata (plus MAC addresses/types): reception timestamp, rate, size and
//! channel. Two header formats were in common use at the time and both are
//! supported here:
//!
//! * **Radiotap** ([`radiotap`]) — the de-facto standard, a TLV-ish format
//!   with a presence bitmap and naturally-aligned fields,
//! * **Prism** ([`prism`]) — the older fixed-size 144-byte wlan-ng header.
//!
//! The unified [`RxInfo`] type carries the monitor-side metadata and
//! converts to/from both formats.
//!
//! # Example
//!
//! ```
//! use wifiprint_radiotap::{RxInfo, RxFlags};
//! use wifiprint_ieee80211::Rate;
//!
//! let info = RxInfo {
//!     tsft_us: Some(1_000_042),
//!     rate: Some(Rate::R54M),
//!     channel_mhz: Some(2437),
//!     signal_dbm: Some(-47),
//!     noise_dbm: Some(-95),
//!     antenna: Some(0),
//!     flags: RxFlags::FCS_INCLUDED,
//! };
//! let header = info.to_radiotap();
//! let (parsed, hdr_len) = RxInfo::from_radiotap(&header)?;
//! assert_eq!(hdr_len, header.len());
//! assert_eq!(parsed, info);
//! # Ok::<(), wifiprint_radiotap::HeaderError>(())
//! ```
//!
//! # Real-capture replay
//!
//! [`CapturedFrame`] is the interchange type between raw capture bytes and
//! the fingerprinting engines, and its packet decoders are the zero-copy
//! hot path of that pipeline: [`CapturedFrame::from_radiotap_packet`] /
//! [`CapturedFrame::from_prism_packet`] read a whole monitor-mode packet
//! (capture header + 802.11 frame) through the borrowed
//! [`WireFrame`](wifiprint_ieee80211::WireFrame) view — pure header
//! arithmetic over the input slice, no frame body copy, no heap
//! allocation. Missing metadata (rate, signal, TSFT) falls back to
//! defaults, and the `_counted` variants report which fields were
//! defaulted ([`DefaultedFields`]) so a replay can account for capture
//! quality. The `wifiprint-pcap` crate's `Replay` drives whole capture
//! files through these decoders into an engine; see its "Real-capture
//! replay" docs for the end-to-end example.
//!
//! ```
//! use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
//! use wifiprint_radiotap::{CapturedFrame, RxFlags, RxInfo};
//!
//! # fn main() -> Result<(), wifiprint_radiotap::DecodeError> {
//! let sta = MacAddr::from_index(1);
//! let ap = MacAddr::from_index(2);
//! let info = RxInfo {
//!     tsft_us: Some(1_000),
//!     rate: Some(Rate::R54M),
//!     signal_dbm: Some(-47),
//!     flags: RxFlags::FCS_INCLUDED,
//!     ..RxInfo::default()
//! };
//! let mut packet = info.to_radiotap();
//! packet.extend_from_slice(&Frame::data_to_ds(sta, ap, ap, 100).to_bytes());
//!
//! let frame = CapturedFrame::from_radiotap_packet(&packet, Nanos::ZERO)?;
//! assert_eq!(frame.transmitter, Some(sta));
//! assert_eq!(frame.rate, Rate::R54M);
//! assert_eq!(frame.signal_dbm, -47);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::pedantic)]
// Pedantic lints this crate opts out of, mirroring wifiprint-core:
#![allow(
    // Header codecs narrow into fixed-width wire fields and reinterpret
    // sign bytes (dBm values travel as raw u8) by design.
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap,
    // The flagged `expect`s are fixed-size slice conversions
    // (`[u8; N]` from a length-checked slice) that cannot fail.
    clippy::missing_panics_doc,
    // Getter-heavy API: #[must_use] on every accessor is noise.
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    // Public items are re-exported from the crate root, so
    // module-qualified names repeat the module name.
    clippy::module_name_repetitions,
    // Capture-format jargon (wlan-ng, TSFT, …) trips the identifier
    // heuristic on prose that is not code.
    clippy::doc_markdown
)]

pub mod captured;
pub mod prism;
pub mod radiotap;

use core::fmt;

use wifiprint_ieee80211::Rate;

pub use captured::{CapturedFrame, DecodeError, DefaultedFields};

/// Flags describing how a frame was received (subset of Radiotap's `Flags`
/// field relevant to passive fingerprinting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RxFlags(u8);

impl RxFlags {
    /// No flags set.
    pub const EMPTY: RxFlags = RxFlags(0);
    /// Frame was sent with a short DSSS preamble.
    pub const SHORT_PREAMBLE: RxFlags = RxFlags(0x02);
    /// The captured bytes include the trailing FCS.
    pub const FCS_INCLUDED: RxFlags = RxFlags(0x10);
    /// The frame failed its FCS check.
    pub const BAD_FCS: RxFlags = RxFlags(0x40);

    /// Creates flags from the raw Radiotap `Flags` byte.
    #[must_use] 
    pub const fn from_raw(raw: u8) -> RxFlags {
        RxFlags(raw)
    }

    /// The raw Radiotap `Flags` byte.
    #[must_use] 
    pub const fn to_raw(self) -> u8 {
        self.0
    }

    /// `true` if every flag in `other` is set in `self`.
    #[must_use] 
    pub const fn contains(self, other: RxFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    #[must_use]
    pub const fn union(self, other: RxFlags) -> RxFlags {
        RxFlags(self.0 | other.0)
    }
}

impl core::ops::BitOr for RxFlags {
    type Output = RxFlags;
    fn bitor(self, rhs: RxFlags) -> RxFlags {
        self.union(rhs)
    }
}

impl fmt::Display for RxFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(RxFlags::SHORT_PREAMBLE) {
            parts.push("short-preamble");
        }
        if self.contains(RxFlags::FCS_INCLUDED) {
            parts.push("fcs");
        }
        if self.contains(RxFlags::BAD_FCS) {
            parts.push("bad-fcs");
        }
        if parts.is_empty() {
            f.write_str("(none)")
        } else {
            f.write_str(&parts.join("+"))
        }
    }
}

/// Monitor-side reception metadata for one captured frame.
///
/// Every field the paper's five network parameters need is here: the
/// **end-of-reception timestamp** (`tsft_us`, the MAC time in microseconds),
/// the **rate**, and the channel/signal context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RxInfo {
    /// MAC timestamp (TSFT): microseconds, end of reception of the frame.
    pub tsft_us: Option<u64>,
    /// PHY rate the frame was received at.
    pub rate: Option<Rate>,
    /// Channel centre frequency in MHz.
    pub channel_mhz: Option<u16>,
    /// RF signal power at the antenna, dBm.
    pub signal_dbm: Option<i8>,
    /// RF noise power at the antenna, dBm.
    pub noise_dbm: Option<i8>,
    /// Antenna index.
    pub antenna: Option<u8>,
    /// Reception flags.
    pub flags: RxFlags,
}

impl RxInfo {
    /// Encodes as a Radiotap header (version 0).
    #[must_use] 
    pub fn to_radiotap(&self) -> Vec<u8> {
        radiotap::encode(self)
    }

    /// Parses a Radiotap header, returning the metadata and the total
    /// header length (the 802.11 frame starts at that offset).
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError`] if the buffer is too short, the version is
    /// unsupported, or the declared length is inconsistent.
    #[inline]
    pub fn from_radiotap(buf: &[u8]) -> Result<(RxInfo, usize), HeaderError> {
        radiotap::parse(buf)
    }

    /// Encodes as a 144-byte Prism (wlan-ng) header.
    #[must_use] 
    pub fn to_prism(&self, frame_len: u32) -> Vec<u8> {
        prism::encode(self, frame_len)
    }

    /// Parses a Prism (wlan-ng) header, returning the metadata and the
    /// fixed header length (144).
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError`] if the buffer is too short or the message
    /// code is not the wlan-ng monitor code.
    #[inline]
    pub fn from_prism(buf: &[u8]) -> Result<(RxInfo, usize), HeaderError> {
        prism::parse(buf)
    }

    /// Converts a 2.4 GHz channel number (1–14) to its centre frequency.
    #[must_use] 
    pub fn channel_to_mhz(channel: u8) -> u16 {
        match channel {
            14 => 2484,
            c => 2407 + 5 * u16::from(c),
        }
    }

    /// Converts a 2.4 GHz centre frequency back to its channel number,
    /// if it is one.
    #[must_use] 
    pub fn mhz_to_channel(mhz: u16) -> Option<u8> {
        match mhz {
            2484 => Some(14),
            2412..=2472 if (mhz - 2407).is_multiple_of(5) => Some(((mhz - 2407) / 5) as u8),
            _ => None,
        }
    }
}

/// Error type for capture-header parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// Buffer ended before the header was complete.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// Radiotap version byte was not 0.
    BadVersion(u8),
    /// The header's declared length is impossible.
    BadLength(usize),
    /// Prism message code was not the wlan-ng monitor code.
    BadMagic(u32),
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Truncated { needed, available } => {
                write!(f, "capture header truncated: needed {needed} bytes, got {available}")
            }
            HeaderError::BadVersion(v) => write!(f, "unsupported radiotap version {v}"),
            HeaderError::BadLength(l) => write!(f, "inconsistent header length {l}"),
            HeaderError::BadMagic(m) => write!(f, "unexpected prism message code {m:#010x}"),
        }
    }
}

impl std::error::Error for HeaderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_algebra() {
        let f = RxFlags::SHORT_PREAMBLE | RxFlags::FCS_INCLUDED;
        assert!(f.contains(RxFlags::SHORT_PREAMBLE));
        assert!(f.contains(RxFlags::FCS_INCLUDED));
        assert!(!f.contains(RxFlags::BAD_FCS));
        assert_eq!(f.to_raw(), 0x12);
        assert_eq!(RxFlags::from_raw(0x12), f);
        assert_eq!(f.to_string(), "short-preamble+fcs");
        assert_eq!(RxFlags::EMPTY.to_string(), "(none)");
    }

    #[test]
    fn channel_frequency_mapping() {
        assert_eq!(RxInfo::channel_to_mhz(1), 2412);
        assert_eq!(RxInfo::channel_to_mhz(6), 2437);
        assert_eq!(RxInfo::channel_to_mhz(11), 2462);
        assert_eq!(RxInfo::channel_to_mhz(14), 2484);
        for ch in 1..=14u8 {
            assert_eq!(RxInfo::mhz_to_channel(RxInfo::channel_to_mhz(ch)), Some(ch));
        }
        assert_eq!(RxInfo::mhz_to_channel(5180), None);
        assert_eq!(RxInfo::mhz_to_channel(2413), None);
    }
}
