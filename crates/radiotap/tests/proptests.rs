//! Property tests for the capture-header codecs.

use proptest::prelude::*;
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
use wifiprint_radiotap::{CapturedFrame, DecodeError, RxFlags, RxInfo};

fn arb_info() -> impl Strategy<Value = RxInfo> {
    (
        prop::option::of(any::<u64>()),
        prop::option::of(prop::sample::select(Rate::ALL_BG.to_vec())),
        prop::option::of(1u8..=14),
        prop::option::of(any::<i8>()),
        prop::option::of(any::<i8>()),
        prop::option::of(any::<u8>()),
        any::<u8>(),
    )
        .prop_map(|(tsft, rate, chan, signal, noise, antenna, flags)| RxInfo {
            tsft_us: tsft,
            rate,
            channel_mhz: chan.map(RxInfo::channel_to_mhz),
            signal_dbm: signal,
            noise_dbm: noise,
            antenna,
            flags: RxFlags::from_raw(flags),
        })
}

proptest! {
    #[test]
    fn radiotap_round_trip(info in arb_info()) {
        let buf = info.to_radiotap();
        let (parsed, len) = RxInfo::from_radiotap(&buf).unwrap();
        prop_assert_eq!(len, buf.len());
        prop_assert_eq!(parsed, info);
    }

    #[test]
    fn radiotap_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = RxInfo::from_radiotap(&bytes);
    }

    #[test]
    fn prism_round_trip_of_monitor_fields(info in arb_info()) {
        let buf = info.to_prism(1500);
        let (parsed, len) = RxInfo::from_prism(&buf).unwrap();
        prop_assert_eq!(len, 144);
        prop_assert_eq!(parsed.tsft_us, info.tsft_us.map(|t| t & 0xFFFF_FFFF));
        prop_assert_eq!(parsed.rate, info.rate);
        prop_assert_eq!(parsed.channel_mhz, info.channel_mhz);
        prop_assert_eq!(parsed.signal_dbm, info.signal_dbm);
        prop_assert_eq!(parsed.noise_dbm, info.noise_dbm);
    }

    #[test]
    fn prism_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = RxInfo::from_prism(&bytes);
    }

    #[test]
    fn radiotap_header_parses_with_trailing_frame(info in arb_info(), frame in prop::collection::vec(any::<u8>(), 0..100)) {
        // A header followed by frame bytes must yield the same info and point
        // at the frame start.
        let mut buf = info.to_radiotap();
        let hdr_len = buf.len();
        buf.extend_from_slice(&frame);
        let (parsed, len) = RxInfo::from_radiotap(&buf).unwrap();
        prop_assert_eq!(len, hdr_len);
        prop_assert_eq!(parsed, info);
        prop_assert_eq!(&buf[len..], &frame[..]);
    }
}

/// A small pool of valid frames, one per wire layout.
fn mk_frame(pick: usize, len: usize) -> Frame {
    let a = MacAddr::from_index(1);
    let b = MacAddr::from_index(2);
    match pick % 4 {
        0 => Frame::ack(a),
        1 => Frame::rts(a, b, 44),
        2 => Frame::beacon(a, vec![7; len]),
        _ => Frame::data_to_ds(a, b, b, len),
    }
}

/// Exhaustively matching the error proves every decode failure surfaces
/// as a typed [`DecodeError`] — and the call itself proves no panic.
fn assert_total(result: Result<CapturedFrame, DecodeError>) {
    match result {
        Ok(_) | Err(DecodeError::Header(_)) | Err(DecodeError::Frame(_)) => {}
    }
}

proptest! {
    // Satellite: arbitrary truncations of valid radiotap packets never
    // panic anywhere in the WireFrame/RxInfo/CapturedFrame decode stack.
    #[test]
    fn truncated_radiotap_packets_never_panic(
        info in arb_info(),
        pick in 0usize..4,
        len in 0usize..200,
        cut_seed in any::<u64>(),
    ) {
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&mk_frame(pick, len).to_bytes());
        let cut = (cut_seed as usize) % (packet.len() + 1);
        assert_total(CapturedFrame::from_radiotap_packet(&packet[..cut], Nanos::ZERO));
    }

    // Satellite: arbitrary single-byte mutations never panic either —
    // a flipped presence bitmap or frame-control word is survivable.
    #[test]
    fn mutated_radiotap_packets_never_panic(
        info in arb_info(),
        pick in 0usize..4,
        len in 0usize..200,
        idx_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&mk_frame(pick, len).to_bytes());
        let idx = (idx_seed as usize) % packet.len();
        packet[idx] ^= xor;
        assert_total(CapturedFrame::from_radiotap_packet(&packet, Nanos::ZERO));
        let counted = CapturedFrame::from_radiotap_packet_counted(&packet, Nanos::ZERO);
        assert_total(counted.map(|(cap, _)| cap));
    }

    #[test]
    fn truncated_prism_packets_never_panic(
        info in arb_info(),
        pick in 0usize..4,
        len in 0usize..200,
        cut_seed in any::<u64>(),
    ) {
        let frame_bytes = mk_frame(pick, len).to_bytes();
        let mut packet = info.to_prism(frame_bytes.len() as u32);
        packet.extend_from_slice(&frame_bytes);
        let cut = (cut_seed as usize) % (packet.len() + 1);
        assert_total(CapturedFrame::from_prism_packet(&packet[..cut], Nanos::ZERO));
    }

    #[test]
    fn mutated_prism_packets_never_panic(
        info in arb_info(),
        pick in 0usize..4,
        len in 0usize..200,
        idx_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let frame_bytes = mk_frame(pick, len).to_bytes();
        let mut packet = info.to_prism(frame_bytes.len() as u32);
        packet.extend_from_slice(&frame_bytes);
        let idx = (idx_seed as usize) % packet.len();
        packet[idx] ^= xor;
        assert_total(CapturedFrame::from_prism_packet(&packet, Nanos::ZERO));
        let counted = CapturedFrame::from_prism_packet_counted(&packet, Nanos::ZERO);
        assert_total(counted.map(|(cap, _)| cap));
    }

    // Pure garbage front to back.
    #[test]
    fn garbage_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        assert_total(CapturedFrame::from_radiotap_packet(&bytes, Nanos::ZERO));
        assert_total(CapturedFrame::from_prism_packet(&bytes, Nanos::ZERO));
    }
}
