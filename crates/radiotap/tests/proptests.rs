//! Property tests for the capture-header codecs.

use proptest::prelude::*;
use wifiprint_ieee80211::Rate;
use wifiprint_radiotap::{RxFlags, RxInfo};

fn arb_info() -> impl Strategy<Value = RxInfo> {
    (
        prop::option::of(any::<u64>()),
        prop::option::of(prop::sample::select(Rate::ALL_BG.to_vec())),
        prop::option::of(1u8..=14),
        prop::option::of(any::<i8>()),
        prop::option::of(any::<i8>()),
        prop::option::of(any::<u8>()),
        any::<u8>(),
    )
        .prop_map(|(tsft, rate, chan, signal, noise, antenna, flags)| RxInfo {
            tsft_us: tsft,
            rate,
            channel_mhz: chan.map(RxInfo::channel_to_mhz),
            signal_dbm: signal,
            noise_dbm: noise,
            antenna,
            flags: RxFlags::from_raw(flags),
        })
}

proptest! {
    #[test]
    fn radiotap_round_trip(info in arb_info()) {
        let buf = info.to_radiotap();
        let (parsed, len) = RxInfo::from_radiotap(&buf).unwrap();
        prop_assert_eq!(len, buf.len());
        prop_assert_eq!(parsed, info);
    }

    #[test]
    fn radiotap_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = RxInfo::from_radiotap(&bytes);
    }

    #[test]
    fn prism_round_trip_of_monitor_fields(info in arb_info()) {
        let buf = info.to_prism(1500);
        let (parsed, len) = RxInfo::from_prism(&buf).unwrap();
        prop_assert_eq!(len, 144);
        prop_assert_eq!(parsed.tsft_us, info.tsft_us.map(|t| t & 0xFFFF_FFFF));
        prop_assert_eq!(parsed.rate, info.rate);
        prop_assert_eq!(parsed.channel_mhz, info.channel_mhz);
        prop_assert_eq!(parsed.signal_dbm, info.signal_dbm);
        prop_assert_eq!(parsed.noise_dbm, info.noise_dbm);
    }

    #[test]
    fn prism_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = RxInfo::from_prism(&bytes);
    }

    #[test]
    fn radiotap_header_parses_with_trailing_frame(info in arb_info(), frame in prop::collection::vec(any::<u8>(), 0..100)) {
        // A header followed by frame bytes must yield the same info and point
        // at the frame start.
        let mut buf = info.to_radiotap();
        let hdr_len = buf.len();
        buf.extend_from_slice(&frame);
        let (parsed, len) = RxInfo::from_radiotap(&buf).unwrap();
        prop_assert_eq!(len, hdr_len);
        prop_assert_eq!(parsed, info);
        prop_assert_eq!(&buf[len..], &frame[..]);
    }
}
