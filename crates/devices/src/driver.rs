//! Driver models: rate adaptation, RTS policy, probe-scanning cadence.
//!
//! Franklin et al. (2006), cited by the paper, fingerprinted drivers from
//! their probe-request timing because the scanning algorithm is
//! underspecified by the standard; each driver preset here has its own
//! cadence. Drivers also choose the rate-adaptation algorithm and the RTS
//! threshold policy (§VI-A2: some expose it, some hard-code it, some never
//! use RTS at all).

use wifiprint_ieee80211::{Nanos, Rate};
use wifiprint_netsim::{Arf, FixedRate, RateController, SnrSticky};

use crate::rng::InstanceRng;

/// The rate-adaptation algorithm a driver runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateAlgo {
    /// ARF: up after `up` successes, down after `down` failures.
    ArfLike {
        /// Consecutive successes before stepping up.
        up: u32,
        /// Consecutive failures before stepping down.
        down: u32,
    },
    /// SNR-driven with a hysteresis margin in dB (rate follows location).
    SnrDriven {
        /// Extra SNR (dB) required beyond the decode threshold.
        margin_db: f64,
    },
    /// Fixed at the highest supported rate.
    FixedTop,
    /// Fixed at a specific rate.
    FixedAt(
        /// The pinned rate.
        Rate,
    ),
}

impl RateAlgo {
    /// Builds the simulator rate controller over the card's `rate_set`.
    pub fn controller(&self, rate_set: &[Rate]) -> Box<dyn RateController> {
        let mut rates = rate_set.to_vec();
        rates.sort();
        match *self {
            RateAlgo::ArfLike { up, down } => Box::new(Arf::new(rates, up, down)),
            RateAlgo::SnrDriven { margin_db } => Box::new(SnrSticky::new(rates, margin_db)),
            RateAlgo::FixedTop => {
                Box::new(FixedRate(rates.last().copied().unwrap_or(Rate::R1M)))
            }
            RateAlgo::FixedAt(rate) => Box::new(FixedRate(rate.clamp_to_set(&rates))),
        }
    }
}

/// Probe-request scanning cadence (driver-specific, after Franklin et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbePolicy {
    /// Scan period.
    pub period: Nanos,
    /// Probes per burst.
    pub burst: u32,
    /// Probe body size (SSID + supported-rates elements).
    pub payload: usize,
    /// Period jitter.
    pub jitter: Nanos,
}

/// A driver model.
#[derive(Debug, Clone, PartialEq)]
pub struct Driver {
    /// Identifier used in docs and reports.
    pub name: &'static str,
    /// Rate-adaptation algorithm.
    pub rate_algo: RateAlgo,
    /// RTS threshold in bytes; `None` = virtual carrier sensing disabled.
    pub rts_threshold: Option<usize>,
    /// Retry limit.
    pub retry_limit: u32,
    /// Probe-scanning behaviour; `None` = never scans while associated.
    pub probe: Option<ProbePolicy>,
    /// Clock-skew range (ppm) from which each device instance draws.
    pub skew_range_ppm: (f64, f64),
}

impl Driver {
    /// Draws a per-instance clock skew.
    pub fn draw_skew_ppm(&self, rng: &mut InstanceRng) -> f64 {
        let (lo, hi) = self.skew_range_ppm;
        lo + rng.f64() * (hi - lo)
    }
}

/// The driver catalogue: six scanning/rate personalities.
pub fn driver_catalog() -> Vec<Driver> {
    vec![
        Driver {
            name: "opendrv",
            rate_algo: RateAlgo::ArfLike { up: 8, down: 2 },
            rts_threshold: None,
            retry_limit: 7,
            probe: Some(ProbePolicy {
                period: Nanos::from_secs(60),
                burst: 2,
                payload: 58,
                jitter: Nanos::from_secs(4),
            }),
            skew_range_ppm: (-35.0, 35.0),
        },
        Driver {
            name: "vendahl",
            rate_algo: RateAlgo::SnrDriven { margin_db: 3.0 },
            rts_threshold: Some(2347), // default-off via the max threshold
            retry_limit: 7,
            probe: Some(ProbePolicy {
                period: Nanos::from_secs(120),
                burst: 3,
                payload: 72,
                jitter: Nanos::from_secs(10),
            }),
            skew_range_ppm: (-20.0, 20.0),
        },
        Driver {
            name: "turbonet",
            rate_algo: RateAlgo::SnrDriven { margin_db: 5.5 },
            rts_threshold: Some(1000), // hard-coded aggressive RTS
            retry_limit: 4,
            probe: Some(ProbePolicy {
                period: Nanos::from_secs(30),
                burst: 1,
                payload: 44,
                jitter: Nanos::from_secs(2),
            }),
            skew_range_ppm: (-60.0, 60.0),
        },
        Driver {
            name: "stayput",
            rate_algo: RateAlgo::SnrDriven { margin_db: 4.5 },
            rts_threshold: None,
            retry_limit: 7,
            probe: None, // never scans while associated
            skew_range_ppm: (-10.0, 10.0),
        },
        Driver {
            name: "cautiond",
            rate_algo: RateAlgo::ArfLike { up: 20, down: 1 },
            rts_threshold: Some(500),
            retry_limit: 11,
            probe: Some(ProbePolicy {
                period: Nanos::from_secs(45),
                burst: 4,
                payload: 66,
                jitter: Nanos::from_secs(6),
            }),
            skew_range_ppm: (-45.0, 45.0),
        },
        Driver {
            name: "legacyb",
            rate_algo: RateAlgo::FixedAt(Rate::R11M),
            rts_threshold: None,
            retry_limit: 7,
            probe: Some(ProbePolicy {
                period: Nanos::from_secs(15),
                burst: 2,
                payload: 36,
                jitter: Nanos::from_secs(1),
            }),
            skew_range_ppm: (-90.0, 90.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_distinct() {
        let cat = driver_catalog();
        assert!(cat.len() >= 6);
        let names: std::collections::BTreeSet<_> = cat.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), cat.len());
        // Probe cadences differ between scanning drivers.
        let periods: std::collections::BTreeSet<_> =
            cat.iter().filter_map(|d| d.probe.map(|p| p.period)).collect();
        assert!(periods.len() >= 4);
    }

    #[test]
    fn controllers_respect_rate_sets() {
        let b_only = Rate::ALL_B.to_vec();
        for d in driver_catalog() {
            let rc = d.rate_algo.controller(&b_only);
            assert!(b_only.contains(&rc.current_rate()), "{}", d.name);
        }
    }

    #[test]
    fn fixed_top_uses_highest() {
        let rc = RateAlgo::FixedTop.controller(&Rate::ALL_BG);
        assert_eq!(rc.current_rate(), Rate::R54M);
    }

    #[test]
    fn fixed_at_clamps_to_set() {
        // Pinning 54M on a b-only card falls back into the set.
        let rc = RateAlgo::FixedAt(Rate::R54M).controller(&Rate::ALL_B);
        assert_eq!(rc.current_rate(), Rate::R11M);
    }

    #[test]
    fn skew_draw_within_range() {
        let d = &driver_catalog()[0];
        let mut rng = InstanceRng::new(1, 2);
        for _ in 0..100 {
            let s = d.draw_skew_ppm(&mut rng);
            assert!((-35.0..=35.0).contains(&s));
        }
    }
}
