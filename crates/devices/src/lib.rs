//! Device models for the wifiprint suite: wireless chipsets, drivers,
//! OS service stacks and application profiles.
//!
//! §VI of the paper decomposes what makes an 802.11 device's traffic
//! timing distinctive:
//!
//! * the **card** (backoff quirks, timers, preambles, power save) —
//!   [`Chipset`],
//! * the **driver** (rate adaptation, RTS threshold, probe cadence) —
//!   [`Driver`],
//! * the **services** running on the OS (SSDP, LLMNR, IGMPv3, …) —
//!   [`ServiceStack`],
//! * the **applications** generating the bulk data — [`AppProfile`].
//!
//! A [`DeviceProfile`] combines the first three; [`profile_catalog`]
//! provides 16 presets whose quirk parameters are plausible composites of
//! the behaviours reported by the measurement studies the paper cites.
//! [`sample_population`] draws heterogeneous device fleets for the office
//! and conference scenarios, with per-instance variation so that two
//! devices of the same model still differ the way Fig. 7's two netbooks
//! do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod apps;
mod chipset;
mod driver;
mod population;
mod profiles;
mod rng;
mod services;

pub use apps::AppProfile;
pub use chipset::{chipset_catalog, Chipset};
pub use driver::{driver_catalog, Driver, ProbePolicy, RateAlgo};
pub use population::{
    apply_churn, sample_population, Environment, PopulationConfig, SampledDevice,
};
pub use profiles::{profile_catalog, profile_popularity, DeviceProfile};
pub use rng::InstanceRng;
pub use services::{arp, dhcp, igmpv3, llmnr, mdns, netbios, ssdp, Service, ServiceStack};
