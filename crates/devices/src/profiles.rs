//! Device profiles: chipset × driver × service stack, instantiable into
//! simulator stations.

use wifiprint_ieee80211::{MacAddr, Nanos, Rate};
use wifiprint_netsim::{
    LinkQuality, PowerSaveNulls, ProbeScanner, Role, StationConfig, TrafficSource,
};

use crate::apps::AppProfile;
use crate::chipset::{chipset_catalog, Chipset};
use crate::driver::{driver_catalog, Driver};
use crate::rng::InstanceRng;
use crate::services::ServiceStack;

/// A complete device model.
///
/// Two devices instantiated from the **same profile** share their MAC
/// timing (chipset quirks) and driver behaviour, but differ in clock skew,
/// service phases/sets and application mix — exactly the §VI situation of
/// the two same-model netbooks with different histograms.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Profile name (`chipset/driver/stack`).
    pub name: String,
    /// The wireless card.
    pub chipset: Chipset,
    /// The driver.
    pub driver: Driver,
    /// The OS service stack.
    pub services: ServiceStack,
}

impl DeviceProfile {
    /// Combines catalogue entries into a profile.
    pub fn new(chipset: Chipset, driver: Driver, services: ServiceStack) -> Self {
        let name = format!("{}/{}", chipset.name, driver.name);
        DeviceProfile { name, chipset, driver, services }
    }

    /// Instantiates the profile as a station.
    ///
    /// `instance_rng` drives all per-device variation; `apps` is the
    /// application mix for this device; `service_variation` lets the
    /// instance drop optional services (off for controlled experiments).
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate(
        &self,
        addr: MacAddr,
        bssid: MacAddr,
        link: LinkQuality,
        apps: &[AppProfile],
        encryption_overhead: usize,
        service_variation: bool,
        rng: &mut InstanceRng,
    ) -> StationConfig {
        let skew = self.driver.draw_skew_ppm(rng);
        let mut behavior = self.chipset.mac_behavior(skew);
        behavior.rts_threshold = self.driver.rts_threshold;
        behavior.retry_limit = self.driver.retry_limit;
        // Host-machine texture: every laptop adds its own microseconds of
        // interrupt/driver latency in front of the backoff procedure.
        behavior.host_latency =
            wifiprint_ieee80211::Nanos::from_nanos(rng.below(28_000));

        let mut sources: Vec<Box<dyn TrafficSource>> = Vec::new();
        sources.extend(self.services.sources(rng, service_variation));
        for app in apps {
            sources.extend(app.sources(rng));
        }
        if let Some(probe) = self.driver.probe {
            let period = Nanos::from_nanos(
                rng.jitter_factor(probe.period.as_nanos() as f64, 0.15) as u64,
            );
            sources.push(Box::new(ProbeScanner {
                period,
                burst: probe.burst,
                payload: probe.payload,
                jitter: probe.jitter,
            }));
        }
        if let Some((awake, doze)) = self.chipset.ps_cycle {
            let awake =
                Nanos::from_nanos(rng.jitter_factor(awake.as_nanos() as f64, 0.2) as u64);
            let doze = Nanos::from_nanos(rng.jitter_factor(doze.as_nanos() as f64, 0.2) as u64);
            sources.push(Box::new(PowerSaveNulls::new(awake, doze, Nanos::from_millis(20))));
        }

        // 802.11g cards keep their unicast data on OFDM rates: falling
        // back to DSSS under loss would collapse channel capacity for
        // everyone (the driver only uses 1–11 Mb/s for protection and
        // management frames).
        let mut rates: Vec<Rate> = {
            let ofdm: Vec<Rate> = self
                .chipset
                .rate_set
                .iter()
                .copied()
                .filter(|r| r.modulation() == wifiprint_ieee80211::Modulation::Ofdm)
                .collect();
            if ofdm.is_empty() {
                self.chipset.rate_set.clone()
            } else {
                ofdm
            }
        };
        rates.sort();
        StationConfig {
            addr,
            bssid,
            role: Role::Client,
            behavior,
            rate_controller: self.driver.rate_algo.controller(&rates),
            link,
            sources,
            encryption_overhead,
            mgmt_rate: Rate::R1M,
            broadcast_rate: Rate::R1M,
            active_from: Nanos::ZERO,
            active_until: None,
        }
    }
}

/// The preset profile library: 16 chipset/driver/stack combinations that
/// cover the quirk space of §VI.
pub fn profile_catalog() -> Vec<DeviceProfile> {
    let chipsets = chipset_catalog();
    let drivers = driver_catalog();
    let stacks = ServiceStack::presets();
    // Hand-picked pairings: chipset i ↔ plausible drivers, varied stacks.
    let combos: [(usize, usize, usize); 16] = [
        (0, 0, 1), // aero5210 + opendrv + linux
        (0, 1, 0), // aero5210 + vendahl + windows
        (1, 1, 0), // wavemax23 + vendahl + windows
        (1, 3, 2), // wavemax23 + stayput + macos
        (2, 2, 0), // nitrowave-g + turbonet + windows
        (2, 0, 1), // nitrowave-g + opendrv + linux
        (3, 0, 1), // swiftradio-fs + opendrv + linux
        (3, 4, 0), // swiftradio-fs + cautiond + windows
        (4, 4, 3), // longhaul31 + cautiond + media_box
        (4, 1, 0), // longhaul31 + vendahl + windows
        (5, 5, 4), // oldb-2040 + legacyb + minimal
        (5, 5, 3), // oldb-2040 + legacyb + media_box
        (6, 2, 2), // femto-g1 + turbonet + macos
        (6, 3, 1), // femto-g1 + stayput + linux
        (7, 0, 0), // breeze-11g + opendrv + windows
        (7, 2, 4), // breeze-11g + turbonet + minimal
    ];
    combos
        .into_iter()
        .map(|(c, d, s)| {
            DeviceProfile::new(chipsets[c].clone(), drivers[d].clone(), stacks[s].clone())
        })
        .collect()
}

/// Weights giving a realistic, non-uniform market share over
/// [`profile_catalog`] (a few popular models dominate, a long tail of
/// rarer hardware).
pub fn profile_popularity() -> Vec<f64> {
    vec![
        18.0, 14.0, 11.0, 8.0, 8.0, 7.0, 6.0, 5.0, 4.0, 4.0, 3.0, 2.0, 3.0, 3.0, 2.0, 2.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_16_distinct_profiles() {
        let cat = profile_catalog();
        assert_eq!(cat.len(), 16);
        assert_eq!(cat.len(), profile_popularity().len());
        let names: std::collections::BTreeSet<_> =
            cat.iter().map(|p| (p.name.clone(), p.services.services.len())).collect();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn instantiation_builds_station_with_sources() {
        let profile = &profile_catalog()[0];
        let mut rng = InstanceRng::new(1, 1);
        let cfg = profile.instantiate(
            MacAddr::from_index(1),
            MacAddr::from_index(0xFF),
            LinkQuality::static_link(30.0),
            &[AppProfile::Background],
            16,
            false,
            &mut rng,
        );
        assert_eq!(cfg.encryption_overhead, 16);
        // services + app + probe scanner + power save.
        let expected = profile.services.services.len()
            + 1
            + usize::from(profile.driver.probe.is_some())
            + usize::from(profile.chipset.ps_cycle.is_some());
        assert_eq!(cfg.sources.len(), expected);
        assert_eq!(cfg.behavior.rts_threshold, profile.driver.rts_threshold);
        assert_eq!(cfg.behavior.backoff, profile.chipset.backoff);
    }

    #[test]
    fn same_profile_instances_share_timing_but_differ_in_skew() {
        let profile = &profile_catalog()[2];
        let mut r1 = InstanceRng::new(5, 1);
        let mut r2 = InstanceRng::new(5, 2);
        let make = |rng: &mut InstanceRng| {
            profile.instantiate(
                MacAddr::from_index(1),
                MacAddr::from_index(0xFF),
                LinkQuality::static_link(30.0),
                &[],
                0,
                true,
                rng,
            )
        };
        let a = make(&mut r1);
        let b = make(&mut r2);
        assert_eq!(a.behavior.backoff, b.behavior.backoff);
        assert_eq!(a.behavior.timer_granularity, b.behavior.timer_granularity);
        assert_ne!(a.behavior.clock_skew_ppm, b.behavior.clock_skew_ppm);
    }

    #[test]
    fn popularity_sums_to_something_positive() {
        let w = profile_popularity();
        assert!(w.iter().all(|&x| x > 0.0));
        assert!(w.iter().sum::<f64>() > 99.0);
    }

    #[test]
    fn b_only_profile_gets_b_rates() {
        let cat = profile_catalog();
        let legacy = cat.iter().find(|p| p.chipset.name == "oldb-2040").unwrap();
        let mut rng = InstanceRng::new(9, 9);
        let cfg = legacy.instantiate(
            MacAddr::from_index(7),
            MacAddr::from_index(0xFF),
            LinkQuality::static_link(25.0),
            &[],
            0,
            false,
            &mut rng,
        );
        assert!(Rate::ALL_B.contains(&cfg.rate_controller.current_rate()));
    }
}
