//! Application traffic profiles: what the user is doing on the device.

use wifiprint_ieee80211::Nanos;
use wifiprint_netsim::{CbrSource, OnOffSource, PoissonSource, TrafficSource};

use crate::rng::InstanceRng;

/// An application-level traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppProfile {
    /// Saturating UDP stream (the paper's `iperf` rig): fixed payload at a
    /// fixed interval.
    IperfUdp {
        /// Inter-packet interval.
        interval: Nanos,
        /// Payload bytes.
        payload: usize,
    },
    /// Web browsing: bursty on/off with thinking time.
    Web,
    /// VoIP: small CBR packets every 20 ms.
    Voip,
    /// Bulk transfer: large back-to-back packets in long sessions.
    Bulk,
    /// Light background traffic (ssh, chat, sync clients).
    Background,
    /// No application traffic (services/probes only).
    Idle,
}

impl AppProfile {
    /// Instantiates the profile as traffic sources, with per-device
    /// parameter variation.
    pub fn sources(&self, rng: &mut InstanceRng) -> Vec<Box<dyn TrafficSource>> {
        match *self {
            AppProfile::IperfUdp { interval, payload } => {
                vec![Box::new(CbrSource::new(interval, payload))]
            }
            AppProfile::Web => {
                let think = rng.jitter_factor(8.0, 0.4); // seconds
                vec![Box::new(OnOffSource::new(
                    rng.jitter_factor(12.0, 0.3),
                    // Dominant response size varies per device (MTU, TLS
                    // record sizes, proxy in the path, ...) over a few
                    // common values.
                    [1004, 1132, 1260, 1388, 1460][rng.below(5) as usize],
                    Nanos::from_micros(rng.jitter_factor(900.0, 0.3) as u64),
                    Nanos::from_secs_f64(think),
                ))]
            }
            AppProfile::Voip => {
                let mut cbr = CbrSource::new(
                    Nanos::from_millis(20),
                    if rng.chance(0.5) { 172 } else { 132 }, // G.711 vs G.729-ish
                );
                cbr.jitter = Nanos::from_micros(400);
                vec![Box::new(cbr)]
            }
            AppProfile::Bulk => {
                vec![Box::new(OnOffSource::new(
                    rng.jitter_factor(180.0, 0.3),
                    1460,
                    Nanos::from_micros(rng.jitter_factor(700.0, 0.25) as u64),
                    Nanos::from_secs_f64(rng.jitter_factor(40.0, 0.5)),
                ))]
            }
            AppProfile::Background => {
                // Each device runs its own mix of background chatter
                // (sync clients, messengers, keep-alives). Sizes come from
                // a palette of common packet sizes shared by everyone —
                // what identifies a device is its *mixture*, not unique
                // values (§VI-C): distinctive but far from a unique ID.
                const PALETTE: [usize; 12] =
                    [66, 90, 124, 196, 260, 330, 420, 580, 760, 1020, 1260, 1460];
                let n_sizes = 3 + rng.below(3) as usize;
                let sizes: Vec<usize> = (0..n_sizes)
                    .map(|_| PALETTE[rng.below(PALETTE.len() as u64) as usize])
                    .collect();
                let size_weights: Vec<f64> =
                    (0..n_sizes).map(|_| 0.5 + 4.0 * rng.f64()).collect();
                let mut src = PoissonSource::new(
                    Nanos::from_millis(rng.jitter_factor(1100.0, 0.4) as u64),
                    sizes,
                    size_weights,
                );
                // Per-device exchange pattern: how often requests come as
                // back-to-back trains is an application/stack trait.
                src.train_p = 0.15 + 0.4 * rng.f64();
                vec![Box::new(src)]
            }
            AppProfile::Idle => Vec::new(),
        }
    }

    /// A plausible application mix for an office worker's device, drawn
    /// per instance: mostly background + web, some VoIP/bulk.
    pub fn office_mix(rng: &mut InstanceRng) -> Vec<AppProfile> {
        let mut apps = vec![AppProfile::Background];
        if rng.chance(0.55) {
            apps.push(AppProfile::Web);
        }
        if rng.chance(0.03) {
            apps.push(AppProfile::Voip);
        }
        if rng.chance(0.12) {
            apps.push(AppProfile::Bulk);
        }
        apps
    }

    /// A conference attendee's mix: lighter, more idle devices.
    pub fn conference_mix(rng: &mut InstanceRng) -> Vec<AppProfile> {
        let roll = rng.f64();
        if roll < 0.3 {
            vec![AppProfile::Idle]
        } else if roll < 0.75 {
            vec![AppProfile::Background]
        } else if roll < 0.95 {
            vec![AppProfile::Background, AppProfile::Web]
        } else {
            vec![AppProfile::Bulk]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_instantiate() {
        let mut rng = InstanceRng::new(1, 1);
        for p in [
            AppProfile::IperfUdp { interval: Nanos::from_millis(2), payload: 1470 },
            AppProfile::Web,
            AppProfile::Voip,
            AppProfile::Bulk,
            AppProfile::Background,
        ] {
            assert!(!p.sources(&mut rng).is_empty(), "{p:?}");
        }
        assert!(AppProfile::Idle.sources(&mut rng).is_empty());
    }

    #[test]
    fn office_mix_always_has_background() {
        for i in 0..50 {
            let mut rng = InstanceRng::new(2, i);
            let mix = AppProfile::office_mix(&mut rng);
            assert!(mix.contains(&AppProfile::Background));
        }
    }

    #[test]
    fn conference_mix_includes_idle_devices() {
        let mut idle = 0;
        for i in 0..200 {
            let mut rng = InstanceRng::new(3, i);
            if AppProfile::conference_mix(&mut rng) == vec![AppProfile::Idle] {
                idle += 1;
            }
        }
        assert!((30..100).contains(&idle), "idle devices: {idle}");
    }

    #[test]
    fn per_device_variation_differs() {
        let mut r1 = InstanceRng::new(4, 1);
        let mut r2 = InstanceRng::new(4, 2);
        // Web profiles for two devices should differ in their debug
        // parameters (think time / burst shape).
        let s1 = format!("{:?}", AppProfile::Web.sources(&mut r1));
        let s2 = format!("{:?}", AppProfile::Web.sources(&mut r2));
        assert_ne!(s1, s2);
    }
}
