//! Sampling heterogeneous device populations for scenarios.

use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_netsim::{LinkQuality, StationConfig};

use crate::apps::AppProfile;
use crate::profiles::{profile_catalog, profile_popularity, DeviceProfile};
use crate::rng::InstanceRng;

/// The kind of environment a population lives in; controls application
/// mixes and service variation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Environment {
    /// Static office network (the paper's WPA traces).
    Office,
    /// Conference hall (the paper's Sigcomm traces): lighter traffic, more
    /// idle devices.
    Conference,
}

/// Configuration for sampling a device population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of client devices.
    pub devices: usize,
    /// Root seed (device `i` derives instance stream `i`).
    pub seed: u64,
    /// Environment type.
    pub environment: Environment,
    /// Per-frame encryption overhead (16 for WPA, 0 for open).
    pub encryption_overhead: usize,
    /// Function index base for MAC addresses.
    pub addr_base: u64,
}

/// One sampled device: its station configuration plus provenance for
/// ground-truth checks in tests and reports.
#[derive(Debug)]
pub struct SampledDevice {
    /// The simulator configuration.
    pub station: StationConfig,
    /// Which catalogue profile the device came from.
    pub profile_name: String,
}

/// Samples a heterogeneous population according to the profile popularity
/// distribution.
///
/// `link_for` supplies the radio link for each device index (scenarios use
/// this to inject mobility models); `bssid_for` assigns devices to APs.
pub fn sample_population(
    cfg: &PopulationConfig,
    mut link_for: impl FnMut(usize, &mut InstanceRng) -> LinkQuality,
    mut bssid_for: impl FnMut(usize, &mut InstanceRng) -> MacAddr,
) -> Vec<SampledDevice> {
    let catalog = profile_catalog();
    let weights = profile_popularity();
    let mut out = Vec::with_capacity(cfg.devices);
    for i in 0..cfg.devices {
        let mut rng = InstanceRng::new(cfg.seed, i as u64);
        let profile: &DeviceProfile = &catalog[rng.pick_weighted(&weights)];
        let apps = match cfg.environment {
            Environment::Office => AppProfile::office_mix(&mut rng),
            Environment::Conference => AppProfile::conference_mix(&mut rng),
        };
        let addr = MacAddr::from_index(cfg.addr_base + i as u64);
        let bssid = bssid_for(i, &mut rng);
        let link = link_for(i, &mut rng);
        let station = profile.instantiate(
            addr,
            bssid,
            link,
            &apps,
            cfg.encryption_overhead,
            true,
            &mut rng,
        );
        out.push(SampledDevice { station, profile_name: profile.name.clone() });
    }
    out
}

/// Staggers arrival/departure times over the sampled population (device
/// churn, pronounced in conference settings).
///
/// Each device joins uniformly within `[0, join_spread)` and, with
/// probability `leave_p`, leaves after a stay of at least `min_stay`.
pub fn apply_churn(
    devices: &mut [SampledDevice],
    seed: u64,
    duration: Nanos,
    join_spread: Nanos,
    leave_p: f64,
    min_stay: Nanos,
) {
    for (i, dev) in devices.iter_mut().enumerate() {
        let mut rng = InstanceRng::new(seed ^ 0xC4_12, i as u64);
        let join = Nanos::from_nanos(rng.below(join_spread.as_nanos().max(1)));
        dev.station.active_from = join;
        if rng.chance(leave_p) {
            let stay_room = duration.saturating_sub(join + min_stay);
            let stay = min_stay + Nanos::from_nanos(rng.below(stay_room.as_nanos().max(1)));
            dev.station.active_until = Some(join + stay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, env: Environment) -> PopulationConfig {
        PopulationConfig {
            devices: n,
            seed: 11,
            environment: env,
            encryption_overhead: 16,
            addr_base: 0x100,
        }
    }

    fn sample(n: usize, env: Environment) -> Vec<SampledDevice> {
        sample_population(
            &config(n, env),
            |_, _| LinkQuality::static_link(30.0),
            |_, _| MacAddr::from_index(0xFF),
        )
    }

    #[test]
    fn population_is_heterogeneous() {
        let devices = sample(120, Environment::Office);
        assert_eq!(devices.len(), 120);
        let profiles: std::collections::BTreeSet<_> =
            devices.iter().map(|d| d.profile_name.clone()).collect();
        assert!(profiles.len() >= 8, "only {} profiles used", profiles.len());
        // Unique addresses.
        let addrs: std::collections::BTreeSet<_> =
            devices.iter().map(|d| d.station.addr).collect();
        assert_eq!(addrs.len(), 120);
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample(30, Environment::Office);
        let b = sample(30, Environment::Office);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.profile_name, y.profile_name);
            assert_eq!(x.station.addr, y.station.addr);
            assert_eq!(x.station.behavior, y.station.behavior);
        }
    }

    #[test]
    fn conference_population_has_more_idle_devices() {
        let office = sample(150, Environment::Office);
        let conf = sample(150, Environment::Conference);
        let source_count =
            |d: &[SampledDevice]| d.iter().map(|x| x.station.sources.len()).sum::<usize>();
        assert!(
            source_count(&conf) < source_count(&office),
            "conference devices should carry fewer sources"
        );
    }

    #[test]
    fn churn_assigns_windows_within_bounds() {
        let mut devices = sample(60, Environment::Conference);
        let duration = Nanos::from_secs(3600);
        apply_churn(
            &mut devices,
            5,
            duration,
            Nanos::from_secs(1800),
            0.5,
            Nanos::from_secs(300),
        );
        let mut leavers = 0;
        for d in &devices {
            assert!(d.station.active_from < Nanos::from_secs(1800));
            if let Some(until) = d.station.active_until {
                leavers += 1;
                assert!(until > d.station.active_from + Nanos::from_secs(300) - Nanos::from_nanos(1));
            }
        }
        assert!((15..45).contains(&leavers), "leavers = {leavers}");
    }

    #[test]
    fn encryption_overhead_propagates() {
        let devices = sample(5, Environment::Office);
        assert!(devices.iter().all(|d| d.station.encryption_overhead == 16));
    }
}
