//! Wireless chipset models.
//!
//! A chipset fixes the MAC-timing personality the paper's §VI-A attributes
//! fingerprints to: backoff distribution quirks, timer granularity,
//! preamble support, power-save cadence and the duration-field computation
//! (after Cache 2006). The presets are *plausible composites* of behaviours
//! reported for period hardware by the literature the paper cites
//! (Gopinath et al. 2006, Berger-Sabbatel et al. 2007, Cache 2006) — they
//! are not measurements of any specific product.

use wifiprint_ieee80211::duration::DurationModel;
use wifiprint_ieee80211::{Nanos, Rate};
use wifiprint_netsim::{BackoffQuirk, MacBehavior};

/// A wireless card (chipset + firmware) model.
#[derive(Debug, Clone, PartialEq)]
pub struct Chipset {
    /// Identifier used in docs and reports.
    pub name: &'static str,
    /// The rates the card supports.
    pub rate_set: Vec<Rate>,
    /// Backoff-distribution quirk.
    pub backoff: BackoffQuirk,
    /// Minimum contention window.
    pub cw_min: u32,
    /// Timer expiry granularity.
    pub timer_granularity: Nanos,
    /// SIFS response jitter (std dev).
    pub sifs_jitter: Nanos,
    /// Short DSSS preamble capability (used when set).
    pub short_preamble: bool,
    /// Null frames transmitted at a basic rate instead of the data rate.
    pub null_frames_at_basic_rate: bool,
    /// Duration-field computation quirk.
    pub duration_model: DurationModel,
    /// Power-save cycle `(awake, doze)`; `None` disables power save
    /// entirely (several cards do under Linux, §VI-D).
    pub ps_cycle: Option<(Nanos, Nanos)>,
}

impl Chipset {
    /// Converts the chipset (plus a per-instance clock skew) into the
    /// simulator's MAC behaviour.
    pub fn mac_behavior(&self, clock_skew_ppm: f64) -> MacBehavior {
        MacBehavior {
            cw_min: self.cw_min,
            cw_max: 1023,
            backoff: self.backoff,
            timer_granularity: self.timer_granularity,
            clock_skew_ppm,
            sifs_jitter: self.sifs_jitter,
            rts_threshold: None, // the driver decides
            retry_limit: 7,      // the driver decides
            null_frames_at_basic_rate: self.null_frames_at_basic_rate,
            short_preamble: self.short_preamble,
            duration_model: self.duration_model,
            host_latency: Nanos::ZERO, // per-instance, drawn at instantiation
        }
    }

    /// `true` if this is an 802.11b-only card.
    pub fn is_b_only(&self) -> bool {
        self.rate_set.iter().all(|r| Rate::ALL_B.contains(r))
    }
}

/// The chipset catalogue: eight distinct MAC-timing personalities.
pub fn chipset_catalog() -> Vec<Chipset> {
    vec![
        // A standard-conformant 802.11g card; the reference behaviour.
        Chipset {
            name: "aero5210",
            rate_set: Rate::ALL_BG.to_vec(),
            backoff: BackoffQuirk::Uniform,
            cw_min: 15,
            timer_granularity: Nanos::from_nanos(0),
            sifs_jitter: Nanos::from_nanos(400),
            short_preamble: true,
            null_frames_at_basic_rate: false,
            duration_model: DurationModel::Standard,
            ps_cycle: Some((Nanos::from_millis(2300), Nanos::from_millis(5100))),
        },
        // Adds the "extra early slot" of Fig. 4a and coarse 2 µs timers.
        Chipset {
            name: "wavemax23",
            rate_set: Rate::ALL_BG.to_vec(),
            backoff: BackoffQuirk::ExtraEarlySlot { p: 0.22, fraction: 0.45 },
            cw_min: 15,
            timer_granularity: Nanos::from_micros(2),
            sifs_jitter: Nanos::from_nanos(900),
            short_preamble: true,
            null_frames_at_basic_rate: true,
            duration_model: DurationModel::AckAtDataRate,
            ps_cycle: Some((Nanos::from_millis(1200), Nanos::from_millis(2900))),
        },
        // Aggressive low-slot bias (Gopinath's loose implementations).
        Chipset {
            name: "nitrowave-g",
            rate_set: Rate::ALL_BG.to_vec(),
            backoff: BackoffQuirk::SkewedLow(2.2),
            cw_min: 15,
            timer_granularity: Nanos::from_micros(1),
            sifs_jitter: Nanos::from_nanos(600),
            short_preamble: false,
            null_frames_at_basic_rate: false,
            duration_model: DurationModel::RoundedUp(16),
            ps_cycle: Some((Nanos::from_millis(3800), Nanos::from_millis(7300))),
        },
        // Berger-Sabbatel's first-slot sender.
        Chipset {
            name: "swiftradio-fs",
            rate_set: Rate::ALL_BG.to_vec(),
            backoff: BackoffQuirk::FirstSlotBias(0.35),
            cw_min: 15,
            timer_granularity: Nanos::from_nanos(500),
            sifs_jitter: Nanos::from_nanos(300),
            short_preamble: true,
            null_frames_at_basic_rate: false,
            duration_model: DurationModel::Padded(4),
            ps_cycle: None, // power save disabled under Linux (§VI-D)
        },
        // Conservative card with a DSSS-style CWmin of 31 even for OFDM.
        Chipset {
            name: "longhaul31",
            rate_set: Rate::ALL_BG.to_vec(),
            backoff: BackoffQuirk::Uniform,
            cw_min: 31,
            timer_granularity: Nanos::from_micros(1),
            sifs_jitter: Nanos::from_micros(1),
            short_preamble: false,
            null_frames_at_basic_rate: true,
            duration_model: DurationModel::Standard,
            ps_cycle: Some((Nanos::from_millis(6400), Nanos::from_millis(13600))),
        },
        // Legacy 802.11b-only module (PDAs, printers, old laptops).
        Chipset {
            name: "oldb-2040",
            rate_set: Rate::ALL_B.to_vec(),
            backoff: BackoffQuirk::Uniform,
            cw_min: 31,
            timer_granularity: Nanos::from_micros(4),
            sifs_jitter: Nanos::from_micros(2),
            short_preamble: false,
            null_frames_at_basic_rate: true,
            duration_model: DurationModel::Constant(314),
            ps_cycle: Some((Nanos::from_millis(1500), Nanos::from_millis(16800))),
        },
        // Mild low-slot skew with very tight timers.
        Chipset {
            name: "femto-g1",
            rate_set: Rate::ALL_BG.to_vec(),
            backoff: BackoffQuirk::SkewedLow(1.4),
            cw_min: 15,
            timer_granularity: Nanos::from_nanos(0),
            sifs_jitter: Nanos::from_nanos(150),
            short_preamble: true,
            null_frames_at_basic_rate: false,
            duration_model: DurationModel::Standard,
            ps_cycle: Some((Nanos::from_millis(2700), Nanos::from_millis(3600))),
        },
        // Early-slot quirk with a different fraction + zero-duration bug.
        Chipset {
            name: "breeze-11g",
            rate_set: Rate::ALL_BG.to_vec(),
            backoff: BackoffQuirk::ExtraEarlySlot { p: 0.12, fraction: 0.7 },
            cw_min: 15,
            timer_granularity: Nanos::from_micros(2),
            sifs_jitter: Nanos::from_nanos(700),
            short_preamble: false,
            null_frames_at_basic_rate: true,
            duration_model: DurationModel::AlwaysZero,
            ps_cycle: Some((Nanos::from_millis(960), Nanos::from_millis(2100))),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_distinct_names_and_personalities() {
        let cat = chipset_catalog();
        assert!(cat.len() >= 8);
        let names: std::collections::BTreeSet<_> = cat.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), cat.len(), "duplicate chipset names");
        // At least three different backoff quirk families.
        let quirk_kinds: std::collections::BTreeSet<_> = cat
            .iter()
            .map(|c| match c.backoff {
                BackoffQuirk::Uniform => 0,
                BackoffQuirk::ExtraEarlySlot { .. } => 1,
                BackoffQuirk::SkewedLow(_) => 2,
                BackoffQuirk::FirstSlotBias(_) => 3,
            })
            .collect();
        assert!(quirk_kinds.len() >= 3);
    }

    #[test]
    fn mac_behavior_carries_chipset_traits() {
        let cat = chipset_catalog();
        let c = &cat[1]; // wavemax23
        let b = c.mac_behavior(42.0);
        assert_eq!(b.backoff, c.backoff);
        assert_eq!(b.timer_granularity, c.timer_granularity);
        assert_eq!(b.clock_skew_ppm, 42.0);
        assert_eq!(b.null_frames_at_basic_rate, c.null_frames_at_basic_rate);
        assert_eq!(b.duration_model, c.duration_model);
    }

    #[test]
    fn b_only_detection() {
        let cat = chipset_catalog();
        let b_only: Vec<_> = cat.iter().filter(|c| c.is_b_only()).collect();
        assert_eq!(b_only.len(), 1);
        assert_eq!(b_only[0].name, "oldb-2040");
    }

    #[test]
    fn some_chipsets_disable_power_save() {
        let cat = chipset_catalog();
        assert!(cat.iter().any(|c| c.ps_cycle.is_none()));
        assert!(cat.iter().filter(|c| c.ps_cycle.is_some()).count() >= 6);
    }
}
