//! Per-device-instance randomness.

use wifiprint_netsim::SimRng;

/// A deterministic random stream for instantiating one device: two
/// instances of the same profile draw different service phases, clock
/// skews and traffic parameters, yet every run with the same seed is
/// identical.
#[derive(Debug, Clone)]
pub struct InstanceRng {
    inner: SimRng,
}

impl InstanceRng {
    /// The stream for device `instance` under `seed`.
    pub fn new(seed: u64, instance: u64) -> Self {
        InstanceRng { inner: SimRng::derive(seed, 0x0D0E_0000 ^ instance) }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.f64()
    }

    /// Uniform integer below `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.below(bound)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.chance(p)
    }

    /// Gaussian draw.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        self.inner.gaussian(mean, std_dev)
    }

    /// Multiplies `value` by a uniform factor in `[1-spread, 1+spread]`.
    pub fn jitter_factor(&mut self, value: f64, spread: f64) -> f64 {
        value * (1.0 - spread + 2.0 * spread * self.f64())
    }

    /// Picks an index weighted by `weights`.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        self.inner.pick_weighted(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_distinct_and_reproducible() {
        let mut a1 = InstanceRng::new(1, 5);
        let mut a2 = InstanceRng::new(1, 5);
        let mut b = InstanceRng::new(1, 6);
        let xs: Vec<u64> = (0..8).map(|_| a1.below(1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.below(1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| b.below(1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn jitter_factor_bounds() {
        let mut r = InstanceRng::new(2, 0);
        for _ in 0..200 {
            let v = r.jitter_factor(100.0, 0.1);
            assert!((90.0..=110.0).contains(&v));
        }
    }
}
