//! Network-service models: the periodic broadcast/multicast chatter an
//! operating system produces.
//!
//! §VI-C of the paper shows two same-model netbooks whose inter-arrival
//! histograms differ *only* through their services — IGMPv3 membership
//! reports and LLMNR queries produce the distinctive peaks of Fig. 7. Each
//! service here has a characteristic frame-size set and period.

use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_netsim::{PeriodicBroadcast, TrafficSource};

use crate::rng::InstanceRng;

/// One OS-level service generating periodic group-addressed traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Service {
    /// Service name (reporting only).
    pub name: &'static str,
    /// Nominal period between emissions.
    pub period: Nanos,
    /// Period jitter.
    pub jitter: Nanos,
    /// Frame payload sizes emitted per period.
    pub payloads: Vec<usize>,
    /// Destination group address.
    pub group: MacAddr,
}

impl Service {
    /// Instantiates the service as a traffic source, applying ±10 %
    /// per-device period variation so two installs are never phase-locked,
    /// and a per-device payload offset (hostnames, UUIDs and option lists
    /// make every install's announcement a few bytes different).
    pub fn source(&self, rng: &mut InstanceRng) -> Box<dyn TrafficSource> {
        let period_ns = rng.jitter_factor(self.period.as_nanos() as f64, 0.10) as u64;
        let offset = 4 * rng.below(5) as usize;
        Box::new(PeriodicBroadcast {
            period: Nanos::from_nanos(period_ns.max(1)),
            jitter: self.jitter,
            payloads: self.payloads.iter().map(|p| p + offset).collect(),
            group: self.group,
        })
    }
}

const MDNS_GROUP: MacAddr = MacAddr::new([0x01, 0x00, 0x5e, 0x00, 0x00, 0xfb]);
const LLMNR_GROUP: MacAddr = MacAddr::new([0x01, 0x00, 0x5e, 0x00, 0x00, 0xfc]);
const SSDP_GROUP: MacAddr = MacAddr::new([0x01, 0x00, 0x5e, 0x7f, 0xff, 0xfa]);
const IGMP_GROUP: MacAddr = MacAddr::new([0x01, 0x00, 0x5e, 0x00, 0x00, 0x16]);

/// Simple Service Discovery Protocol (UPnP): NOTIFY bursts.
pub fn ssdp() -> Service {
    Service {
        name: "ssdp",
        period: Nanos::from_secs(30),
        jitter: Nanos::from_secs(3),
        payloads: vec![311, 325, 339],
        group: SSDP_GROUP,
    }
}

/// Multicast DNS announcements (Bonjour/Avahi).
pub fn mdns() -> Service {
    Service {
        name: "mdns",
        period: Nanos::from_secs(60),
        jitter: Nanos::from_secs(8),
        payloads: vec![143, 207],
        group: MDNS_GROUP,
    }
}

/// Link-Local Multicast Name Resolution queries — one of the two Fig. 7
/// peak sources.
pub fn llmnr() -> Service {
    Service {
        name: "llmnr",
        period: Nanos::from_secs(18),
        jitter: Nanos::from_secs(2),
        payloads: vec![66],
        group: LLMNR_GROUP,
    }
}

/// IGMPv3 membership reports — the other Fig. 7 peak source.
pub fn igmpv3() -> Service {
    Service {
        name: "igmpv3",
        period: Nanos::from_secs(24),
        jitter: Nanos::from_secs(3),
        payloads: vec![46],
        group: IGMP_GROUP,
    }
}

/// Gratuitous/probe ARP traffic.
pub fn arp() -> Service {
    Service {
        name: "arp",
        period: Nanos::from_secs(40),
        jitter: Nanos::from_secs(10),
        payloads: vec![28],
        group: MacAddr::BROADCAST,
    }
}

/// NetBIOS name service broadcasts (Windows).
pub fn netbios() -> Service {
    Service {
        name: "netbios",
        period: Nanos::from_secs(45),
        jitter: Nanos::from_secs(5),
        payloads: vec![92, 110],
        group: MacAddr::BROADCAST,
    }
}

/// DHCP renewals/discovers.
pub fn dhcp() -> Service {
    Service {
        name: "dhcp",
        period: Nanos::from_secs(300),
        jitter: Nanos::from_secs(30),
        payloads: vec![300],
        group: MacAddr::BROADCAST,
    }
}

/// A device's installed service set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStack {
    /// The services running on this device.
    pub services: Vec<Service>,
}

impl ServiceStack {
    /// Typical Windows laptop: LLMNR + NetBIOS + SSDP + ARP + DHCP.
    pub fn windows() -> Self {
        ServiceStack { services: vec![llmnr(), netbios(), ssdp(), arp(), dhcp()] }
    }

    /// Typical Linux laptop: mDNS (Avahi) + ARP + DHCP.
    pub fn linux() -> Self {
        ServiceStack { services: vec![mdns(), arp(), dhcp()] }
    }

    /// Typical macOS device: chatty mDNS + ARP + IGMP.
    pub fn macos() -> Self {
        ServiceStack { services: vec![mdns(), igmpv3(), arp()] }
    }

    /// Media/IoT-ish device: SSDP + IGMPv3 (multicast streaming).
    pub fn media_box() -> Self {
        ServiceStack { services: vec![ssdp(), igmpv3(), dhcp()] }
    }

    /// A quiet device: ARP only.
    pub fn minimal() -> Self {
        ServiceStack { services: vec![arp()] }
    }

    /// All stack presets.
    pub fn presets() -> Vec<ServiceStack> {
        vec![
            ServiceStack::windows(),
            ServiceStack::linux(),
            ServiceStack::macos(),
            ServiceStack::media_box(),
            ServiceStack::minimal(),
        ]
    }

    /// Instantiates every service as a traffic source, with per-device
    /// variation. With `variation`, each optional service is additionally
    /// dropped with probability 0.25, so two same-model devices end up
    /// with different service sets (Fig. 7).
    pub fn sources(&self, rng: &mut InstanceRng, variation: bool) -> Vec<Box<dyn TrafficSource>> {
        let mut out = Vec::new();
        for (i, svc) in self.services.iter().enumerate() {
            // Always keep at least the first service so the stack is never
            // empty.
            if variation && i > 0 && rng.chance(0.25) {
                continue;
            }
            out.push(svc.source(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn services_have_group_destinations() {
        for svc in [ssdp(), mdns(), llmnr(), igmpv3(), arp(), netbios(), dhcp()] {
            assert!(svc.group.is_multicast(), "{}", svc.name);
            assert!(!svc.payloads.is_empty(), "{}", svc.name);
            assert!(svc.period > Nanos::ZERO, "{}", svc.name);
        }
    }

    #[test]
    fn stacks_differ() {
        let presets = ServiceStack::presets();
        assert_eq!(presets.len(), 5);
        let sizes: Vec<usize> = presets.iter().map(|s| s.services.len()).collect();
        assert!(sizes.iter().any(|&s| s >= 4));
        assert!(sizes.contains(&1));
    }

    #[test]
    fn instantiation_applies_period_variation() {
        let svc = llmnr();
        let mut r1 = InstanceRng::new(1, 1);
        let mut r2 = InstanceRng::new(1, 2);
        // The sources differ in their (private) period; drive them one
        // poll and compare next_in.
        let mut s1 = svc.source(&mut r1);
        let mut s2 = svc.source(&mut r2);
        let mut sim_rng1 = wifiprint_netsim::SimRng::derive(9, 1);
        let mut sim_rng2 = wifiprint_netsim::SimRng::derive(9, 1);
        let e1 = s1.poll(Nanos::ZERO, &mut sim_rng1);
        let e2 = s2.poll(Nanos::ZERO, &mut sim_rng2);
        assert_ne!(e1.next_in, e2.next_in, "per-instance period variation missing");
    }

    #[test]
    fn stack_variation_drops_services_but_keeps_first() {
        let stack = ServiceStack::windows();
        let mut any_dropped = false;
        for i in 0..20 {
            let mut rng = InstanceRng::new(3, i);
            let sources = stack.sources(&mut rng, true);
            assert!(!sources.is_empty());
            if sources.len() < stack.services.len() {
                any_dropped = true;
            }
        }
        assert!(any_dropped);
        // Without variation, everything is kept.
        let mut rng = InstanceRng::new(3, 99);
        assert_eq!(stack.sources(&mut rng, false).len(), stack.services.len());
    }
}
