//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace is offline, so the real
//! proptest cannot be fetched from crates.io. This crate implements the
//! subset of its API that the workspace's property tests use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, `any::<T>()`,
//! numeric-range strategies, `prop::collection::vec`, `prop::option::of`
//! and `prop::sample::select` — on top of a small deterministic PRNG.
//!
//! Differences from the real crate:
//!
//! * no shrinking: a failing case reports its inputs but is not minimised;
//! * deterministic seeding: each test derives its seed from its name, so
//!   runs are bit-reproducible (set `PROPTEST_SEED` to explore);
//! * `PROPTEST_CASES` (default 96) controls the number of cases per test.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ stream used to drive generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A stream seeded from an arbitrary 64-bit value via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// A value generator. The real proptest `Strategy` also drives shrinking;
/// here it is generation only.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// An unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values over a wide range of magnitudes and both signs (the
    /// real proptest also emits NaN/∞; the workspace tests that care pass
    /// them explicitly).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let magnitude = (rng.f64() * 600.0 - 300.0).exp2();
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        match rng.below(16) {
            0 => 0.0,
            1 => f64::NAN,
            2 => sign * f64::INFINITY,
            _ => sign * magnitude,
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// String literals act as regex strategies, as in the real proptest.
/// Supported subset: literal characters, character classes
/// (`[a-z0-9_]`, ranges and singletons), and the quantifiers `{n}`,
/// `{m,n}`, `?`, `*` and `+` (unbounded repeats cap at 8).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = atom.max - atom.min;
            let reps = atom.min + rng.below(span as u64 + 1) as usize;
            for _ in 0..reps {
                let choice = &atom.chars[rng.below(atom.chars.len() as u64) as usize];
                out.push(*choice);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for member in it.by_ref() {
                    match member {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range: complete it with the next char.
                            prev = Some('-');
                            continue;
                        }
                        ch => {
                            if prev == Some('-') {
                                let lo = *set.last().expect("range start");
                                for code in (lo as u32 + 1)..=(ch as u32) {
                                    if let Some(cc) = char::from_u32(code) {
                                        set.push(cc);
                                    }
                                }
                                prev = None;
                            } else {
                                set.push(ch);
                                prev = Some(ch);
                            }
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                set
            }
            '\\' => vec![it.next().expect("escaped character")],
            ch => vec![ch],
        };
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let spec: String = it.by_ref().take_while(|&ch| ch != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repeat"),
                        n.trim().parse().expect("bad repeat"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("bad repeat");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad repeat bounds in {pattern:?}");
        atoms.push(PatternAtom { chars, min, max });
    }
    atoms
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Closed interval: occasionally emit the exact endpoints.
        match rng.below(64) {
            0 => lo,
            1 => hi,
            _ => lo + rng.f64() * (hi - lo),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection, option and sampling strategies (`prop::collection::vec`
/// and friends).
pub mod prop {
    /// Strategies for collections of values.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// The length specification `vec` accepts: a fixed length or a
        /// half-open range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        /// The strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Strategies for `Option<T>`.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// The strategy returned by [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` about a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// The strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// A uniformly random element of `items`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select from empty set");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        Strategy,
    };
}

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES`,
/// default 96).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(96)
}

/// The deterministic base seed for a test (`PROPTEST_SEED` to override).
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse() {
            return seed;
        }
    }
    // FNV-1a over the fully qualified test name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Declares property tests: each `name in strategy` parameter is drawn
/// fresh for every case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    ($(#[$meta:meta] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[$meta]
            fn $name() {
                let cases = $crate::case_count();
                let seed =
                    $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    let mut rng =
                        $crate::TestRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let run = |rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                        $body
                    };
                    run(&mut rng);
                }
            }
        )+
    };
}

/// `assert!` that names the property-test context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that names the property-test context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that names the property-test context on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::seed_from_u64(7);
        let mut b = crate::TestRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let g = Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn vec_lengths_follow_size_range() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(any::<u8>(), 2usize..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let fixed = Strategy::generate(&prop::collection::vec(any::<u8>(), 3usize), &mut rng);
            assert_eq!(fixed.len(), 3);
        }
    }

    proptest! {
        #[test]
        fn macro_draws_values(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assume!(flip);
            prop_assert!(flip);
        }
    }
}
