//! Accuracy-drift gate for the quantized (`u8`) matching tier.
//!
//! The `RowPrecision::U8` tier stores reference rows as 7-bit codes with
//! a per-row scale and sweeps them with exact integer kernels (see
//! `wifiprint_core::matching`, "Precision tiers"). This test runs the
//! repro pipeline's scoring on a synthetic multi-device trace twice —
//! once on the default `f32` store, once on the quantized store built
//! from the *same* signatures — and requires the paper's headline
//! accuracy metrics (AUC of the similarity test, identification ratio)
//! to agree within a pinned tolerance, with per-instance scores inside
//! `U8_SCORE_TOLERANCE` and best-match identities flipping only at
//! genuine near-ties.

use wifiprint_core::metrics::{identification_points, match_candidates, similarity_curve};
use wifiprint_core::{
    evaluate, MatchConfig, NetworkParameter, ReferenceDb, SimilarityMeasure, U8_SCORE_TOLERANCE,
};
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

use wifiprint_analysis::PipelineConfig;

/// AUC aggregates thousands of thresholded score comparisons, so the
/// per-score quantization drift (≤ `U8_SCORE_TOLERANCE`) largely cancels;
/// the pinned gate is an order of magnitude tighter than the per-score
/// bound. Measured drift on this trace is ≈ 1e-4.
const U8_AUC_TOLERANCE: f64 = 5e-3;

/// A trace of `n_dev` devices with close but distinct inter-arrival
/// periods — deliberately *not* trivially separable, so scores land in
/// the interior of [0, 1] where quantisation could matter.
fn synthetic_trace(n_dev: u64, total_us: u64) -> Vec<CapturedFrame> {
    let ap = MacAddr::from_index(999);
    let mut frames = Vec::new();
    for dev in 0..n_dev {
        let addr = MacAddr::from_index(dev + 1);
        let period = 400 + 35 * dev;
        let mut t = 100 + dev * 13;
        while t < total_us {
            let f = Frame::data_to_ds(addr, ap, ap, 200 + dev as usize * 40);
            frames.push(CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(t), -50));
            t += period + (t / 1_000_000) % 7;
        }
    }
    frames.sort_by_key(|f| f.t_end);
    frames
}

#[test]
fn quantized_pipeline_metrics_match_f32_store() {
    let cfg = PipelineConfig::miniature(10, 5, 20);
    let frames = synthetic_trace(6, 40_000_000);

    let param = NetworkParameter::InterArrivalTime;
    let eval_cfg = {
        let mut c = wifiprint_core::EvalConfig::for_parameter(param)
            .with_min_observations(cfg.min_observations)
            .with_measure(cfg.measure);
        c.window = cfg.window;
        c
    };
    let train_cutoff = frames[0].t_end.saturating_add(cfg.train_duration);
    let mut trainer = wifiprint_core::SignatureBuilder::new(&eval_cfg);
    let mut validator = wifiprint_core::WindowedSignatures::new(&eval_cfg);
    for f in &frames {
        if f.t_end < train_cutoff {
            trainer.push(f);
        } else {
            validator.push(f);
        }
    }
    let signatures = trainer.finish().expect("devices qualify");
    let f32_db = ReferenceDb::from_signatures_with(signatures.clone(), MatchConfig::default());
    let u8_db = ReferenceDb::from_signatures_with(signatures, MatchConfig::quantized());
    let candidates = validator.finish();
    assert!(f32_db.len() >= 4, "trace must learn several references");
    assert!(candidates.len() >= 10, "trace must produce many windows");
    // The quantized store must actually be the smaller one.
    assert!(u8_db.row_bytes() * 2 <= f32_db.row_bytes());

    let fast = evaluate(&f32_db, &candidates, SimilarityMeasure::Cosine).expect("non-empty db");
    let quant = evaluate(&u8_db, &candidates, SimilarityMeasure::Cosine).expect("non-empty db");
    assert_eq!(fast.instances, quant.instances);

    // Headline metrics agree within the pinned gate…
    let auc_drift = (fast.auc() - quant.auc()).abs();
    assert!(
        auc_drift < U8_AUC_TOLERANCE,
        "AUC drift {auc_drift} exceeds {U8_AUC_TOLERANCE} (f32 {} vs u8 {})",
        fast.auc(),
        quant.auc()
    );
    // The curves come from the same instance population.
    let (fast_sets, _) = match_candidates(&f32_db, &candidates, SimilarityMeasure::Cosine);
    let (quant_sets, _) = match_candidates(&u8_db, &candidates, SimilarityMeasure::Cosine);
    assert_eq!(fast_sets.len(), quant_sets.len());
    assert!((similarity_curve(&fast_sets, 512).auc - fast.auc()).abs() < 1e-12);
    assert!(identification_points(&quant_sets, 512).last().is_some());

    // …and every per-instance score sits inside the documented
    // tolerance; the best-match identity may only flip where the f32
    // ranking itself was a near-tie, and only for a small minority of
    // instances (this bounds the identification-ratio drift directly:
    // the ratio is flips/instances-grained, so a continuous tolerance
    // would be vacuous or flaky at this population size).
    let mut flips = 0usize;
    for (f, q) in fast_sets.iter().zip(&quant_sets) {
        assert_eq!(f.true_device, q.true_device);
        assert!(
            (f.true_sim - q.true_sim).abs() < U8_SCORE_TOLERANCE,
            "true-sim drift: {} vs {}",
            f.true_sim,
            q.true_sim
        );
        assert!(
            (f.best_sim - q.best_sim).abs() < U8_SCORE_TOLERANCE,
            "best-sim drift: {} vs {}",
            f.best_sim,
            q.best_sim
        );
        if f.best_is_true != q.best_is_true {
            flips += 1;
            let f32_margin = (f.best_sim - f.true_sim).abs();
            assert!(
                f32_margin < 2.0 * U8_SCORE_TOLERANCE,
                "best-match flipped on a clear margin of {f32_margin}"
            );
        }
    }
    let flip_budget = fast_sets.len().div_ceil(20); // ≤ 5% of instances
    assert!(
        flips <= flip_budget,
        "{flips} best-match flips exceed the {flip_budget}-instance near-tie budget"
    );
    let last_fast = fast.ident_points.last().expect("points");
    let last_quant = quant.ident_points.last().expect("points");
    assert!(
        (last_fast.ratio - last_quant.ratio).abs()
            <= flips as f64 / fast_sets.len() as f64 + f64::EPSILON,
        "identification ratio drifted beyond the flip budget: f32 {} vs u8 {}",
        last_fast.ratio,
        last_quant.ratio
    );
}
