//! Linking smoke gate: fixed-seed MAC-randomization linking accuracy
//! over a 1 000-device metropolis slice, plus a release-only 10⁴-device
//! operating point on the quantized tile-wide pruned sweep.
//!
//! CI runs this file as the linking gate. For every policy the trail
//! must reconcile *exactly* against its rotation ledger and the sweep
//! must complete without panics; at the tuned operating point the
//! periodic and per-association policies must hold their pinned
//! precision/recall floors, and the gallery sweeps must demonstrably
//! run through the pruned `match_topk` path.

use wifiprint_analysis::linking::{
    default_policy_grid, evaluate_linking, metropolis_linker_config,
};
#[cfg(not(debug_assertions))]
use wifiprint_analysis::linking::metropolis_linker_config_10k;
use wifiprint_scenarios::{MetropolisScenario, RotationPolicy, RotationScenario};

/// The gate's fixed operating point: seed, population, trail length.
const SEED: u64 = 20_120_711;
const DEVICES: usize = 1000;
const SIGHTINGS: usize = 6;

fn base() -> MetropolisScenario {
    MetropolisScenario::with_devices(SEED, DEVICES)
}

#[test]
fn linking_gate_holds_pinned_floors() {
    let sweep = evaluate_linking(
        &base(),
        SIGHTINGS,
        &[RotationPolicy::Periodic { period: 2 }, RotationPolicy::PerAssociation { burst: 3 }],
        &metropolis_linker_config(),
    )
    .expect("valid gate configuration");

    let periodic = &sweep.points[0];
    // The headline point (ISSUE 8 acceptance): periodic rotation at
    // 10³ devices, fresh-link precision ≥ 0.90. Measured 92.5% at the
    // pinned seed; the floors leave margin for float-order variance
    // across platforms, not for regressions.
    assert!(
        periodic.precision() >= 0.90,
        "periodic precision floor broken: {:.3} < 0.90\n{}",
        periodic.precision(),
        sweep.table()
    );
    assert!(
        periodic.recall() >= 0.75,
        "periodic recall floor broken: {:.3} < 0.75\n{}",
        periodic.recall(),
        sweep.table()
    );
    assert!(periodic.merge_rate() <= 0.08, "merge rate blew up: {:.3}", periodic.merge_rate());

    let burst = &sweep.points[1];
    assert!(
        burst.precision() >= 0.88,
        "per-association precision floor broken: {:.3} < 0.88\n{}",
        burst.precision(),
        sweep.table()
    );
    assert!(
        burst.recall() >= 0.78,
        "per-association recall floor broken: {:.3} < 0.78\n{}",
        burst.recall(),
        sweep.table()
    );

    // The gallery must run through the pruned sweep, not a dense one:
    // at 1 000 spread devices over 32 shards a large majority of
    // shards must be pruned per sweep.
    for p in &sweep.points {
        assert!(p.stats.shards_swept > 0, "{}: no sweeps ran", p.label);
        assert!(
            p.stats.pruned_fraction() >= 0.5,
            "{}: pruned fraction {:.2} — dense sweeping?",
            p.label,
            p.stats.pruned_fraction()
        );
        assert!(p.stats.conserves(), "{}: decision counters leak: {:?}", p.label, p.stats);
    }
}

#[test]
fn rotation_rate_zero_is_the_identity_map() {
    // With no rotation the linker must reduce to plain MAC identity:
    // one identity per device, founded on first sight, every later
    // sighting re-linked by exact binding at confidence 1.0 — no
    // gallery sweeps, no ambiguity, no merges.
    let sweep = evaluate_linking(
        &base(),
        SIGHTINGS,
        &[RotationPolicy::Never],
        &metropolis_linker_config(),
    )
    .expect("valid gate configuration");
    let p = &sweep.points[0];
    assert_eq!(p.rotation_rate, 0.0);
    assert_eq!(p.identities_founded, DEVICES);
    assert_eq!(p.distinct_macs, DEVICES);
    assert_eq!(p.fresh_links, 0);
    assert_eq!(p.precision(), 1.0);
    assert_eq!(p.recall(), 1.0);
    assert_eq!(p.merge_rate(), 0.0);
    assert_eq!(p.stats.ambiguous, 0);
    assert_eq!(p.stats.linked_by_gallery, 0);
    assert_eq!(p.stats.linked_by_mac as usize, DEVICES * (SIGHTINGS - 1));
    assert_eq!(p.stats.shards_swept + p.stats.shards_pruned, 0, "no sweeps at rotation 0");
}

#[test]
fn trails_reconcile_exactly_across_the_policy_grid() {
    for policy in default_policy_grid() {
        let trail = RotationScenario::new(base(), policy).with_sightings(SIGHTINGS).generate();
        trail
            .reconcile()
            .unwrap_or_else(|e| panic!("{} trail failed reconciliation: {e}", policy.label()));
        assert_eq!(trail.sightings.len(), DEVICES * SIGHTINGS);
    }
}

#[test]
fn linker_never_merges_distinct_archetype_devices_on_clean_traces() {
    // Seeded no-merge floor (ISSUE 8 satellite): six devices drawn from
    // *distinct* archetype mixes, each sighted repeatedly under fresh
    // randomized MACs with clean (per-day noise only) signatures. The
    // linker may fragment (miss a link) but must never chain two
    // different devices into one identity.
    use std::collections::BTreeMap;
    use wifiprint_core::engine::linker::{LinkEvent, RotationLinker};
    use wifiprint_core::NetworkParameter;
    use wifiprint_ieee80211::{MacAddr, Nanos};

    let scenario = MetropolisScenario::with_devices(SEED, 4096);
    // Archetypes cycle through the population; stride past the mix
    // period to collect devices with well-separated traffic mixes.
    let picks = [0usize, 683, 1366, 2049, 2732, 3415];
    let mut linker = RotationLinker::new(metropolis_linker_config()).expect("valid config");
    let mut owners: BTreeMap<u64, usize> = BTreeMap::new();
    let mut counter = 0u64;
    for day in 0..8u64 {
        for &device in &picks {
            counter += 1;
            let mac = MacAddr::randomized(SEED ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let sigs =
                [(NetworkParameter::InterArrivalTime, scenario.candidate(device, day))];
            match linker.link(mac, Nanos::from_secs(counter), &sigs) {
                LinkEvent::Linked { identity, .. } => {
                    let owner = owners.get(&identity.0).copied();
                    assert_eq!(
                        owner,
                        Some(device),
                        "identity {identity} founded by device {owner:?} \
                         absorbed device {device} on day {day}"
                    );
                }
                LinkEvent::NewIdentity { identity, .. } => {
                    owners.insert(identity.0, device);
                }
                LinkEvent::Ambiguous { .. } => {}
            }
        }
    }
    assert!(linker.stats().conserves());
}

/// The 10⁴-device operating point (ISSUE 9): the same metropolis
/// population scaled 10×, replayed through the quantized (`u8`) gallery
/// tier over 64 shards so every sweep runs the tile-wide pruned integer
/// kernels at metropolis scale. Release-only: the point of this gate is
/// the tuned operating numbers, and CI runs this file with `--release`;
/// a debug replay of 4×10⁴ sightings would dominate `cargo test`.
///
/// Floors were re-tuned at this density. The 0.995/0.005 accept/margin
/// knee from the 10³ gate still dominates its neighbours here (0.997
/// and 0.993 both lose precision *and* balance), but the 10× denser
/// impostor field costs ~6 points of fresh-link precision: measured
/// 86.1%/80.6% (periodic) and 86.9%/83.4% (per-association)
/// precision/recall at the pinned seed, merge rate 3.8%, 80.8% of
/// shards pruned per sweep. The floors leave margin for float-order
/// variance, not regressions.
#[cfg(not(debug_assertions))]
#[test]
fn linking_gate_holds_at_ten_thousand_devices() {
    const DEVICES_10K: usize = 10_000;
    const SIGHTINGS_10K: usize = 4;
    let sweep = evaluate_linking(
        &MetropolisScenario::with_devices(SEED, DEVICES_10K),
        SIGHTINGS_10K,
        &[RotationPolicy::Periodic { period: 2 }, RotationPolicy::PerAssociation { burst: 3 }],
        &metropolis_linker_config_10k(),
    )
    .expect("valid gate configuration");

    let periodic = &sweep.points[0];
    assert!(
        periodic.precision() >= 0.84,
        "10k periodic precision floor broken: {:.3} < 0.84\n{}",
        periodic.precision(),
        sweep.table()
    );
    assert!(
        periodic.recall() >= 0.77,
        "10k periodic recall floor broken: {:.3} < 0.77\n{}",
        periodic.recall(),
        sweep.table()
    );

    let burst = &sweep.points[1];
    assert!(
        burst.precision() >= 0.84,
        "10k per-association precision floor broken: {:.3} < 0.84\n{}",
        burst.precision(),
        sweep.table()
    );
    assert!(
        burst.recall() >= 0.80,
        "10k per-association recall floor broken: {:.3} < 0.80\n{}",
        burst.recall(),
        sweep.table()
    );

    for p in &sweep.points {
        assert_eq!(p.devices, DEVICES_10K);
        assert!(p.merge_rate() <= 0.06, "{}: merge rate blew up: {:.3}", p.label, p.merge_rate());
        // The whole point of the quantized 64-shard layout: the sweeps
        // must stay overwhelmingly pruned at 10⁴ resident identities.
        assert!(p.stats.shards_swept > 0, "{}: no sweeps ran", p.label);
        assert!(
            p.stats.pruned_fraction() >= 0.75,
            "{}: pruned fraction {:.2} at 10k — dense sweeping?",
            p.label,
            p.stats.pruned_fraction()
        );
        assert!(p.stats.conserves(), "{}: decision counters leak: {:?}", p.label, p.stats);
    }
}
