//! Accuracy-drift gate for the `f32` matching engine.
//!
//! The matching hot path stores reference rows, weights and norms as
//! `f32` (see `wifiprint_core::matching`). This test runs the repro
//! pipeline's scoring on a synthetic multi-device trace twice — once
//! through the packed f32 tiled sweep, once through the all-`f64` naive
//! baseline — and requires the paper's headline accuracy metrics (AUC of
//! the similarity test, identification ratio, per-instance best-match
//! identity) to agree within a tolerance far tighter than any effect the
//! paper reports.

use wifiprint_core::metrics::{identification_points, similarity_curve, MatchSet};
use wifiprint_core::{
    evaluate, NetworkParameter, ReferenceDb, SimilarityMeasure, F32_SCORE_TOLERANCE,
};
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

use wifiprint_analysis::PipelineConfig;

/// AUC (an integral of thresholded score comparisons) may amplify the
/// per-score f32 drift where scores tie near a threshold; in practice it
/// stays orders of magnitude below this.
const AUC_TOLERANCE: f64 = 1e-3;

/// A trace of `n_dev` devices with close but distinct inter-arrival
/// periods — deliberately *not* trivially separable, so scores land in
/// the interior of [0, 1] where quantisation could matter.
fn synthetic_trace(n_dev: u64, total_us: u64) -> Vec<CapturedFrame> {
    let ap = MacAddr::from_index(999);
    let mut frames = Vec::new();
    for dev in 0..n_dev {
        let addr = MacAddr::from_index(dev + 1);
        let period = 400 + 35 * dev;
        let mut t = 100 + dev * 13;
        while t < total_us {
            let f = Frame::data_to_ds(addr, ap, ap, 200 + dev as usize * 40);
            frames.push(CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(t), -50));
            // A mild beat so windows differ from the training prefix.
            t += period + (t / 1_000_000) % 7;
        }
    }
    frames.sort_by_key(|f| f.t_end);
    frames
}

#[test]
fn f32_pipeline_metrics_match_f64_baseline() {
    let cfg = PipelineConfig::miniature(10, 5, 20);
    let frames = synthetic_trace(6, 40_000_000);

    // Reconstruct the pipeline's (db, candidates) split for one
    // parameter so both engines score the identical instances.
    let param = NetworkParameter::InterArrivalTime;
    let eval_cfg = {
        let mut c = wifiprint_core::EvalConfig::for_parameter(param)
            .with_min_observations(cfg.min_observations)
            .with_measure(cfg.measure);
        c.window = cfg.window;
        c
    };
    let train_cutoff = frames[0].t_end.saturating_add(cfg.train_duration);
    let mut trainer = wifiprint_core::SignatureBuilder::new(&eval_cfg);
    let mut validator = wifiprint_core::WindowedSignatures::new(&eval_cfg);
    for f in &frames {
        if f.t_end < train_cutoff {
            trainer.push(f);
        } else {
            validator.push(f);
        }
    }
    let db = ReferenceDb::from_signatures(trainer.finish().expect("devices qualify"));
    let candidates = validator.finish();
    assert!(db.len() >= 4, "trace must learn several references");
    assert!(candidates.len() >= 10, "trace must produce many windows");

    // f32 engine: the production path.
    let fast = evaluate(&db, &candidates, SimilarityMeasure::Cosine).expect("non-empty db");

    // f64 baseline: naive per-pair scoring of the same instances.
    let mut baseline_sets: Vec<MatchSet> = Vec::new();
    for cand in &candidates {
        if !db.contains(&cand.device) {
            continue;
        }
        let outcome = db.match_signature_naive(&cand.signature, SimilarityMeasure::Cosine);
        let mut true_sim = 0.0;
        let mut wrong = Vec::new();
        for &(device, sim) in outcome.similarities() {
            if device == cand.device {
                true_sim = sim;
            } else {
                wrong.push(sim);
            }
        }
        let (best_device, best_sim) = outcome.best().expect("db nonempty");
        baseline_sets.push(MatchSet {
            true_device: cand.device,
            true_sim,
            wrong_sims: wrong,
            best_is_true: best_device == cand.device,
            best_sim,
        });
    }
    assert_eq!(fast.instances, baseline_sets.len());

    // Headline metrics agree within tolerance…
    let baseline_curve = similarity_curve(&baseline_sets, 512);
    let auc_drift = (fast.auc() - baseline_curve.auc).abs();
    assert!(
        auc_drift < AUC_TOLERANCE,
        "AUC drift {auc_drift} exceeds {AUC_TOLERANCE} (f32 {} vs f64 {})",
        fast.auc(),
        baseline_curve.auc
    );
    let baseline_ident = identification_points(&baseline_sets, 512);
    let last_fast = fast.ident_points.last().expect("points");
    let last_base = baseline_ident.last().expect("points");
    assert!((last_fast.ratio - last_base.ratio).abs() < AUC_TOLERANCE);

    // …and so does every per-instance decision and score. The fast sets
    // come back in candidate order, like the baseline loop above.
    let (fast_sets, _) =
        wifiprint_core::metrics::match_candidates(&db, &candidates, SimilarityMeasure::Cosine);
    for (f, b) in fast_sets.iter().zip(&baseline_sets) {
        assert_eq!(f.true_device, b.true_device);
        assert_eq!(f.best_is_true, b.best_is_true, "best-match identity flipped");
        assert!((f.true_sim - b.true_sim).abs() < F32_SCORE_TOLERANCE);
        assert!((f.best_sim - b.best_sim).abs() < F32_SCORE_TOLERANCE);
    }
}
