//! Chaos smoke: a seeded fault-injection matrix over the office and
//! conference scenarios, driven through the full streaming pipeline.
//!
//! For every (trace, seed) cell the sweep must complete without panics,
//! the engine's ingest-health counters must reconcile *exactly* with the
//! injector's fault ledger, and the degraded fused accuracy must stay
//! above a pinned floor. CI runs this file as its chaos gate.

use wifiprint_analysis::robustness::{evaluate_robustness, RobustnessSweep};
use wifiprint_analysis::PipelineConfig;
use wifiprint_core::{MatchConfig, NetworkParameter, ResilienceConfig, SimilarityMeasure};
use wifiprint_ieee80211::Nanos;
use wifiprint_radiotap::CapturedFrame;
use wifiprint_scenarios::{ConferenceScenario, FaultPlan, LossModel, OfficeScenario};

/// The chaos fault matrix: every fault family, one clean control.
fn grid() -> Vec<(String, FaultPlan)> {
    vec![
        ("clean".to_owned(), FaultPlan::clean()),
        ("loss 25%".to_owned(), FaultPlan::clean().with_loss(LossModel::Iid { rate: 0.25 })),
        ("reorder d8".to_owned(), FaultPlan::clean().with_reordering(8, 0.4)),
        ("corrupt 5%".to_owned(), FaultPlan::clean().with_corruption(0.05)),
        ("dup 5%".to_owned(), FaultPlan::clean().with_duplicates(0.05)),
        ("noisy mix".to_owned(), FaultPlan::noisy()),
    ]
}

fn cfg() -> PipelineConfig {
    PipelineConfig {
        train_duration: Nanos::from_secs(60),
        window: Nanos::from_secs(30),
        min_observations: 20,
        measure: SimilarityMeasure::Cosine,
        parameters: vec![
            NetworkParameter::InterArrivalTime,
            NetworkParameter::FrameSize,
            NetworkParameter::MediumAccessTime,
        ],
        match_config: MatchConfig::default(),
        resilience: ResilienceConfig::default(),
        ingest: None,
    }
}

/// Runs the matrix over one trace and checks every invariant the chaos
/// gate pins.
fn check_sweep(name: &str, frames: &[CapturedFrame], seed: u64) -> RobustnessSweep {
    let sweep =
        evaluate_robustness(name, &cfg(), frames, &grid(), seed).expect("chaos sweep runs");
    for point in &sweep.points {
        let health = point.health();
        let label = format!("{name} seed {seed}: {}", point.label);
        // Exact reconciliation: every frame the injector emitted reached
        // the engine, and after `finish` none is still pending.
        assert_eq!(health.frames_seen, point.log.emitted, "{label}: seen vs emitted");
        assert_eq!(
            point.eval.train_frames + point.eval.validation_frames,
            point.log.emitted,
            "{label}: pipeline frame count"
        );
        // Per-family counters match the ledger exactly. (The noisy mix
        // composes faults, where truncated frames can also be lost or
        // displaced, so the single-fault points carry the exact pins.)
        if point.label.starts_with("corrupt") {
            assert!(point.log.corrupted > 0, "{label}: plan injected nothing");
            assert_eq!(health.frames_corrupt, point.log.corrupted, "{label}: corrupt");
            assert_eq!(health.frames_duplicate, 0, "{label}");
        }
        if point.label.starts_with("dup") {
            assert!(point.log.duplicated > 0, "{label}: plan injected nothing");
            assert_eq!(health.frames_duplicate, point.log.duplicated, "{label}: duplicates");
        }
        if point.label.starts_with("reorder") {
            assert!(point.log.inversions > 0, "{label}: plan injected nothing");
            assert_eq!(health.frames_reordered, point.log.inversions, "{label}: inversions");
            assert_eq!(health.frames_late_dropped, 0, "{label}: horizon covers the depth");
        }
        if point.label == "clean" {
            assert_eq!(health.frames_dropped(), 0, "{label}: clean control dropped frames");
            assert_eq!(point.log.emitted, point.log.input, "{label}: clean ledger");
        }
    }
    // Graceful degradation, not collapse: the clean control is accurate
    // and every degraded replica keeps a usable mean AUC.
    let clean_auc = sweep.points[0].mean_auc();
    assert!(clean_auc > 0.80, "{name} seed {seed}: clean AUC = {clean_auc}");
    for point in &sweep.points[1..] {
        let auc = point.mean_auc();
        assert!(auc > 0.60, "{name} seed {seed}: {} AUC = {auc}", point.label);
    }
    // The accuracy-vs-fault-rate table renders one row per fault model.
    let table = sweep.table();
    for (label, _) in grid() {
        assert!(table.contains(&label), "table missing {label}:\n{table}");
    }
    sweep
}

#[test]
fn office_trace_survives_the_fault_matrix() {
    for seed in [11u64, 73] {
        let trace = OfficeScenario::small(seed, 180, 8).run_collect();
        check_sweep("Office", &trace.frames, seed ^ 0xC4A0);
    }
}

#[test]
fn conference_trace_survives_the_fault_matrix() {
    for seed in [5u64, 29] {
        let trace = ConferenceScenario::small(seed, 180, 8).run_collect();
        check_sweep("Conference", &trace.frames, seed ^ 0xC4A0);
    }
}
