//! Overload & panic chaos gate: a fixed-seed matrix of monitor-side
//! failure modes — poison frames that panic the worker, periodic source
//! stalls, overload bursts against a deliberately tiny ring, and a
//! wall-clock watchdog cell — all driven through the supervised ingest
//! front.
//!
//! Every cell must terminate (no hang, no propagated panic), reconcile
//! its health ledger *exactly* against the fault injector's, and the
//! lossless `Block` rows must hold pinned accuracy floors. CI runs this
//! file alongside `chaos_smoke` as the robustness gate.

use std::time::Duration;

use wifiprint_analysis::robustness::evaluate_overload;
use wifiprint_analysis::{evaluate_frames_supervised, PipelineConfig, TraceEvaluation};
use wifiprint_core::{
    EvalOutcome, FusionSpec, IngestConfig, IngestPipeline, MatchConfig, MultiConfig, MultiEngine,
    NetworkParameter, OverloadPolicy, ResilienceConfig, SimilarityMeasure,
};
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;
use wifiprint_scenarios::{is_poison_frame, FaultInjector, FaultPlan, OfficeScenario};

fn cfg() -> PipelineConfig {
    PipelineConfig {
        train_duration: Nanos::from_secs(60),
        window: Nanos::from_secs(30),
        min_observations: 20,
        measure: SimilarityMeasure::Cosine,
        parameters: vec![
            NetworkParameter::InterArrivalTime,
            NetworkParameter::FrameSize,
            NetworkParameter::MediumAccessTime,
        ],
        match_config: MatchConfig::default(),
        resilience: ResilienceConfig::default(),
        ingest: None,
    }
}

fn mean_auc(eval: &TraceEvaluation) -> f64 {
    let outcomes: Vec<f64> =
        eval.outcomes.values().filter(|o| o.instances > 0).map(EvalOutcome::auc).collect();
    outcomes.iter().sum::<f64>() / outcomes.len() as f64
}

/// Poison frames panic the worker mid-sweep and periodic stalls starve
/// whole windows; the pipeline must survive every panic, quarantine
/// exactly the poisoned frames, and keep a usable fused accuracy.
#[test]
fn poison_and_stall_chaos_is_quarantined_with_exact_accounting() {
    let trace = OfficeScenario::small(11, 180, 8).run_collect();
    let plan = FaultPlan::clean()
        .with_poison(0.01)
        .with_stalls(Nanos::from_secs(45), Nanos::from_secs(3));
    let injector = FaultInjector::new(plan, 0x0D0C);
    let (degraded, log) = injector.degrade(&trace.frames);
    assert!(log.poisoned > 0, "poison plan injected nothing");
    assert!(log.stalled > 0, "stall plan swallowed nothing");

    let ingest = IngestConfig::default().with_panic_probe(Some(is_poison_frame));
    let (eval, stats) =
        evaluate_frames_supervised(&cfg().with_ingest(ingest), &degraded).expect("survives");
    // Exact quarantine accounting: one quarantined frame and one worker
    // restart per poison frame, nothing else lost at the front.
    assert_eq!(stats.quarantined, log.poisoned, "quarantine vs poison ledger");
    assert_eq!(stats.worker_restarts, log.poisoned, "restart per panic");
    assert!(stats.worker_restarts >= 1);
    assert_eq!(stats.shed, 0, "Block policy must not shed");
    assert_eq!(eval.health.frames_quarantined, log.poisoned);
    assert_eq!(eval.health.workers_restarted, log.poisoned);
    assert_eq!(eval.health.frames_seen, log.emitted, "seen vs emitted");
    assert_eq!(
        eval.train_frames + eval.validation_frames,
        log.emitted,
        "pipeline frame count"
    );
    // Graceful degradation: a 1% poison rate plus short stalls must not
    // collapse the fused accuracy.
    let auc = mean_auc(&eval);
    assert!(auc > 0.60, "poison+stall AUC = {auc}");
}

/// Overload bursts time-compress the stream while a tiny slow ring
/// forces real sheds; the lossless `Block` row pins the accuracy floor
/// and the shed rows must reconcile their ledger exactly.
#[test]
fn overload_bursts_shed_gracefully_and_reconcile() {
    let trace = OfficeScenario::small(29, 120, 6).run_collect();
    let plan = FaultPlan::clean().with_bursts(Nanos::from_secs(30), Nanos::from_secs(10), 3.0);
    let injector = FaultInjector::new(plan, 0x0D0C);
    let (degraded, log) = injector.degrade(&trace.frames);
    assert!(log.burst > 0, "burst plan warped nothing");

    let mut point_cfg = cfg();
    point_cfg.train_duration = Nanos::from_secs(40);
    point_cfg.window = Nanos::from_secs(20);
    let slow = |policy| {
        IngestConfig::default()
            .with_capacity(8)
            .with_overload(policy)
            .with_sweep_delay(Duration::from_micros(100))
    };
    let grid = vec![
        ("block".to_owned(), IngestConfig::default()),
        ("shed-newest/8".to_owned(), slow(OverloadPolicy::ShedNewest)),
        ("shed-oldest/8".to_owned(), slow(OverloadPolicy::ShedOldest)),
    ];
    let sweep = evaluate_overload("Office", &point_cfg, &degraded, &grid).expect("sweep");

    let block = &sweep.points[0];
    assert_eq!(block.stats.shed, 0, "Block row shed frames");
    assert_eq!(block.health().frames_seen, log.emitted, "Block row seen vs emitted");
    let block_auc = block.mean_auc();
    assert!(block_auc > 0.70, "Block row AUC = {block_auc}");

    for point in &sweep.points[1..] {
        assert!(point.stats.shed > 0, "{}: tiny slow ring never overflowed", point.label);
        // The shed ledger is exact even though the shed *count* depends
        // on real scheduling.
        assert_eq!(
            point.health().frames_shed,
            point.stats.shed,
            "{}: merged ledger vs stats",
            point.label
        );
        assert_eq!(point.stats.submitted, log.emitted, "{}: submitted", point.label);
        assert!(point.stats.shed_rate() < 1.0, "{}: shed everything", point.label);
    }
    // The table renders one row per policy with the load/latency axes.
    let table = sweep.table();
    for (label, _) in &grid {
        assert!(table.contains(label), "table missing {label}:\n{table}");
    }
    assert!(table.contains("Shed rate") && table.contains("Offered kfps"), "table:\n{table}");
}

/// The wall-clock watchdog cell: the source goes silent mid-stream and
/// the deadline tick must seal the open window and keep events flowing
/// without a single further frame.
#[test]
fn the_watchdog_keeps_the_stream_alive_through_a_source_stall() {
    let multi_cfg = MultiConfig::default()
        .with_min_observations(3)
        .with_window(Nanos::from_millis(300));
    let engine = MultiEngine::builder()
        .spec(FusionSpec::all_equal())
        .config(multi_cfg)
        .train_for(Nanos::from_millis(600))
        .resilience(ResilienceConfig::default())
        .build()
        .expect("valid engine configuration");
    let ingest = IngestConfig::default().with_stall_timeout(Some(Duration::from_millis(10)));
    let pipeline = IngestPipeline::spawn(engine, ingest).expect("spawn");

    // 900 ms of traffic: 600 ms of training, then a detection window
    // opens and stays open past the last frame.
    let ap = MacAddr::from_index(99);
    let n = 1800u64;
    for i in 0..n {
        let sta = MacAddr::from_index(i % 3 + 1);
        let f = Frame::data_to_ds(sta, ap, ap, 200 + (i % 5) as usize * 100);
        let captured =
            CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(500 * (i + 1)), -50);
        pipeline.submit(&captured).expect("open pipeline");
    }
    // Wait for the worker to drain the ring, then discard the events the
    // frames themselves produced.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while pipeline.stats().latency_samples < n && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(pipeline.stats().latency_samples, n, "worker drained the ring");
    pipeline.drain_events();

    // Source is now silent: only the watchdog can seal the open window.
    let mut stalled_events = Vec::new();
    while stalled_events.is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        stalled_events.extend(pipeline.drain_events());
    }
    assert!(!stalled_events.is_empty(), "watchdog never delivered the stalled window");
    assert!(pipeline.stats().watchdog_ticks >= 1);

    let report = pipeline.finish().expect("terminates");
    assert!(report.is_reconciled(), "health: {:?}", report.health);
    assert_eq!(report.health.frames_seen, n);
    assert_eq!(report.health.frames_shed, 0);
}
