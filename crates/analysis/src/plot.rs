//! ASCII rendering and CSV export of histograms and similarity curves.

use std::fmt::Write as _;

use wifiprint_core::{CurvePoint, Histogram};

/// Renders a histogram as horizontal ASCII bars, in the spirit of the
/// paper's density plots (Figs. 2, 4–8).
///
/// Only bins inside `[min_x, max_x]` are shown; `rows` caps the number of
/// printed lines by merging adjacent bins when needed.
pub fn histogram_bars(hist: &Histogram, min_x: f64, max_x: f64, rows: usize, width: usize) -> String {
    let points: Vec<(f64, f64)> =
        hist.points().filter(|(x, _)| *x >= min_x && *x <= max_x).collect();
    if points.is_empty() {
        return String::from("(no observations in range)\n");
    }
    let merge = points.len().div_ceil(rows.max(1));
    let merged: Vec<(f64, f64)> = points
        .chunks(merge)
        .map(|chunk| {
            let x = chunk[0].0;
            let y: f64 = chunk.iter().map(|(_, y)| y).sum();
            (x, y)
        })
        .collect();
    let y_max = merged.iter().map(|(_, y)| *y).fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::new();
    for (x, y) in merged {
        let bar_len = ((y / y_max) * width as f64).round() as usize;
        let _ = writeln!(out, "{x:>9.0} µs | {:<width$} {:.4}", "#".repeat(bar_len), y);
    }
    out
}

/// Renders a TPR-vs-FPR similarity curve as a fixed-size ASCII grid
/// (Fig. 3's panels).
pub fn curve_plot(points: &[CurvePoint], width: usize, height: usize) -> String {
    let mut grid = vec![vec![b' '; width]; height];
    // Diagonal for reference.
    for i in 0..width.min(height * 2) {
        let x = i;
        let y = height - 1 - (i * height / width).min(height - 1);
        grid[y][x] = b'.';
    }
    for p in points {
        if !p.fpr.is_finite() || !p.tpr.is_finite() {
            continue;
        }
        let x = ((p.fpr * (width - 1) as f64).round() as usize).min(width - 1);
        let y_up = ((p.tpr * (height - 1) as f64).round() as usize).min(height - 1);
        let y = height - 1 - y_up;
        grid[y][x] = b'*';
    }
    let mut out = String::new();
    let _ = writeln!(out, "TPR");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "1.0"
        } else if i == height - 1 {
            "0.0"
        } else {
            "   "
        };
        let _ = writeln!(out, "{label} |{}|", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "    0.0{}1.0  FPR", " ".repeat(width.saturating_sub(6)));
    out
}

/// Serialises a similarity curve as CSV (`threshold,fpr,tpr`).
pub fn curve_csv(points: &[CurvePoint]) -> String {
    let mut out = String::from("threshold,fpr,tpr\n");
    for p in points {
        let _ = writeln!(out, "{},{},{}", p.threshold, p.fpr, p.tpr);
    }
    out
}

/// Serialises a histogram as CSV (`bin_center,frequency`).
pub fn histogram_csv(hist: &Histogram) -> String {
    let mut out = String::from("bin_center,frequency\n");
    for (x, y) in hist.points() {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_core::BinSpec;

    fn sample_hist() -> Histogram {
        let mut h = Histogram::new(BinSpec::uniform_to(1000.0, 100.0));
        for v in [50.0, 150.0, 150.0, 150.0, 850.0] {
            h.add(v);
        }
        h
    }

    #[test]
    fn bars_scale_to_peak() {
        let out = histogram_bars(&sample_hist(), 0.0, 1000.0, 20, 30);
        let lines: Vec<&str> = out.lines().collect();
        // 10 regular bins + the overflow bin at the range edge.
        assert_eq!(lines.len(), 11);
        // The 150 µs bin is the peak: its bar must be the longest.
        let bar_len = |line: &str| line.matches('#').count();
        let peak = lines.iter().map(|l| bar_len(l)).max().unwrap();
        assert_eq!(bar_len(lines[1]), peak);
        assert_eq!(bar_len(lines[1]), 30);
    }

    #[test]
    fn bars_handle_empty_range() {
        let out = histogram_bars(&sample_hist(), 5000.0, 6000.0, 10, 20);
        assert!(out.contains("no observations"));
    }

    #[test]
    fn curve_plot_marks_endpoints() {
        let points = vec![
            CurvePoint { threshold: 1.0, fpr: 0.0, tpr: 0.0 },
            CurvePoint { threshold: 0.5, fpr: 0.2, tpr: 0.9 },
            CurvePoint { threshold: 0.0, fpr: 1.0, tpr: 1.0 },
        ];
        let out = curve_plot(&points, 40, 10);
        assert!(out.contains('*'));
        assert!(out.lines().count() >= 11);
        // Top-right corner: the (1,1) point.
        let first_row = out.lines().nth(1).unwrap();
        assert!(first_row.contains('*'));
    }

    #[test]
    fn csv_outputs_parse_back() {
        let csv = curve_csv(&[CurvePoint { threshold: 0.5, fpr: 0.25, tpr: 0.75 }]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("0.5,0.25,0.75"));
        let hcsv = histogram_csv(&sample_hist());
        assert_eq!(hcsv.lines().count(), 12); // header + 10 bins + overflow
    }
}
