//! Linking-accuracy evaluation: precision/recall/merge-rate of the
//! [`RotationLinker`] against rotation-policy scenarios, tabled like
//! the paper's §VII spoofing experiments.
//!
//! [`evaluate_linking`] drives a [`MetropolisScenario`] population
//! through a grid of [`RotationPolicy`]s (via
//! [`RotationScenario`](wifiprint_scenarios::RotationScenario)), feeds
//! every sighting to a fresh linker, and scores the decisions against
//! the trail's exact [`RotationLedger`](wifiprint_scenarios::RotationLedger)
//! ground truth:
//!
//! * **precision** — of the *fresh links* (a never-before-seen MAC
//!   chained to a retained identity, i.e. the gallery decisions), the
//!   fraction that chained to an identity founded by the same true
//!   device. A wrong fresh link merges two people's histories — the
//!   privacy-relevant error.
//! * **recall** — of the *linkable* sightings (a fresh MAC whose true
//!   device had already founded an identity), the fraction correctly
//!   linked. Abstentions ([`LinkEvent::Ambiguous`]) and fragmentation
//!   (founding a second identity for the same device) both land here.
//! * **merge rate** — the fraction of founded identities that ended up
//!   owning sightings of more than one true device: the population-level
//!   view of the same error precision counts per decision.
//!
//! Every point also carries the linker's [`LinkerStats`] snapshot —
//! identities retained, evictions, and the pruned-shard accounting of
//! the gallery sweeps — so linking *cost* is visible next to accuracy.

use wifiprint_core::engine::linker::{LinkEvent, LinkerConfig, LinkerStats, RotationLinker};
use wifiprint_core::{CoreError, FusionSpec, MatchConfig, NetworkParameter};
use wifiprint_scenarios::{MetropolisScenario, RotationPolicy, RotationScenario, RotationTrail};

use std::collections::{BTreeMap, BTreeSet};

use crate::tables::render_columns;

/// One evaluated cell: a rotation policy against one population, with
/// the ledger-scored accuracy and the linker's own cost counters.
#[derive(Debug, Clone)]
pub struct LinkingPoint {
    /// Row label (the policy's shape, e.g. `"periodic p2"`).
    pub label: String,
    /// The policy evaluated.
    pub policy: RotationPolicy,
    /// Devices in the population.
    pub devices: usize,
    /// Sightings in the trail.
    pub sightings: usize,
    /// The trail's measured rotation rate (rotations per sighting).
    pub rotation_rate: f64,
    /// Distinct MAC addresses the trail emitted.
    pub distinct_macs: usize,
    /// Fresh links scored (gallery decisions on never-seen MACs).
    pub fresh_links: usize,
    /// Fresh links that chained to the right device's identity.
    pub correct_links: usize,
    /// Linkable sightings (fresh MAC, device already founded).
    pub linkable: usize,
    /// Identities founded over the trail.
    pub identities_founded: usize,
    /// Founded identities that ended up owning >1 true device.
    pub merged_identities: usize,
    /// The linker's counter snapshot at the end of the trail.
    pub stats: LinkerStats,
}

impl LinkingPoint {
    /// Fresh-link precision in `[0, 1]` (`1.0` when no fresh links —
    /// nothing risked, nothing merged).
    pub fn precision(&self) -> f64 {
        if self.fresh_links == 0 {
            1.0
        } else {
            self.correct_links as f64 / self.fresh_links as f64
        }
    }

    /// Linkable recall in `[0, 1]` (`1.0` when nothing was linkable).
    pub fn recall(&self) -> f64 {
        if self.linkable == 0 {
            1.0
        } else {
            self.correct_links as f64 / self.linkable as f64
        }
    }

    /// Fraction of founded identities owning sightings of more than one
    /// true device.
    pub fn merge_rate(&self) -> f64 {
        if self.identities_founded == 0 {
            0.0
        } else {
            self.merged_identities as f64 / self.identities_founded as f64
        }
    }
}

/// A linking sweep: one [`LinkingPoint`] per rotation policy over the
/// same population.
#[derive(Debug, Clone)]
pub struct LinkingSweep {
    /// The seed the population and every trail derive from.
    pub seed: u64,
    /// One point per policy, grid order.
    pub points: Vec<LinkingPoint>,
}

impl LinkingSweep {
    /// Renders the linking table: one row per rotation policy, accuracy
    /// next to the gallery's pruned-sweep cost.
    pub fn table(&self) -> String {
        let mut labels = vec!["Rotation policy".to_owned()];
        let mut rate = vec!["Rot rate".to_owned()];
        let mut macs = vec!["MACs".to_owned()];
        let mut identities = vec!["Identities".to_owned()];
        let mut precision = vec!["Precision".to_owned()];
        let mut recall = vec!["Recall".to_owned()];
        let mut merges = vec!["Merge rate".to_owned()];
        let mut ambiguous = vec!["Ambig".to_owned()];
        let mut evicted = vec!["Evicted".to_owned()];
        let mut pruned = vec!["Pruned".to_owned()];
        for p in &self.points {
            labels.push(p.label.clone());
            rate.push(format!("{:.2}", p.rotation_rate));
            macs.push(p.distinct_macs.to_string());
            identities.push(p.identities_founded.to_string());
            precision.push(format!("{:.1}%", 100.0 * p.precision()));
            recall.push(format!("{:.1}%", 100.0 * p.recall()));
            merges.push(format!("{:.1}%", 100.0 * p.merge_rate()));
            ambiguous.push(p.stats.ambiguous.to_string());
            evicted.push((p.stats.evicted_ttl + p.stats.evicted_cap).to_string());
            pruned.push(format!("{:.0}%", 100.0 * p.stats.pruned_fraction()));
        }
        render_columns(&[
            labels, rate, macs, identities, precision, recall, merges, ambiguous, evicted, pruned,
        ])
    }
}

/// The default policy grid: the control group plus the three real
/// randomization shapes at their common operating points.
pub fn default_policy_grid() -> Vec<RotationPolicy> {
    vec![
        RotationPolicy::Never,
        RotationPolicy::Periodic { period: 2 },
        RotationPolicy::PerAssociation { burst: 3 },
        RotationPolicy::PerSsid { ssids: 2 },
    ]
}

/// The linker configuration the evaluation (and the CI gate) runs:
/// single-parameter inter-arrival-time galleries matching the
/// metropolis signature shape, at the empirically tuned operating point
/// for that population — a strict 0.995 accept threshold plus a 0.005
/// ambiguity margin (single-parameter cosine scores compress near 1.0,
/// so the precision/recall knee sits much higher than the fused
/// default), with gallery evidence accumulation on. At 10³ devices and
/// 6 sightings this holds fresh-link precision ≥ 0.90 across the
/// periodic and burst policies at ~0.83–0.86 recall.
pub fn metropolis_linker_config() -> LinkerConfig {
    LinkerConfig::default()
        .with_spec(FusionSpec::single(NetworkParameter::InterArrivalTime))
        .with_accept_threshold(0.995)
        .with_ambiguity_margin(0.005)
        .with_update_on_link(true)
}

/// The 10⁴-device metropolis operating point: the same single-parameter
/// fusion as [`metropolis_linker_config`], re-laid-out for a gallery an
/// order of magnitude larger. The reference store runs on the quantized
/// `u8` tier ([`MatchConfig::quantized`]) over 64 shards, so every
/// gallery sweep goes through the tile-wide pruned integer kernels —
/// at 10⁴ resident identities that is the difference between a linking
/// replay dominated by dot products and one dominated by bookkeeping.
///
/// The accept/margin knee stays at 0.995/0.005: quantization drift on
/// these dense inter-arrival rows is well under the 7-bit worst case,
/// and the 10× denser impostor field is already absorbed by the strict
/// threshold (precision degrades gracefully; see `linking_smoke` for
/// the pinned floors at this point).
pub fn metropolis_linker_config_10k() -> LinkerConfig {
    metropolis_linker_config().with_match_config(MatchConfig::quantized().with_shards(64))
}

/// Scores one generated trail: reconciles its ledger exactly, replays
/// every sighting through a fresh [`RotationLinker`] under `cfg`, and
/// scores the decisions against ground truth (see the
/// [module docs](self) for the metric definitions).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `cfg` cannot build a linker.
///
/// # Panics
///
/// If the trail fails exact ledger reconciliation — a generator bug,
/// not an input condition.
pub fn evaluate_linking_trail(
    trail: &RotationTrail,
    cfg: LinkerConfig,
) -> Result<LinkingPoint, CoreError> {
    trail.reconcile().expect("rotation trail must reconcile exactly against its ledger");
    let mut linker = RotationLinker::new(cfg)?;
    let mut seen_macs: BTreeSet<_> = BTreeSet::new();
    let mut founded_by: BTreeMap<u64, usize> = BTreeMap::new();
    let mut device_founded: BTreeSet<usize> = BTreeSet::new();
    let mut owners: BTreeMap<u64, BTreeSet<usize>> = BTreeMap::new();
    let mut fresh_links = 0usize;
    let mut correct_links = 0usize;
    let mut linkable = 0usize;
    for s in &trail.sightings {
        let fresh = seen_macs.insert(s.mac);
        if fresh && device_founded.contains(&s.true_device) {
            linkable += 1;
        }
        let sigs = [(NetworkParameter::InterArrivalTime, s.signature.clone())];
        match linker.link(s.mac, s.at, &sigs) {
            LinkEvent::Linked { identity, .. } => {
                owners.entry(identity.0).or_default().insert(s.true_device);
                if fresh {
                    fresh_links += 1;
                    // Linking to *any* identity this device founded (or
                    // a fragment of it) is correct; chaining into
                    // another device's history is the merge error.
                    if founded_by.get(&identity.0) == Some(&s.true_device) {
                        correct_links += 1;
                    }
                }
            }
            LinkEvent::NewIdentity { identity, .. } => {
                founded_by.insert(identity.0, s.true_device);
                owners.entry(identity.0).or_default().insert(s.true_device);
                device_founded.insert(s.true_device);
            }
            LinkEvent::Ambiguous { .. } => {}
        }
    }
    let merged_identities = owners.values().filter(|o| o.len() > 1).count();
    let stats = linker.stats();
    debug_assert!(stats.conserves());
    Ok(LinkingPoint {
        label: format!("{} ({})", trail.policy.label(), policy_detail(trail.policy)),
        policy: trail.policy,
        devices: trail.ledger.devices(),
        sightings: trail.sightings.len(),
        rotation_rate: trail.ledger.rotation_rate(),
        distinct_macs: trail.ledger.distinct_macs(),
        fresh_links,
        correct_links,
        linkable,
        identities_founded: founded_by.len(),
        merged_identities,
        stats,
    })
}

fn policy_detail(policy: RotationPolicy) -> String {
    match policy {
        RotationPolicy::Never => "stable".to_owned(),
        RotationPolicy::Periodic { period } => format!("p{period}"),
        RotationPolicy::PerAssociation { burst } => format!("b{burst}"),
        RotationPolicy::PerSsid { ssids } => format!("s{ssids}"),
    }
}

/// Evaluates a policy grid over one population: one generated trail and
/// one fresh linker per policy, `sightings_per_device` observations of
/// every device.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `cfg` cannot build a linker.
///
/// # Panics
///
/// If a generated trail fails exact ledger reconciliation.
pub fn evaluate_linking(
    base: &MetropolisScenario,
    sightings_per_device: usize,
    policies: &[RotationPolicy],
    cfg: &LinkerConfig,
) -> Result<LinkingSweep, CoreError> {
    let mut points = Vec::with_capacity(policies.len());
    for &policy in policies {
        let trail = RotationScenario::new(base.clone(), policy)
            .with_sightings(sightings_per_device)
            .generate();
        points.push(evaluate_linking_trail(&trail, cfg.clone())?);
    }
    Ok(LinkingSweep { seed: base.seed, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_policy_scores_perfectly() {
        let base = MetropolisScenario::with_devices(41, 60);
        let sweep =
            evaluate_linking(&base, 4, &[RotationPolicy::Never], &metropolis_linker_config())
                .unwrap();
        let p = &sweep.points[0];
        assert_eq!(p.rotation_rate, 0.0);
        assert_eq!(p.precision(), 1.0);
        assert_eq!(p.recall(), 1.0);
        assert_eq!(p.merge_rate(), 0.0);
        assert_eq!(p.identities_founded, 60);
        assert_eq!(p.fresh_links, 0, "stable MACs re-link by binding, never by gallery");
        assert_eq!(p.stats.gate_bypassed, 60);
    }

    #[test]
    fn periodic_policy_links_with_measurable_accuracy() {
        let base = MetropolisScenario::with_devices(42, 120);
        let sweep = evaluate_linking(
            &base,
            6,
            &[RotationPolicy::Periodic { period: 2 }],
            &metropolis_linker_config(),
        )
        .unwrap();
        let p = &sweep.points[0];
        assert!(p.rotation_rate > 0.0);
        assert!(p.fresh_links > 0, "rotation must force gallery decisions: {p:?}");
        assert!(p.linkable > 0);
        assert!(p.precision() > 0.5, "precision collapsed: {p:?}");
        assert!(p.stats.shards_swept > 0, "gallery sweeps must run pruned: {:?}", p.stats);
    }

    #[test]
    fn table_renders_all_policies() {
        let base = MetropolisScenario::with_devices(43, 50);
        let sweep =
            evaluate_linking(&base, 4, &default_policy_grid(), &metropolis_linker_config())
                .unwrap();
        let table = sweep.table();
        for needle in ["Rotation policy", "never", "periodic", "per-assoc", "per-ssid", "Pruned"] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
        assert_eq!(sweep.points.len(), 4);
    }
}
