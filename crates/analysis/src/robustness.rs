//! Robustness evaluation (beyond the paper): fingerprinting accuracy as
//! a function of capture degradation.
//!
//! The paper's §V evaluation assumes a clean monitor: every frame
//! captured exactly once, in order, with faithful timestamps. Real
//! passive captures degrade — monitors drop frames under load, USB
//! batching reorders deliveries, clocks jitter, and truncated or
//! mangled frames slip through. This module quantifies how gracefully
//! the fingerprinting accuracy decays: it wraps a trace in the seeded
//! [`FaultInjector`], runs the full streaming pipeline on each degraded
//! replica under a tolerant ingest configuration, and renders an
//! accuracy-vs-fault-rate table in the style of the paper's Tables
//! II/III.
//!
//! Everything is deterministic in the sweep seed, so a table produced in
//! CI pins exact numbers.
//!
//! A second sweep family, [`evaluate_overload`], measures the other axis
//! of robustness: what happens when the *monitor itself* cannot keep up.
//! Each point runs the full pipeline behind the supervised ingest front
//! ([`IngestPipeline`](wifiprint_core::IngestPipeline)) under a
//! different [`OverloadPolicy`] and ring size, and the table reports
//! accuracy *and latency* against offered load and shed rate. The
//! lossless `Block` row is bit-identical to the synchronous pipeline;
//! the shedding rows show how gracefully accuracy decays when frames
//! must be dropped at the door.

use std::time::Instant;

use wifiprint_core::{
    EngineError, EngineHealth, EvalOutcome, IngestConfig, IngestStats, LateFramePolicy,
    OverloadPolicy, ResilienceConfig,
};
use wifiprint_radiotap::CapturedFrame;
use wifiprint_scenarios::{FaultInjector, FaultLog, FaultPlan, LossModel};

use crate::pipeline::{
    evaluate_frames, evaluate_frames_supervised, PipelineConfig, TraceEvaluation,
};
use crate::tables::render_columns;

/// One evaluated cell of a robustness sweep: a fault plan, the
/// injector's ledger of what it actually did, and the pipeline results
/// on the degraded stream.
#[derive(Debug)]
pub struct RobustnessPoint {
    /// Human-readable fault-model label (e.g. `"loss 25%"`).
    pub label: String,
    /// The fault plan this point was degraded with.
    pub plan: FaultPlan,
    /// The injector's fault ledger for this replica.
    pub log: FaultLog,
    /// Full pipeline results on the degraded stream.
    pub eval: TraceEvaluation,
}

impl RobustnessPoint {
    /// The engine's ingest-health counters for this point.
    pub fn health(&self) -> EngineHealth {
        self.eval.health
    }

    /// Mean AUC over the parameters that produced candidate instances.
    pub fn mean_auc(&self) -> f64 {
        mean(self.eval.outcomes.values().filter(|o| o.instances > 0).map(EvalOutcome::auc))
    }

    /// Mean identification ratio at the given FPR over the parameters
    /// that produced candidate instances.
    pub fn mean_identification(&self, fpr: f64) -> f64 {
        mean(
            self.eval
                .outcomes
                .values()
                .filter(|o| o.instances > 0)
                .map(|o| o.identification_at_fpr(fpr)),
        )
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0u32);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / f64::from(n)
    }
}

/// A full accuracy-vs-fault-rate sweep over one trace.
#[derive(Debug)]
pub struct RobustnessSweep {
    /// Trace name (e.g. `"Office 2"`).
    pub trace: String,
    /// The seed every fault replica derives from.
    pub seed: u64,
    /// One point per fault plan, grid order.
    pub points: Vec<RobustnessPoint>,
}

impl RobustnessSweep {
    /// Renders the accuracy-vs-fault-rate table: one row per fault
    /// model, with the injector/ingest frame accounting next to the
    /// paper's two accuracy metrics (averaged over the evaluated
    /// parameters).
    pub fn table(&self) -> String {
        let mut labels = vec![format!("{} fault model", self.trace)];
        let mut emitted = vec!["Frames".to_owned()];
        let mut dropped = vec!["Dropped".to_owned()];
        let mut degraded = vec!["Degr. wins".to_owned()];
        let mut auc = vec!["AUC".to_owned()];
        let mut ident = vec!["Ident@0.1".to_owned()];
        for p in &self.points {
            labels.push(p.label.clone());
            emitted.push(p.log.emitted.to_string());
            dropped.push(p.eval.health.frames_dropped().to_string());
            degraded.push(p.eval.health.windows_degraded.to_string());
            auc.push(format!("{:.1}%", 100.0 * p.mean_auc()));
            ident.push(format!("{:.1}%", 100.0 * p.mean_identification(0.1)));
        }
        render_columns(&[labels, emitted, dropped, degraded, auc, ident])
    }
}

/// The default fault grid: i.i.d. loss from 0 to 50%, a Gilbert–Elliott
/// burst-loss regime, two reordering depths, two corruption rates, and
/// the kitchen-sink [`FaultPlan::noisy`] mix.
pub fn default_fault_grid() -> Vec<(String, FaultPlan)> {
    let iid = |rate| FaultPlan::clean().with_loss(LossModel::Iid { rate });
    vec![
        ("clean".to_owned(), FaultPlan::clean()),
        ("loss 10%".to_owned(), iid(0.10)),
        ("loss 25%".to_owned(), iid(0.25)),
        ("loss 50%".to_owned(), iid(0.50)),
        (
            "burst loss".to_owned(),
            FaultPlan::clean().with_loss(LossModel::GilbertElliott {
                enter_bad: 0.02,
                exit_bad: 0.25,
                loss_good: 0.01,
                loss_bad: 0.8,
            }),
        ),
        ("reorder d4".to_owned(), FaultPlan::clean().with_reordering(4, 0.3)),
        ("reorder d16".to_owned(), FaultPlan::clean().with_reordering(16, 0.5)),
        ("corrupt 2%".to_owned(), FaultPlan::clean().with_corruption(0.02)),
        ("corrupt 10%".to_owned(), FaultPlan::clean().with_corruption(0.10)),
        ("noisy mix".to_owned(), FaultPlan::noisy()),
    ]
}

/// One evaluated cell of an overload sweep: an ingest configuration,
/// the pipeline's ingest statistics under it, and the accuracy results
/// on whatever survived the ring.
#[derive(Debug)]
pub struct OverloadPoint {
    /// Human-readable ingest-configuration label (e.g. `"shed-oldest/8"`).
    pub label: String,
    /// The overload policy this point ran under.
    pub policy: OverloadPolicy,
    /// Offered load in frames per wall-clock second for this run.
    pub offered_fps: f64,
    /// The supervised pipeline's ingest statistics (sheds, queueing
    /// latency, watchdog ticks).
    pub stats: IngestStats,
    /// Full pipeline results on the frames that reached the engine.
    pub eval: TraceEvaluation,
}

impl OverloadPoint {
    /// The merged ingest-health ledger for this point (includes
    /// `frames_shed` / `frames_quarantined` / `workers_restarted`).
    pub fn health(&self) -> EngineHealth {
        self.eval.health
    }

    /// Mean AUC over the parameters that produced candidate instances.
    pub fn mean_auc(&self) -> f64 {
        mean(self.eval.outcomes.values().filter(|o| o.instances > 0).map(EvalOutcome::auc))
    }

    /// Mean identification ratio at the given FPR over the parameters
    /// that produced candidate instances.
    pub fn mean_identification(&self, fpr: f64) -> f64 {
        mean(
            self.eval
                .outcomes
                .values()
                .filter(|o| o.instances > 0)
                .map(|o| o.identification_at_fpr(fpr)),
        )
    }
}

/// A full accuracy-and-latency-vs-offered-load sweep over one trace.
#[derive(Debug)]
pub struct OverloadSweep {
    /// Trace name (e.g. `"Office 2"`).
    pub trace: String,
    /// One point per ingest configuration, grid order.
    pub points: Vec<OverloadPoint>,
}

impl OverloadSweep {
    /// Renders the overload table: one row per ingest configuration,
    /// with offered load, shed accounting and queueing latency next to
    /// the paper's two accuracy metrics.
    pub fn table(&self) -> String {
        let mut labels = vec![format!("{} ingest policy", self.trace)];
        let mut offered = vec!["Offered kfps".to_owned()];
        let mut shed = vec!["Shed".to_owned()];
        let mut shed_rate = vec!["Shed rate".to_owned()];
        let mut latency = vec!["Queue \u{b5}s".to_owned()];
        let mut auc = vec!["AUC".to_owned()];
        let mut ident = vec!["Ident@0.1".to_owned()];
        for p in &self.points {
            labels.push(p.label.clone());
            offered.push(format!("{:.1}", p.offered_fps / 1000.0));
            shed.push(p.stats.shed.to_string());
            shed_rate.push(format!("{:.1}%", 100.0 * p.stats.shed_rate()));
            latency.push(format!("{:.0}", p.stats.mean_latency_ns() / 1000.0));
            auc.push(format!("{:.1}%", 100.0 * p.mean_auc()));
            ident.push(format!("{:.1}%", 100.0 * p.mean_identification(0.1)));
        }
        render_columns(&[labels, offered, shed, shed_rate, latency, auc, ident])
    }
}

/// The default overload grid: a lossless `Block` baseline on the
/// default ring, then both shedding policies on a deliberately tiny
/// ring with an artificial per-frame sweep delay so the submitter
/// outruns the worker and the ring actually overflows.
pub fn default_overload_grid() -> Vec<(String, IngestConfig)> {
    let slow = |policy| {
        IngestConfig::default()
            .with_capacity(8)
            .with_overload(policy)
            .with_sweep_delay(std::time::Duration::from_micros(100))
    };
    vec![
        ("block".to_owned(), IngestConfig::default()),
        ("shed-newest/8".to_owned(), slow(OverloadPolicy::ShedNewest)),
        ("shed-oldest/8".to_owned(), slow(OverloadPolicy::ShedOldest)),
    ]
}

/// Runs the full supervised pipeline on `frames` once per ingest
/// configuration in `grid` and collects accuracy, shed accounting and
/// queueing latency for each.
///
/// Accuracy on a `Block` point is exactly the synchronous pipeline's
/// (the ingest front is lossless and bit-identical there). Shed counts
/// on the shedding points depend on real scheduling, so they are
/// reported — and their ledger checked — but not pinned to exact
/// values.
///
/// # Errors
///
/// [`EngineError`] from building or driving the underlying engine.
pub fn evaluate_overload(
    trace: &str,
    cfg: &PipelineConfig,
    frames: &[CapturedFrame],
    grid: &[(String, IngestConfig)],
) -> Result<OverloadSweep, EngineError> {
    let mut points = Vec::with_capacity(grid.len());
    for (label, ingest) in grid {
        let point_cfg = cfg.clone().with_ingest(*ingest);
        let start = Instant::now();
        let (eval, stats) = evaluate_frames_supervised(&point_cfg, frames)?;
        let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
        points.push(OverloadPoint {
            label: label.clone(),
            policy: ingest.overload,
            offered_fps: frames.len() as f64 / elapsed,
            stats,
            eval,
        });
    }
    Ok(OverloadSweep { trace: trace.to_owned(), points })
}

/// Degrades `frames` under every plan in `grid` (deterministically from
/// `seed`) and runs the full streaming pipeline on each replica.
///
/// The clean baseline runs under the caller's configured
/// [`ResilienceConfig`], so its row is exactly the undisturbed pipeline.
/// Every degraded replica runs under a tolerant ingest whose reordering
/// horizon covers the plan's displacement depth — the engine absorbs
/// what it can and degrades gracefully past that, which is the behaviour
/// this sweep measures.
///
/// # Errors
///
/// [`EngineError`] from building or driving the underlying engine.
pub fn evaluate_robustness(
    trace: &str,
    cfg: &PipelineConfig,
    frames: &[CapturedFrame],
    grid: &[(String, FaultPlan)],
    seed: u64,
) -> Result<RobustnessSweep, EngineError> {
    let mut points = Vec::with_capacity(grid.len());
    for (i, (label, plan)) in grid.iter().enumerate() {
        let injector = FaultInjector::new(plan.clone(), seed.wrapping_add(i as u64));
        let (degraded, log) = injector.degrade(frames);
        let point_cfg = if plan.is_clean() {
            cfg.clone()
        } else {
            let horizon = (4 * plan.reorder_depth).max(64);
            cfg.clone().with_resilience(
                ResilienceConfig::tolerant()
                    .with_late_policy(LateFramePolicy::Reorder { max_lateness: horizon }),
            )
        };
        let eval = evaluate_frames(&point_cfg, &degraded)?;
        points.push(RobustnessPoint { label: label.clone(), plan: plan.clone(), log, eval });
    }
    Ok(RobustnessSweep { trace: trace.to_owned(), seed, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_core::{MatchConfig, NetworkParameter, SimilarityMeasure};
    use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};

    /// Four devices with distinct inter-arrival and size signatures.
    fn trace() -> Vec<CapturedFrame> {
        let ap = MacAddr::from_index(99);
        let mut frames = Vec::new();
        let spec = [(400u64, 200usize), (550, 600), (700, 350), (850, 900)];
        for (dev, &(period, payload)) in spec.iter().enumerate() {
            let addr = MacAddr::from_index(dev as u64 + 1);
            let mut t = 1000 + dev as u64 * 53;
            while t < 30_000_000 {
                let f = Frame::data_to_ds(addr, ap, ap, payload);
                frames.push(CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(t), -50));
                t += period;
            }
        }
        frames.sort_by_key(|f| f.t_end);
        frames
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            train_duration: Nanos::from_secs(10),
            window: Nanos::from_secs(5),
            min_observations: 20,
            measure: SimilarityMeasure::Cosine,
            parameters: vec![NetworkParameter::InterArrivalTime, NetworkParameter::FrameSize],
            match_config: MatchConfig::default(),
            resilience: ResilienceConfig::default(),
            ingest: None,
        }
    }

    #[test]
    fn the_clean_point_is_the_undisturbed_pipeline() {
        let frames = trace();
        let grid = vec![("clean".to_owned(), FaultPlan::clean())];
        let sweep = evaluate_robustness("Synthetic", &cfg(), &frames, &grid, 7).expect("sweep");
        let point = &sweep.points[0];
        assert_eq!(point.log.emitted as usize, frames.len());
        assert_eq!(point.log.lost, 0);
        let plain = evaluate_frames(&cfg(), &frames).expect("plain pipeline");
        for (param, outcome) in &plain.outcomes {
            assert_eq!(outcome.auc(), point.eval.outcomes[param].auc(), "{param:?} AUC");
        }
        assert_eq!(point.health(), plain.health);
    }

    #[test]
    fn health_counters_reconcile_with_the_fault_ledger() {
        let frames = trace();
        let grid = vec![
            ("corrupt".to_owned(), FaultPlan::clean().with_corruption(0.05)),
            ("reorder".to_owned(), FaultPlan::clean().with_reordering(6, 0.4)),
            ("dup".to_owned(), FaultPlan::clean().with_duplicates(0.05)),
        ];
        let sweep = evaluate_robustness("Synthetic", &cfg(), &frames, &grid, 11).expect("sweep");
        let corrupt = &sweep.points[0];
        assert!(corrupt.log.corrupted > 0, "corruption plan did nothing");
        assert_eq!(corrupt.health().frames_corrupt, corrupt.log.corrupted);
        let reorder = &sweep.points[1];
        assert!(reorder.log.inversions > 0, "reorder plan did nothing");
        assert_eq!(reorder.health().frames_reordered, reorder.log.inversions);
        let dup = &sweep.points[2];
        assert!(dup.log.duplicated > 0, "duplicate plan did nothing");
        assert_eq!(dup.health().frames_duplicate, dup.log.duplicated);
        for p in &sweep.points {
            assert_eq!(p.health().frames_seen, p.log.emitted, "{}: seen vs emitted", p.label);
        }
    }

    #[test]
    fn the_block_overload_point_matches_the_synchronous_pipeline() {
        let frames = trace();
        let grid = vec![("block".to_owned(), IngestConfig::default())];
        let sweep = evaluate_overload("Synthetic", &cfg(), &frames, &grid).expect("sweep");
        let point = &sweep.points[0];
        assert_eq!(point.stats.shed, 0);
        assert_eq!(point.stats.submitted as usize, frames.len());
        let plain = evaluate_frames(&cfg(), &frames).expect("plain pipeline");
        for (param, outcome) in &plain.outcomes {
            assert_eq!(outcome.auc(), point.eval.outcomes[param].auc(), "{param:?} AUC");
        }
        assert_eq!(point.health().frames_shed, 0);
        assert_eq!(point.health().frames_seen, plain.health.frames_seen);
    }

    #[test]
    fn shedding_points_overflow_the_tiny_ring_and_keep_the_ledger_exact() {
        let frames = trace();
        let slow = IngestConfig::default()
            .with_capacity(4)
            .with_overload(OverloadPolicy::ShedOldest)
            .with_sweep_delay(std::time::Duration::from_micros(200));
        let grid = vec![("shed-oldest/4".to_owned(), slow)];
        let sweep = evaluate_overload("Synthetic", &cfg(), &frames, &grid).expect("sweep");
        let point = &sweep.points[0];
        assert!(point.stats.shed > 0, "tiny slow ring never overflowed");
        assert_eq!(point.health().frames_shed, point.stats.shed);
        assert_eq!(point.health().frames_seen as usize, frames.len());
        assert!(point.stats.shed_rate() > 0.0 && point.stats.shed_rate() < 1.0);
        let table = sweep.table();
        assert!(table.contains("shed-oldest/4"), "table:\n{table}");
        assert!(table.contains("Shed rate") && table.contains("Queue \u{b5}s"), "table:\n{table}");
    }

    #[test]
    fn accuracy_survives_moderate_loss_and_the_table_lists_every_row() {
        let frames = trace();
        let grid = vec![
            ("clean".to_owned(), FaultPlan::clean()),
            ("loss 25%".to_owned(), FaultPlan::clean().with_loss(LossModel::Iid { rate: 0.25 })),
        ];
        let sweep = evaluate_robustness("Synthetic", &cfg(), &frames, &grid, 42).expect("sweep");
        let clean = sweep.points[0].mean_auc();
        let lossy = sweep.points[1].mean_auc();
        assert!(clean > 0.9, "clean AUC = {clean}");
        // Histogram shapes survive thinning: accuracy decays, it does
        // not collapse.
        assert!(lossy > 0.8, "25%-loss AUC = {lossy}");
        let table = sweep.table();
        assert!(table.contains("clean") && table.contains("loss 25%"), "table:\n{table}");
        assert!(table.contains("AUC") && table.contains("Ident@0.1"), "table:\n{table}");
    }
}
