//! The end-to-end evaluation pipeline of §V: split a trace into training
//! and validation portions, learn a reference database, build per-window
//! candidate signatures, and score both tests for every network parameter
//! in one streaming pass.
//!
//! Since the fused [`MultiEngine`] became the production API, this
//! pipeline is a thin driver of **one** engine: a single fused header
//! parse per frame feeds all configured parameters (trained online for
//! the configured prefix), one shared window clock closes their
//! detection windows together, and the per-parameter decisions carried
//! by each [`MultiEvent::FusedMatch`] / [`MultiEvent::FusedNewDevice`]
//! are accumulated into [`MatchSet`]s and aggregated into the paper's
//! two accuracy tests at the end. The matching itself — the tiled `f32`
//! SIMD sweep — happens *incrementally* as each detection window closes,
//! not in an end-of-trace sweep. (The previous design ran five
//! single-parameter engines side by side, one worker thread each; the
//! fused parse made that fan-out redundant — extraction and history
//! bookkeeping now happen once per frame instead of five times.)

use std::collections::BTreeMap;

use wifiprint_core::{
    EngineError, EngineHealth, EvalOutcome, FusionSpec, IngestConfig, IngestPipeline, IngestStats,
    MatchConfig, MatchSet, MultiConfig, MultiEngine, MultiEvent, NetworkParameter, ReferenceDb,
    ResilienceConfig, SimilarityMeasure,
};
use wifiprint_ieee80211::Nanos;
use wifiprint_radiotap::CapturedFrame;

/// Pipeline settings; the defaults follow the paper (§V-A).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Length of the training prefix (1 h for the 7-hour traces, 20 min
    /// for the 1-hour traces).
    pub train_duration: Nanos,
    /// Detection window length (5 minutes).
    pub window: Nanos,
    /// Minimum observations per signature (50).
    pub min_observations: u64,
    /// Histogram similarity measure (cosine).
    pub measure: SimilarityMeasure,
    /// The parameters to evaluate (all five by default).
    pub parameters: Vec<NetworkParameter>,
    /// Shard layout of the per-parameter reference databases the
    /// training prefix builds (dominant-histogram sharding by default;
    /// see [`MatchConfig`]).
    pub match_config: MatchConfig,
    /// Ingest hardening for the underlying engine (late-frame policy,
    /// duplicate suppression, runt gate, degraded-fusion quorum). The
    /// default is strict — identical to the engine's historical
    /// behaviour; use [`ResilienceConfig::tolerant`] when the frame
    /// source is a degraded capture.
    pub resilience: ResilienceConfig,
    /// When set, [`evaluate_frames`] runs the engine behind the
    /// supervised ingest front ([`IngestPipeline`]) with this
    /// configuration — bounded ring, overload policy, panic isolation,
    /// stall watchdog. `None` (the default) drives the engine
    /// synchronously.
    pub ingest: Option<IngestConfig>,
}

impl PipelineConfig {
    /// The paper's configuration for a 7-hour trace: first hour trains.
    pub fn long_trace() -> Self {
        PipelineConfig {
            train_duration: Nanos::from_secs(3600),
            window: Nanos::from_secs(300),
            min_observations: 50,
            measure: SimilarityMeasure::Cosine,
            parameters: NetworkParameter::ALL.to_vec(),
            match_config: MatchConfig::default(),
            resilience: ResilienceConfig::default(),
            ingest: None,
        }
    }

    /// The paper's configuration for a 1-hour trace: first 20 minutes
    /// train.
    pub fn short_trace() -> Self {
        PipelineConfig { train_duration: Nanos::from_secs(1200), ..Self::long_trace() }
    }

    /// A miniature configuration for tests: `train` seconds of training,
    /// `window` second windows, a lowered observation floor.
    pub fn miniature(train_secs: u64, window_secs: u64, min_obs: u64) -> Self {
        PipelineConfig {
            train_duration: Nanos::from_secs(train_secs),
            window: Nanos::from_secs(window_secs),
            min_observations: min_obs,
            measure: SimilarityMeasure::Cosine,
            parameters: NetworkParameter::ALL.to_vec(),
            match_config: MatchConfig::default(),
            resilience: ResilienceConfig::default(),
            ingest: None,
        }
    }

    /// Swaps in a different ingest-hardening configuration (builder
    /// style), e.g. [`ResilienceConfig::tolerant`] for degraded
    /// captures.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Runs the engine behind the supervised ingest front with the
    /// given configuration (builder style); see
    /// [`PipelineConfig::ingest`].
    pub fn with_ingest(mut self, ingest: IngestConfig) -> Self {
        self.ingest = Some(ingest);
        self
    }

    /// The shared engine configuration this pipeline projects onto a
    /// [`MultiEngine`].
    pub(crate) fn multi_config(&self) -> MultiConfig {
        MultiConfig::default()
            .with_min_observations(self.min_observations)
            .with_measure(self.measure)
            .with_window(self.window)
            .with_match_config(self.match_config)
    }
}

/// Everything measured for one trace: per-parameter outcomes plus the
/// Table I-style features.
#[derive(Debug)]
pub struct TraceEvaluation {
    /// Per-parameter test outcomes.
    pub outcomes: BTreeMap<NetworkParameter, EvalOutcome>,
    /// Reference databases (kept for follow-up matching, e.g. examples).
    pub databases: BTreeMap<NetworkParameter, ReferenceDb>,
    /// Number of reference devices (per parameter they can differ
    /// slightly; this is the inter-arrival count the paper tabulates).
    pub ref_devices: usize,
    /// Candidate instances evaluated per parameter.
    pub candidate_instances: BTreeMap<NetworkParameter, usize>,
    /// Frames fed to the training phase.
    pub train_frames: u64,
    /// Frames fed to the validation phase.
    pub validation_frames: u64,
    /// The engine's ingest-health counters for the whole run: duplicates
    /// suppressed, runts rejected, late frames dropped, reordered frames
    /// restored, windows fused degraded.
    pub health: EngineHealth,
}

impl TraceEvaluation {
    /// AUC of the similarity test for one parameter (Table II).
    pub fn auc(&self, parameter: NetworkParameter) -> f64 {
        self.outcomes[&parameter].auc()
    }

    /// Identification ratio at a target FPR for one parameter (Table III).
    pub fn identification(&self, parameter: NetworkParameter, fpr: f64) -> f64 {
        self.outcomes[&parameter].identification_at_fpr(fpr)
    }
}

/// Per-parameter accumulator of the engine's window decisions.
#[derive(Debug, Default)]
struct ParamCollector {
    sets: Vec<MatchSet>,
    unknown: usize,
}

/// Streaming evaluator: push every captured frame once (in capture
/// order); one fused [`MultiEngine`] extracts every configured parameter
/// from that single pass, and every detection window is matched the
/// moment it closes.
#[derive(Debug)]
pub struct StreamingEvaluator {
    engine: MultiEngine,
    /// One collector per configured parameter, engine spec order.
    collectors: Vec<(NetworkParameter, ParamCollector)>,
    /// First engine failure, latched so `push` stays usable inside
    /// infallible capture sinks.
    error: Option<EngineError>,
    origin: Option<Nanos>,
    train_duration: Nanos,
    train_frames: u64,
    validation_frames: u64,
}

impl StreamingEvaluator {
    /// A fresh evaluator for the given pipeline configuration.
    ///
    /// # Errors
    ///
    /// [`EngineError`] when the configuration cannot drive an engine
    /// (zero-length detection window or training prefix, a repeated
    /// parameter).
    pub fn new(cfg: &PipelineConfig) -> Result<Self, EngineError> {
        let engine = build_multi_engine(cfg)?;
        Ok(StreamingEvaluator {
            engine,
            collectors: cfg
                .parameters
                .iter()
                .map(|&p| (p, ParamCollector::default()))
                .collect(),
            error: None,
            origin: None,
            train_duration: cfg.train_duration,
            train_frames: 0,
            validation_frames: 0,
        })
    }

    /// Processes one captured frame. Engine failures (e.g. out-of-order
    /// frames) latch and surface from [`StreamingEvaluator::finish`];
    /// subsequent frames are ignored.
    pub fn push(&mut self, frame: &CapturedFrame) {
        let origin = *self.origin.get_or_insert(frame.t_end);
        if frame.t_end.saturating_sub(origin) < self.train_duration {
            self.train_frames += 1;
        } else {
            self.validation_frames += 1;
        }
        if self.error.is_some() {
            return;
        }
        match self.engine.observe(frame) {
            Ok(events) => absorb(&mut self.collectors, &events),
            Err(e) => self.error = Some(e),
        }
    }

    /// Finalises: seals the trailing window and aggregates the
    /// accumulated per-window decisions into both of the paper's tests
    /// per parameter. The matching work already happened online, window
    /// by window, as frames were pushed.
    ///
    /// # Errors
    ///
    /// The first engine failure encountered during the run.
    pub fn finish(self) -> Result<TraceEvaluation, EngineError> {
        let StreamingEvaluator {
            mut engine,
            mut collectors,
            error,
            train_frames,
            validation_frames,
            ..
        } = self;
        if let Some(e) = error {
            return Err(e);
        }
        let events = engine.finish()?;
        absorb(&mut collectors, &events);
        let health = engine.health();
        let databases = engine.into_references();
        Ok(finalize(collectors, databases, health, train_frames, validation_frames))
    }
}

/// Builds the fused engine a [`PipelineConfig`] describes (shared by the
/// synchronous and supervised paths).
fn build_multi_engine(cfg: &PipelineConfig) -> Result<MultiEngine, EngineError> {
    MultiEngine::builder()
        .spec(FusionSpec::equal_weights(cfg.parameters.iter().copied()))
        .config(cfg.multi_config())
        .train_for(cfg.train_duration)
        .resilience(cfg.resilience.clone())
        // The accuracy tests only *count* unknown candidates, so
        // skip the reference sweep for them (the batch pipeline
        // never scored strangers either).
        .score_unknown(false)
        .build()
}

/// Aggregates the accumulated per-window decisions into the paper's two
/// tests per parameter and assembles the [`TraceEvaluation`].
fn finalize(
    collectors: Vec<(NetworkParameter, ParamCollector)>,
    mut databases: BTreeMap<NetworkParameter, ReferenceDb>,
    health: EngineHealth,
    train_frames: u64,
    validation_frames: u64,
) -> TraceEvaluation {
    let work: Vec<(NetworkParameter, ReferenceDb, ParamCollector)> = collectors
        .into_iter()
        .map(|(param, collector)| {
            let db = databases.remove(&param).unwrap_or_default();
            (param, db, collector)
        })
        .collect();
    let results = aggregate_parameters(work);

    let mut outcomes = BTreeMap::new();
    let mut databases = BTreeMap::new();
    let mut candidate_instances = BTreeMap::new();
    let mut ref_devices = 0usize;
    for (param, db, outcome) in results {
        if param == NetworkParameter::InterArrivalTime {
            ref_devices = db.len();
        }
        candidate_instances.insert(param, outcome.instances);
        outcomes.insert(param, outcome);
        databases.insert(param, db);
    }
    // Fallback if inter-arrival was not evaluated.
    if ref_devices == 0 {
        ref_devices = databases.values().map(ReferenceDb::len).max().unwrap_or(0);
    }
    TraceEvaluation {
        outcomes,
        databases,
        ref_devices,
        candidate_instances,
        train_frames,
        validation_frames,
        health,
    }
}

/// Folds a batch of fused events into the per-parameter collectors: each
/// event's [`ParameterDecision`](wifiprint_core::ParameterDecision) list
/// carries one entry per parameter the candidate qualified for, flagged
/// with per-parameter enrollment — exactly the Match/NewDevice split the
/// five single engines used to report.
fn absorb(collectors: &mut [(NetworkParameter, ParamCollector)], events: &[MultiEvent]) {
    for event in events {
        let (device, scores) = match event {
            MultiEvent::FusedMatch { device, scores, .. }
            | MultiEvent::FusedNewDevice { device, scores, .. } => (device, scores),
            MultiEvent::Enrolled { .. } | MultiEvent::WindowClosed { .. } => continue,
        };
        for decision in scores {
            let Some((_, collector)) =
                collectors.iter_mut().find(|(p, _)| *p == decision.parameter)
            else {
                continue;
            };
            if decision.known {
                // Enrolled devices carry ground truth; the accuracy
                // tests are defined over them.
                collector
                    .sets
                    .push(MatchSet::from_similarities(*device, decision.view.similarities()));
            } else {
                collector.unknown += 1;
            }
        }
    }
}

/// Aggregates each parameter's accumulated match sets into an
/// [`EvalOutcome`] (threshold sweeps over every decision), in parallel
/// when the feature allows it. Results keep the input order.
fn aggregate_parameters(
    work: Vec<(NetworkParameter, ReferenceDb, ParamCollector)>,
) -> Vec<(NetworkParameter, ReferenceDb, EvalOutcome)> {
    let run = |(param, db, collector): (NetworkParameter, ReferenceDb, ParamCollector)| {
        let outcome = EvalOutcome::from_match_sets(&collector.sets, collector.unknown);
        (param, db, outcome)
    };
    #[cfg(feature = "parallel")]
    if work.len() > 1 {
        return std::thread::scope(|scope| {
            let handles: Vec<_> =
                work.into_iter().map(|item| scope.spawn(move || run(item))).collect();
            handles.into_iter().map(|h| h.join().expect("parameter worker panicked")).collect()
        });
    }
    work.into_iter().map(run).collect()
}

/// Convenience: evaluates an in-memory frame sequence. When
/// [`PipelineConfig::ingest`] is set, the run goes through the
/// supervised ingest front ([`evaluate_frames_supervised`]).
///
/// # Errors
///
/// [`EngineError`] from building or driving the underlying engine.
pub fn evaluate_frames<'a>(
    cfg: &PipelineConfig,
    frames: impl IntoIterator<Item = &'a CapturedFrame>,
) -> Result<TraceEvaluation, EngineError> {
    if cfg.ingest.is_some() {
        return evaluate_frames_supervised(cfg, frames).map(|(eval, _)| eval);
    }
    let mut ev = StreamingEvaluator::new(cfg)?;
    for f in frames {
        ev.push(f);
    }
    ev.finish()
}

/// Evaluates a frame sequence through the supervised ingest front: the
/// fused engine runs on its worker thread behind the bounded ring
/// described by [`PipelineConfig::ingest`] (defaulted when `None`), with
/// back-pressure or shedding, panic isolation and the stall watchdog
/// active. Returns the usual [`TraceEvaluation`] — its `health` is the
/// *merged* ledger, including shed/quarantined/restarted counters —
/// plus the pipeline's [`IngestStats`] (shed rate, queueing latency,
/// watchdog ticks).
///
/// Under `OverloadPolicy::Block` with no chaos knobs armed, the result
/// is identical to the synchronous [`evaluate_frames`] run — the
/// pipeline's event stream is bit-identical to `observe` (proven by
/// property test in the core crate).
///
/// # Errors
///
/// [`EngineError`] from building the engine, spawning the supervisor,
/// or a supervision failure outside panic isolation.
pub fn evaluate_frames_supervised<'a>(
    cfg: &PipelineConfig,
    frames: impl IntoIterator<Item = &'a CapturedFrame>,
) -> Result<(TraceEvaluation, IngestStats), EngineError> {
    let ingest = cfg.ingest.unwrap_or_default();
    let pipeline = IngestPipeline::spawn(build_multi_engine(cfg)?, ingest)?;
    let mut origin: Option<Nanos> = None;
    let mut train_frames = 0u64;
    let mut validation_frames = 0u64;
    for f in frames {
        let o = *origin.get_or_insert(f.t_end);
        if f.t_end.saturating_sub(o) < cfg.train_duration {
            train_frames += 1;
        } else {
            validation_frames += 1;
        }
        pipeline.submit(f)?;
    }
    let report = pipeline.finish()?;
    let mut collectors: Vec<(NetworkParameter, ParamCollector)> =
        cfg.parameters.iter().map(|&p| (p, ParamCollector::default())).collect();
    absorb(&mut collectors, &report.events);
    let stats = report.stats;
    let health = report.health;
    let databases = report.engine.into_references();
    Ok((finalize(collectors, databases, health, train_frames, validation_frames), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::{Frame, MacAddr, Rate};

    /// Builds a synthetic trace of `n_dev` devices with very distinct
    /// inter-arrival signatures (device i sends every (300 + 120·i) µs).
    fn synthetic_trace(n_dev: u64, total_us: u64) -> Vec<CapturedFrame> {
        let ap = MacAddr::from_index(999);
        let mut frames = Vec::new();
        for dev in 0..n_dev {
            let addr = MacAddr::from_index(dev + 1);
            let period = 300 + 120 * dev;
            let mut t = 100 + dev * 17;
            while t < total_us {
                let f = Frame::data_to_ds(addr, ap, ap, 200 + dev as usize * 90);
                frames.push(CapturedFrame::from_frame(
                    &f,
                    Rate::R54M,
                    Nanos::from_micros(t),
                    -50,
                ));
                t += period;
            }
        }
        frames.sort_by_key(|f| f.t_end);
        frames
    }

    #[test]
    fn pipeline_separates_well_separated_devices() {
        // 4 devices over 40 simulated seconds; train on 10 s, 5 s windows.
        let cfg = PipelineConfig {
            train_duration: Nanos::from_secs(10),
            window: Nanos::from_secs(5),
            min_observations: 30,
            measure: SimilarityMeasure::Cosine,
            parameters: vec![
                NetworkParameter::InterArrivalTime,
                NetworkParameter::FrameSize,
            ],
            match_config: MatchConfig::default(),
            resilience: ResilienceConfig::default(),
            ingest: None,
        };
        let frames = synthetic_trace(4, 40_000_000);
        let eval = evaluate_frames(&cfg, &frames).expect("pipeline run");
        assert_eq!(eval.ref_devices, 4);
        assert!(eval.train_frames > 0 && eval.validation_frames > 0);
        let auc_ia = eval.auc(NetworkParameter::InterArrivalTime);
        assert!(auc_ia > 0.95, "inter-arrival AUC = {auc_ia}");
        let auc_fs = eval.auc(NetworkParameter::FrameSize);
        assert!(auc_fs > 0.95, "frame-size AUC = {auc_fs}");
        // Identification is near-perfect for these caricature devices.
        assert!(eval.identification(NetworkParameter::InterArrivalTime, 0.1) > 0.9);
    }

    #[test]
    fn pipeline_counts_candidates_per_window() {
        let cfg = PipelineConfig {
            train_duration: Nanos::from_secs(10),
            window: Nanos::from_secs(5),
            min_observations: 10,
            measure: SimilarityMeasure::Cosine,
            parameters: vec![NetworkParameter::InterArrivalTime],
            match_config: MatchConfig::default(),
            resilience: ResilienceConfig::default(),
            ingest: None,
        };
        let frames = synthetic_trace(3, 40_000_000);
        let eval = evaluate_frames(&cfg, &frames).expect("pipeline run");
        // 30 s of validation in 5 s windows → 6 windows × 3 devices.
        let n = eval.candidate_instances[&NetworkParameter::InterArrivalTime];
        assert!((15..=18).contains(&n), "candidates = {n}");
    }

    #[test]
    fn indistinct_devices_score_poorly_on_identification() {
        // Two devices with IDENTICAL behaviour: matching cannot do better
        // than chance on identification.
        let ap = MacAddr::from_index(999);
        let mut frames = Vec::new();
        for dev in 0..2u64 {
            let addr = MacAddr::from_index(dev + 1);
            let mut t = 100 + dev * 250; // interleaved, same 500 µs period
            while t < 30_000_000 {
                let f = Frame::data_to_ds(addr, ap, ap, 300);
                frames.push(CapturedFrame::from_frame(
                    &f,
                    Rate::R54M,
                    Nanos::from_micros(t),
                    -50,
                ));
                t += 500;
            }
        }
        frames.sort_by_key(|f| f.t_end);
        let cfg = PipelineConfig {
            train_duration: Nanos::from_secs(10),
            window: Nanos::from_secs(5),
            min_observations: 30,
            measure: SimilarityMeasure::Cosine,
            parameters: vec![NetworkParameter::InterArrivalTime],
            match_config: MatchConfig::default(),
            resilience: ResilienceConfig::default(),
            ingest: None,
        };
        let eval = evaluate_frames(&cfg, &frames).expect("pipeline run");
        // Identification at a strict FPR cannot be high for clones: with
        // two identical devices the argmax is a coin flip.
        let ident = eval.identification(NetworkParameter::InterArrivalTime, 0.01);
        assert!(ident < 0.75, "clone identification = {ident}");
    }
}
