//! Multi-parameter fusion — the paper's stated future work (§VIII:
//! *"future work should also investigate whether the fingerprinting
//! method can be improved by combining several network parameters"*).
//!
//! Each parameter produces its own similarity vector per candidate window
//! (Algorithm 1); fusion averages the per-parameter similarities with
//! configurable weights before applying the similarity/identification
//! tests. Candidates below the observation floor for *any* fused
//! parameter are skipped, so every fused score averages the same
//! parameter set.

use std::collections::BTreeMap;

use wifiprint_core::metrics::{identification_points, similarity_curve, MatchSet};
use wifiprint_core::{
    EvalOutcome, NetworkParameter, ReferenceDb, SignatureBuilder, SimilarityMeasure,
    WindowedSignatures,
};
use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_radiotap::CapturedFrame;

use crate::pipeline::PipelineConfig;

/// A weighted set of parameters to fuse.
#[derive(Debug, Clone)]
pub struct FusionSpec {
    /// `(parameter, weight)` pairs; weights need not be normalised.
    pub parameters: Vec<(NetworkParameter, f64)>,
}

impl FusionSpec {
    /// The combination the paper's results suggest: the three timing
    /// parameters that lead its rankings, equally weighted.
    pub fn timing_trio() -> Self {
        FusionSpec {
            parameters: vec![
                (NetworkParameter::InterArrivalTime, 1.0),
                (NetworkParameter::TransmissionTime, 1.0),
                (NetworkParameter::MediumAccessTime, 1.0),
            ],
        }
    }

    /// All five parameters, equally weighted.
    pub fn all_equal() -> Self {
        FusionSpec {
            parameters: NetworkParameter::ALL.iter().map(|&p| (p, 1.0)).collect(),
        }
    }
}

/// Streaming fusion evaluator: like
/// [`StreamingEvaluator`](crate::StreamingEvaluator) but scoring the fused
/// similarity.
#[derive(Debug)]
pub struct FusionEvaluator {
    spec: FusionSpec,
    measure: SimilarityMeasure,
    train_duration: Nanos,
    origin: Option<Nanos>,
    trainers: Vec<SignatureBuilder>,
    validators: Vec<WindowedSignatures>,
}

impl FusionEvaluator {
    /// A fusion evaluator over `spec`, sharing `pipeline`'s split, window
    /// and observation floor.
    pub fn new(pipeline: &PipelineConfig, spec: FusionSpec) -> Self {
        let configs: Vec<_> = spec
            .parameters
            .iter()
            .map(|&(p, _)| {
                let mut cfg = wifiprint_core::EvalConfig::for_parameter(p)
                    .with_min_observations(pipeline.min_observations)
                    .with_measure(pipeline.measure);
                cfg.window = pipeline.window;
                cfg
            })
            .collect();
        FusionEvaluator {
            spec,
            measure: pipeline.measure,
            train_duration: pipeline.train_duration,
            origin: None,
            trainers: configs.iter().map(SignatureBuilder::new).collect(),
            validators: configs.iter().map(WindowedSignatures::new).collect(),
        }
    }

    /// Processes one captured frame.
    pub fn push(&mut self, frame: &CapturedFrame) {
        let origin = *self.origin.get_or_insert(frame.t_end);
        if frame.t_end.saturating_sub(origin) < self.train_duration {
            for t in &mut self.trainers {
                t.push(frame);
            }
        } else {
            for v in &mut self.validators {
                v.push(frame);
            }
        }
    }

    /// Finalises: fuses per-parameter similarities and computes both
    /// tests.
    pub fn finish(self) -> EvalOutcome {
        let weights: Vec<f64> = self.spec.parameters.iter().map(|&(_, w)| w).collect();
        let weight_sum: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);

        let dbs: Vec<ReferenceDb> =
            self.trainers
                .into_iter()
                .map(|t| ReferenceDb::from_signatures(t.finish().unwrap_or_default()))
                .collect();
        // Devices must be enrolled for every fused parameter.
        let enrolled: Vec<MacAddr> = match dbs.first() {
            Some(first) => {
                first.devices().filter(|d| dbs.iter().all(|db| db.contains(d))).collect()
            }
            None => Vec::new(),
        };

        // Collect candidate signatures per parameter, keyed by
        // (window, device).
        let mut per_key: BTreeMap<(usize, MacAddr), Vec<Option<wifiprint_core::Signature>>> =
            BTreeMap::new();
        let n_params = self.validators.len();
        for (i, validator) in self.validators.into_iter().enumerate() {
            for cand in validator.finish() {
                per_key
                    .entry((cand.index, cand.device))
                    .or_insert_with(|| vec![None; n_params])[i] = Some(cand.signature);
            }
        }

        let mut sets = Vec::new();
        for ((_window, device), sigs) in per_key {
            if !enrolled.contains(&device) || sigs.iter().any(Option::is_none) {
                continue;
            }
            // Fused similarity per enrolled reference.
            let mut fused: BTreeMap<MacAddr, f64> =
                enrolled.iter().map(|&d| (d, 0.0)).collect();
            for (i, sig) in sigs.iter().enumerate() {
                let outcome =
                    dbs[i].match_signature(sig.as_ref().expect("checked"), self.measure);
                for &(dev, sim) in outcome.similarities() {
                    if let Some(acc) = fused.get_mut(&dev) {
                        *acc += weights[i] * sim / weight_sum;
                    }
                }
            }
            let true_sim = fused[&device];
            let mut wrong = Vec::with_capacity(fused.len().saturating_sub(1));
            let mut best_dev = device;
            let mut best_sim = f64::MIN;
            for (&dev, &sim) in &fused {
                if sim > best_sim {
                    best_sim = sim;
                    best_dev = dev;
                }
                if dev != device {
                    wrong.push(sim);
                }
            }
            sets.push(MatchSet {
                true_device: device,
                true_sim,
                wrong_sims: wrong,
                best_is_true: best_dev == device,
                best_sim,
            });
        }

        EvalOutcome {
            curve: similarity_curve(&sets, 512),
            ident_points: identification_points(&sets, 512),
            instances: sets.len(),
            unknown_candidates: 0,
        }
    }
}

/// Convenience: runs fusion over an in-memory frame sequence.
pub fn evaluate_fusion<'a>(
    pipeline: &PipelineConfig,
    spec: FusionSpec,
    frames: impl IntoIterator<Item = &'a CapturedFrame>,
) -> EvalOutcome {
    let mut ev = FusionEvaluator::new(pipeline, spec);
    for f in frames {
        ev.push(f);
    }
    ev.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::{Frame, Rate};

    /// Devices distinguishable only by combining parameters: pairs share
    /// inter-arrival periods, other pairs share sizes.
    fn trace() -> Vec<CapturedFrame> {
        let ap = MacAddr::from_index(99);
        let mut frames = Vec::new();
        // (period µs, payload) — no single column is unique, the pair is.
        let spec = [(400u64, 200usize), (400, 600), (700, 200), (700, 600)];
        for (dev, &(period, payload)) in spec.iter().enumerate() {
            let addr = MacAddr::from_index(dev as u64 + 1);
            let mut t = 1000 + dev as u64 * 53;
            while t < 40_000_000 {
                let f = Frame::data_to_ds(addr, ap, ap, payload);
                frames.push(CapturedFrame::from_frame(
                    &f,
                    Rate::R54M,
                    Nanos::from_micros(t),
                    -50,
                ));
                t += period;
            }
        }
        frames.sort_by_key(|f| f.t_end);
        frames
    }

    fn pipeline() -> PipelineConfig {
        PipelineConfig::miniature(10, 5, 30)
    }

    #[test]
    fn fusion_beats_single_parameters_on_complementary_devices() {
        let frames = trace();
        let single_ia = evaluate_fusion(
            &pipeline(),
            FusionSpec { parameters: vec![(NetworkParameter::InterArrivalTime, 1.0)] },
            &frames,
        );
        let single_fs = evaluate_fusion(
            &pipeline(),
            FusionSpec { parameters: vec![(NetworkParameter::FrameSize, 1.0)] },
            &frames,
        );
        let fused = evaluate_fusion(
            &pipeline(),
            FusionSpec {
                parameters: vec![
                    (NetworkParameter::InterArrivalTime, 1.0),
                    (NetworkParameter::FrameSize, 1.0),
                ],
            },
            &frames,
        );
        let ident = |o: &EvalOutcome| o.identification_at_fpr(0.1);
        // Frame size alone confuses the size-clone pairs; the fusion must
        // rescue it, and must not fall below its strongest member.
        assert!(
            ident(&fused) > ident(&single_fs),
            "fusion {:.2} did not rescue frame size {:.2}",
            ident(&fused),
            ident(&single_fs)
        );
        assert!(
            ident(&fused) + 0.05 >= ident(&single_ia),
            "fusion {:.2} fell below inter-arrival {:.2}",
            ident(&fused),
            ident(&single_ia)
        );
        assert!(fused.auc() > 0.95, "fused auc = {}", fused.auc());
        assert!(ident(&fused) > 0.9, "fused ident = {}", ident(&fused));
    }

    #[test]
    fn fusion_requires_all_parameters_enrolled() {
        let frames = trace();
        let outcome = evaluate_fusion(&pipeline(), FusionSpec::all_equal(), &frames);
        // The synthetic trace has no rate variation or medium-access
        // structure, but every candidate still passes the floor for all
        // five parameters (same observations, different projections).
        assert!(outcome.instances > 0);
        assert!((0.0..=1.0).contains(&outcome.auc()));
    }

    #[test]
    fn specs_have_expected_shapes() {
        assert_eq!(FusionSpec::timing_trio().parameters.len(), 3);
        assert_eq!(FusionSpec::all_equal().parameters.len(), 5);
    }
}
