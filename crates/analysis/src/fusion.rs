//! Multi-parameter fusion — the paper's stated future work (§VIII:
//! *"future work should also investigate whether the fingerprinting
//! method can be improved by combining several network parameters"*).
//!
//! The mechanics live in core now: [`FusionSpec`] (re-exported here)
//! names the parameters and weights, and the fused
//! [`MultiEngine`] combines the per-parameter similarity vectors
//! *online*, per candidate, the moment each detection window closes.
//! This module keeps the evaluation harness: [`FusionEvaluator`] streams
//! a trace through one `MultiEngine` and aggregates the fused scores
//! into the paper's two accuracy tests, so fusion curves drop into the
//! same tables as the single-parameter ones. Candidates below the
//! observation floor for *any* fused parameter carry no fused score and
//! are skipped, so every fused instance averages the same parameter set
//! — the semantics the old offline (end-of-trace) combination had, now
//! produced incrementally.

pub use wifiprint_core::{FusedOutcome, FusionSpec};

use wifiprint_core::{
    EngineError, EvalOutcome, MatchSet, MultiEngine, MultiEvent,
};
use wifiprint_radiotap::CapturedFrame;

use crate::pipeline::PipelineConfig;

/// Streaming fusion evaluator: like
/// [`StreamingEvaluator`](crate::StreamingEvaluator) but scoring the
/// fused similarity of each candidate instead of the per-parameter ones.
#[derive(Debug)]
pub struct FusionEvaluator {
    engine: MultiEngine,
    sets: Vec<MatchSet>,
    unknown: usize,
    error: Option<EngineError>,
}

impl FusionEvaluator {
    /// A fusion evaluator over `spec`, sharing `pipeline`'s split, window
    /// and observation floor.
    ///
    /// # Errors
    ///
    /// [`EngineError`] when the spec or pipeline configuration cannot
    /// drive an engine (empty spec, repeated parameter, zero-length
    /// window or training prefix).
    pub fn new(pipeline: &PipelineConfig, spec: FusionSpec) -> Result<Self, EngineError> {
        let engine = MultiEngine::builder()
            .spec(spec)
            .config(pipeline.multi_config())
            .train_for(pipeline.train_duration)
            // Only commonly enrolled candidates carry ground truth for
            // the accuracy tests; strangers are counted, not scored.
            .score_unknown(false)
            .build()?;
        Ok(FusionEvaluator { engine, sets: Vec::new(), unknown: 0, error: None })
    }

    /// Processes one captured frame. Engine failures latch and surface
    /// from [`FusionEvaluator::finish`].
    pub fn push(&mut self, frame: &CapturedFrame) {
        if self.error.is_some() {
            return;
        }
        match self.engine.observe(frame) {
            Ok(events) => self.absorb(&events),
            Err(e) => self.error = Some(e),
        }
    }

    fn absorb(&mut self, events: &[MultiEvent]) {
        for event in events {
            match event {
                // A fused score exists exactly when the candidate met
                // the floor for every fused parameter and is enrolled
                // for all of them — the instances the fused accuracy
                // tests are defined over.
                MultiEvent::FusedMatch { device, fused: Some(fused), .. } => {
                    self.sets.push(MatchSet::from_similarities(*device, fused.similarities()));
                }
                MultiEvent::FusedNewDevice { .. } => self.unknown += 1,
                MultiEvent::FusedMatch { fused: None, .. }
                | MultiEvent::Enrolled { .. }
                | MultiEvent::WindowClosed { .. } => {}
            }
        }
    }

    /// Finalises: seals the trailing window and computes both tests over
    /// the fused scores.
    ///
    /// # Errors
    ///
    /// The first engine failure encountered during the run.
    pub fn finish(mut self) -> Result<EvalOutcome, EngineError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let events = self.engine.finish()?;
        self.absorb(&events);
        Ok(EvalOutcome::from_match_sets(&self.sets, self.unknown))
    }
}

/// Convenience: runs fusion over an in-memory frame sequence.
///
/// # Errors
///
/// [`EngineError`] from building or driving the underlying engine.
pub fn evaluate_fusion<'a>(
    pipeline: &PipelineConfig,
    spec: FusionSpec,
    frames: impl IntoIterator<Item = &'a CapturedFrame>,
) -> Result<EvalOutcome, EngineError> {
    let mut ev = FusionEvaluator::new(pipeline, spec)?;
    for f in frames {
        ev.push(f);
    }
    ev.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_core::NetworkParameter;
    use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};

    /// Devices distinguishable only by combining parameters: pairs share
    /// inter-arrival periods, other pairs share sizes.
    fn trace() -> Vec<CapturedFrame> {
        let ap = MacAddr::from_index(99);
        let mut frames = Vec::new();
        // (period µs, payload) — no single column is unique, the pair is.
        let spec = [(400u64, 200usize), (400, 600), (700, 200), (700, 600)];
        for (dev, &(period, payload)) in spec.iter().enumerate() {
            let addr = MacAddr::from_index(dev as u64 + 1);
            let mut t = 1000 + dev as u64 * 53;
            while t < 40_000_000 {
                let f = Frame::data_to_ds(addr, ap, ap, payload);
                frames.push(CapturedFrame::from_frame(
                    &f,
                    Rate::R54M,
                    Nanos::from_micros(t),
                    -50,
                ));
                t += period;
            }
        }
        frames.sort_by_key(|f| f.t_end);
        frames
    }

    fn pipeline() -> PipelineConfig {
        PipelineConfig::miniature(10, 5, 30)
    }

    #[test]
    fn fusion_beats_single_parameters_on_complementary_devices() {
        let frames = trace();
        let single_ia = evaluate_fusion(
            &pipeline(),
            FusionSpec::single(NetworkParameter::InterArrivalTime),
            &frames,
        )
        .expect("fusion run");
        let single_fs = evaluate_fusion(
            &pipeline(),
            FusionSpec::single(NetworkParameter::FrameSize),
            &frames,
        )
        .expect("fusion run");
        let fused = evaluate_fusion(
            &pipeline(),
            FusionSpec::equal_weights([
                NetworkParameter::InterArrivalTime,
                NetworkParameter::FrameSize,
            ]),
            &frames,
        )
        .expect("fusion run");
        let ident = |o: &EvalOutcome| o.identification_at_fpr(0.1);
        // Frame size alone confuses the size-clone pairs; the fusion must
        // rescue it, and must not fall below its strongest member.
        assert!(
            ident(&fused) > ident(&single_fs),
            "fusion {:.2} did not rescue frame size {:.2}",
            ident(&fused),
            ident(&single_fs)
        );
        assert!(
            ident(&fused) + 0.05 >= ident(&single_ia),
            "fusion {:.2} fell below inter-arrival {:.2}",
            ident(&fused),
            ident(&single_ia)
        );
        assert!(fused.auc() > 0.95, "fused auc = {}", fused.auc());
        assert!(ident(&fused) > 0.9, "fused ident = {}", ident(&fused));
    }

    #[test]
    fn fusion_requires_all_parameters_enrolled() {
        let frames = trace();
        let outcome =
            evaluate_fusion(&pipeline(), FusionSpec::all_equal(), &frames).expect("fusion run");
        // The synthetic trace has no rate variation or medium-access
        // structure, but every candidate still passes the floor for all
        // five parameters (same observations, different projections).
        assert!(outcome.instances > 0);
        assert!((0.0..=1.0).contains(&outcome.auc()));
    }

    #[test]
    fn degenerate_specs_are_rejected_up_front() {
        let empty = FusionSpec { parameters: vec![] };
        assert!(FusionEvaluator::new(&pipeline(), empty).is_err());
        let dup = FusionSpec::equal_weights([
            NetworkParameter::FrameSize,
            NetworkParameter::FrameSize,
        ]);
        assert!(FusionEvaluator::new(&pipeline(), dup).is_err());
    }

    #[test]
    fn specs_have_expected_shapes() {
        assert_eq!(FusionSpec::timing_trio().parameters.len(), 3);
        assert_eq!(FusionSpec::all_equal().parameters.len(), 5);
    }
}
