//! The Pang-et-al-style baseline (§V-B2 of the paper).
//!
//! Pang et al. (`MobiCom` 2007) identify users from *implicit identifiers*;
//! of their four features, **broadcast frame sizes** is the one that
//! survives encryption and maps onto our observables. The baseline
//! fingerprints a device solely from the size distribution of its
//! group-addressed data frames — no per-frame-type weighting, no timing —
//! and runs through the same detection methodology, so the comparison in
//! the paper's §V-B2 ("we achieve comparable results") can be regenerated.

use wifiprint_core::{
    evaluate, EvalConfig, EvalOutcome, FrameFilter, NetworkParameter, ReferenceDb,
    SignatureBuilder, SimilarityMeasure, WindowedSignatures,
};
use wifiprint_ieee80211::Nanos;
use wifiprint_radiotap::CapturedFrame;

use crate::pipeline::PipelineConfig;

/// The baseline's evaluation configuration: frame sizes over
/// group-addressed frames only.
pub fn baseline_config(pipeline: &PipelineConfig) -> EvalConfig {
    let mut cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize)
        .with_measure(pipeline.measure)
        .with_filter(FrameFilter { broadcast_only: true, ..FrameFilter::default() })
        // Broadcast traffic is sparse; Pang et al. fingerprint with far
        // fewer samples than the paper's 50-frame floor.
        .with_min_observations(pipeline.min_observations.min(10));
    cfg.window = pipeline.window;
    cfg
}

/// Streaming evaluator for the baseline.
#[derive(Debug)]
pub struct BaselineEvaluator {
    train_duration: Nanos,
    measure: SimilarityMeasure,
    origin: Option<Nanos>,
    trainer: SignatureBuilder,
    validator: WindowedSignatures,
}

impl BaselineEvaluator {
    /// A fresh baseline evaluator aligned with `pipeline`'s split.
    pub fn new(pipeline: &PipelineConfig) -> Self {
        let cfg = baseline_config(pipeline);
        BaselineEvaluator {
            train_duration: pipeline.train_duration,
            measure: pipeline.measure,
            origin: None,
            trainer: SignatureBuilder::new(&cfg),
            validator: WindowedSignatures::new(&cfg),
        }
    }

    /// Processes one captured frame.
    pub fn push(&mut self, frame: &CapturedFrame) {
        let origin = *self.origin.get_or_insert(frame.t_end);
        if frame.t_end.saturating_sub(origin) < self.train_duration {
            self.trainer.push(frame);
        } else {
            self.validator.push(frame);
        }
    }

    /// Finalises the baseline evaluation. An empty learning phase (no
    /// device reached the observation floor on broadcast traffic alone)
    /// degrades to the all-unknown outcome rather than erroring: the
    /// baseline is a *comparison* curve, not a production entry point.
    ///
    /// # Panics
    ///
    /// Never in practice: the only `expect` guards the non-empty
    /// database branch it sits in.
    pub fn finish(self) -> (EvalOutcome, ReferenceDb) {
        let db = ReferenceDb::from_signatures(self.trainer.finish().unwrap_or_default());
        let candidates = self.validator.finish();
        let outcome = if db.is_empty() {
            EvalOutcome::from_match_sets(&[], candidates.len())
        } else {
            evaluate(&db, &candidates, self.measure).expect("non-empty database")
        };
        (outcome, db)
    }
}

/// Convenience: runs the baseline over an in-memory frame sequence.
pub fn evaluate_baseline<'a>(
    pipeline: &PipelineConfig,
    frames: impl IntoIterator<Item = &'a CapturedFrame>,
) -> (EvalOutcome, ReferenceDb) {
    let mut ev = BaselineEvaluator::new(pipeline);
    for f in frames {
        ev.push(f);
    }
    ev.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::{Frame, MacAddr, Rate};

    /// Two devices whose *broadcast* frame sizes differ; plus identical
    /// unicast chatter that the baseline must ignore.
    fn trace() -> Vec<CapturedFrame> {
        let ap = MacAddr::from_index(99);
        let mut frames = Vec::new();
        for dev in 0..2u64 {
            let addr = MacAddr::from_index(dev + 1);
            let mut t = 1000 + dev * 137;
            while t < 30_000_000 {
                // Broadcast service frame with a device-specific size.
                let f =
                    Frame::data_to_ds(addr, ap, MacAddr::BROADCAST, 100 + 300 * dev as usize);
                frames.push(CapturedFrame::from_frame(
                    &f,
                    Rate::R11M,
                    Nanos::from_micros(t),
                    -55,
                ));
                // Unicast frame with an identical size on both devices.
                let u = Frame::data_to_ds(addr, ap, ap, 700);
                frames.push(CapturedFrame::from_frame(
                    &u,
                    Rate::R11M,
                    Nanos::from_micros(t + 400),
                    -55,
                ));
                t += 100_000;
            }
        }
        frames.sort_by_key(|f| f.t_end);
        frames
    }

    #[test]
    fn baseline_separates_devices_by_broadcast_sizes() {
        let pipeline = PipelineConfig::miniature(10, 5, 5);
        let (outcome, db) = evaluate_baseline(&pipeline, &trace());
        assert_eq!(db.len(), 2);
        assert!(outcome.instances > 0);
        assert!(outcome.auc() > 0.9, "baseline auc = {}", outcome.auc());
    }

    #[test]
    fn baseline_ignores_unicast_frames() {
        let pipeline = PipelineConfig::miniature(10, 5, 5);
        let cfg = baseline_config(&pipeline);
        let mut builder = SignatureBuilder::new(&cfg);
        for f in trace() {
            builder.push(&f);
        }
        let sigs = builder.finish().expect("broadcast devices qualify");
        // Only the broadcast frames contribute: every recorded size is a
        // broadcast size (128 + overheads or 428 + overheads), never 700+.
        for sig in sigs.values() {
            for (_, hist) in sig.iter() {
                for (center, freq) in hist.points() {
                    if freq > 0.0 {
                        assert!(center < 600.0, "unicast size leaked: {center}");
                    }
                }
            }
        }
    }
}
