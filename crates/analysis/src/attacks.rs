//! Attack evaluation (§VII-A): how well does a mimicry attacker forge a
//! victim's signature?
//!
//! The paper argues (§VII-A1) that an attacker may *"send traffic at a
//! constant transmission rate and vary the frame sizes for each frame type
//! to reproduce the distribution of the histogram"* — and that this forges
//! application-level features (frame sizes) far more easily than the
//! driver/chipset-level timing features. This module implements exactly
//! that attacker and measures which parameters it fools.

use wifiprint_core::{EvalConfig, NetworkParameter, ReferenceDb, SignatureBuilder, SimilarityMeasure};
use wifiprint_ieee80211::{Frame, FrameKind, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

/// The outcome of a mimicry attempt for one network parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MimicryResult {
    /// The parameter under attack.
    pub parameter: NetworkParameter,
    /// Similarity of the victim's *own* later traffic to its reference.
    pub genuine_similarity: f64,
    /// Similarity of the attacker's forged traffic to the victim's
    /// reference.
    pub attacker_similarity: f64,
}

impl MimicryResult {
    /// `true` if the attacker scores at least `fraction` of the genuine
    /// similarity (i.e. the forgery is competitive).
    pub fn forged(&self, fraction: f64) -> bool {
        self.attacker_similarity >= fraction * self.genuine_similarity
    }
}

/// Builds the §VII-A1 mimicry attacker's traffic: replaying the victim's
/// *frame-size distribution* per frame type at a constant rate with the
/// attacker's own (regular, software-paced) timing.
///
/// The attacker can shape sizes byte-perfectly from userspace, but its
/// inter-frame timing comes from its own card, driver and pacing loop —
/// modelled here as a fixed software pacing interval plus small jitter.
pub fn mimicry_frames(
    victim_reference: &wifiprint_core::Signature,
    attacker_mac: MacAddr,
    bssid: MacAddr,
    frames_to_send: usize,
    pacing: Nanos,
    seed: u64,
) -> Vec<CapturedFrame> {
    // Rebuild a sampleable size distribution from the victim's frame-size
    // signature (the attacker learned it exactly as we did).
    let mut sizes: Vec<(f64, f64)> = Vec::new(); // (size, cumulative weight)
    let mut acc = 0.0;
    for (kind, hist) in victim_reference.iter() {
        if kind != FrameKind::Data {
            continue; // the attacker forges application data only (§VII-A)
        }
        for (center, freq) in hist.points() {
            if freq > 0.0 {
                acc += freq;
                sizes.push((center, acc));
            }
        }
    }
    if sizes.is_empty() {
        return Vec::new();
    }
    let total = acc;

    let mut rng = wifiprint_netsim::SimRng::derive(seed, 0xA77A);
    let mut out = Vec::with_capacity(frames_to_send);
    let mut t = Nanos::from_micros(1000);
    for _ in 0..frames_to_send {
        let roll = rng.f64() * total;
        let size = sizes
            .iter()
            .find(|(_, cum)| *cum >= roll)
            .map_or(sizes[sizes.len() - 1].0, |(s, _)| *s);
        let payload = (size as usize).saturating_sub(36).max(1);
        let frame = Frame::data_to_ds(attacker_mac, bssid, bssid, payload);
        // Constant transmission rate (§VII-A1) + software pacing jitter.
        out.push(CapturedFrame::from_frame(&frame, Rate::R24M, t, -55));
        let jitter = Nanos::from_nanos(rng.below(60_000));
        t += pacing + jitter;
    }
    out
}

/// Runs the full §VII-A1 experiment: learn the victim, replay its size
/// distribution from attacker hardware, and compare similarities per
/// parameter.
///
/// # Panics
///
/// Panics when the victim's training capture is too sparse to enroll it
/// (the rigs in this crate always provide enough frames).
pub fn evaluate_mimicry(
    victim_training: &[CapturedFrame],
    victim_later: &[CapturedFrame],
    victim: MacAddr,
    bssid: MacAddr,
    seed: u64,
) -> Vec<MimicryResult> {
    let attacker = MacAddr::new([0x02, 0xBA, 0xDB, 0xAD, 0, 1]);
    let mut results = Vec::new();

    // The attacker learns the victim's frame-size signature once.
    let size_cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
    let mut learn = SignatureBuilder::new(&size_cfg);
    for f in victim_training {
        learn.push(f);
    }
    let Some(victim_size_sig) = learn.finish().unwrap_or_default().remove(&victim) else {
        return results;
    };
    let forged = mimicry_frames(
        &victim_size_sig,
        attacker,
        bssid,
        4000,
        Nanos::from_micros(900),
        seed,
    );

    for parameter in NetworkParameter::ALL {
        let cfg = EvalConfig::for_parameter(parameter);
        let build = |frames: &[CapturedFrame], who: MacAddr| {
            let mut b = SignatureBuilder::new(&cfg);
            for f in frames {
                b.push(f);
            }
            b.finish().unwrap_or_default().remove(&who)
        };
        let Some(reference) = build(victim_training, victim) else { continue };
        let Some(genuine) = build(victim_later, victim) else { continue };
        let Some(attack) = build(&forged, attacker) else { continue };
        let mut db = ReferenceDb::new();
        db.insert(victim, reference).expect("victim reference");
        let sim = |sig| {
            db.match_signature(sig, SimilarityMeasure::Cosine)
                .similarity_to(&victim)
                .unwrap_or(0.0)
        };
        results.push(MimicryResult {
            parameter,
            genuine_similarity: sim(&genuine),
            attacker_similarity: sim(&attack),
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_scenarios::{FaradayRig, FARADAY_AP, FARADAY_DEVICE};

    fn victim_traces() -> (Vec<CapturedFrame>, Vec<CapturedFrame>) {
        let catalog = wifiprint_devices::profile_catalog();
        let t1 = FaradayRig::for_profile(&catalog[0], 1, Nanos::from_secs(8)).run();
        let t2 = FaradayRig::for_profile(&catalog[0], 2, Nanos::from_secs(8)).run();
        (t1.frames, t2.frames)
    }

    #[test]
    fn mimicry_forges_sizes_but_not_timing() {
        let (training, later) = victim_traces();
        let results = evaluate_mimicry(&training, &later, FARADAY_DEVICE, FARADAY_AP, 7);
        assert_eq!(results.len(), 5);
        let get = |p: NetworkParameter| {
            *results.iter().find(|r| r.parameter == p).expect("result")
        };
        let size = get(NetworkParameter::FrameSize);
        let ia = get(NetworkParameter::InterArrivalTime);
        // The size forgery is competitive...
        assert!(
            size.forged(0.7),
            "size forgery too weak: attacker {:.3} vs genuine {:.3}",
            size.attacker_similarity,
            size.genuine_similarity
        );
        // ...but the timing forgery is not (§VII-A: "more difficult to
        // forge than application level data").
        assert!(
            !ia.forged(0.7),
            "inter-arrival unexpectedly forged: attacker {:.3} vs genuine {:.3}",
            ia.attacker_similarity,
            ia.genuine_similarity
        );
        assert!(ia.attacker_similarity < size.attacker_similarity);
    }

    #[test]
    fn mimicry_frames_reproduce_the_size_distribution() {
        let (training, _) = victim_traces();
        let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
        let mut b = SignatureBuilder::new(&cfg);
        for f in &training {
            b.push(f);
        }
        let victim_sig = b.finish().expect("victim qualifies").remove(&FARADAY_DEVICE).unwrap();
        let attacker = MacAddr::from_index(0xBAD);
        let forged = mimicry_frames(
            &victim_sig,
            attacker,
            FARADAY_AP,
            3000,
            Nanos::from_micros(800),
            3,
        );
        assert_eq!(forged.len(), 3000);
        assert!(forged.iter().all(|f| f.transmitter == Some(attacker)));
        // Forged sizes cover the victim's dominant size bin.
        let dominant = victim_sig
            .histogram(FrameKind::Data)
            .unwrap()
            .points()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        assert!(
            forged.iter().any(|f| (f.size as f64 - dominant).abs() < 16.0),
            "no forged frame near the dominant size {dominant}"
        );
    }
}
