//! Formatting of the paper's tables from pipeline results.

use std::fmt::Write as _;

use wifiprint_core::NetworkParameter;

use crate::pipeline::TraceEvaluation;

/// A named trace evaluation, e.g. `("Conf. 1", eval)`.
pub type NamedEval<'a> = (&'a str, &'a TraceEvaluation);

/// Table I-style trace features.
#[derive(Debug, Clone)]
pub struct TraceFeatures {
    /// Trace name (e.g. "Office 1").
    pub name: String,
    /// Total duration description (e.g. "7 hours").
    pub total: String,
    /// Reference (training) duration description.
    pub reference: String,
    /// Candidate (validation) duration description.
    pub candidate: String,
    /// Encryption description.
    pub encryption: String,
    /// Number of reference devices at the 50-observation floor.
    pub ref_devices: usize,
}

/// Renders Table I (evaluation trace features).
pub fn table1(rows: &[TraceFeatures]) -> String {
    let mut cols: Vec<Vec<String>> = vec![vec![String::new()]];
    for label in ["Total duration", "Ref. duration", "Cand. duration", "Encryption", "# ref. devices"]
    {
        cols[0].push(label.to_owned());
    }
    for row in rows {
        cols.push(vec![
            row.name.clone(),
            row.total.clone(),
            row.reference.clone(),
            row.candidate.clone(),
            row.encryption.clone(),
            row.ref_devices.to_string(),
        ]);
    }
    render_columns(&cols)
}

/// Renders Table II (AUC of the similarity test, % per parameter × trace).
pub fn table2(evals: &[NamedEval<'_>]) -> String {
    let mut cols: Vec<Vec<String>> = Vec::new();
    let mut first = vec!["Network parameter".to_owned()];
    for p in NetworkParameter::ALL {
        first.push(capitalise(p.label()));
    }
    cols.push(first);
    for (name, eval) in evals {
        let mut col = vec![(*name).to_owned()];
        for p in NetworkParameter::ALL {
            col.push(format!("{:.1}%", 100.0 * eval.auc(p)));
        }
        cols.push(col);
    }
    render_columns(&cols)
}

/// Renders Table III (identification ratios at FPR 0.01 and 0.1).
pub fn table3(evals: &[NamedEval<'_>]) -> String {
    let mut cols: Vec<Vec<String>> = Vec::new();
    let mut first = vec!["Network parameter, FPR".to_owned()];
    for p in NetworkParameter::ALL {
        for fpr in ["0.01", "0.1"] {
            first.push(format!("{}, {fpr}", capitalise(p.label())));
        }
    }
    cols.push(first);
    for (name, eval) in evals {
        let mut col = vec![(*name).to_owned()];
        for p in NetworkParameter::ALL {
            for fpr in [0.01, 0.1] {
                col.push(format!("{:.1}%", 100.0 * eval.identification(p, fpr)));
            }
        }
        cols.push(col);
    }
    render_columns(&cols)
}

fn capitalise(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Renders columns (each a vec of equally many cells) as an aligned text
/// table with a header separator.
///
/// # Panics
///
/// Panics if columns have differing lengths.
pub fn render_columns(cols: &[Vec<String>]) -> String {
    assert!(!cols.is_empty());
    let rows = cols[0].len();
    for c in cols {
        assert_eq!(c.len(), rows, "ragged table columns");
    }
    let widths: Vec<usize> =
        cols.iter().map(|c| c.iter().map(String::len).max().unwrap_or(0)).collect();
    let mut out = String::new();
    for r in 0..rows {
        for (c, col) in cols.iter().enumerate() {
            if c == 0 {
                let _ = write!(out, "{:<width$}", col[r], width = widths[0]);
            } else {
                let _ = write!(out, "  {:>width$}", col[r], width = widths[c]);
            }
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.len() - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_columns_aligns() {
        let cols = vec![
            vec!["Param".to_owned(), "alpha".to_owned(), "b".to_owned()],
            vec!["T1".to_owned(), "1.0%".to_owned(), "22.5%".to_owned()],
        ];
        let out = render_columns(&cols);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Param"));
        assert!(lines[1].starts_with("---"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("1.0%"));
        assert!(lines[3].ends_with("22.5%"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_panic() {
        render_columns(&[vec!["a".into()], vec!["b".into(), "c".into()]]);
    }

    #[test]
    fn table1_contains_features() {
        let rows = vec![TraceFeatures {
            name: "Office 1".into(),
            total: "7 hours".into(),
            reference: "1 hour".into(),
            candidate: "6 hours".into(),
            encryption: "WPA".into(),
            ref_devices: 158,
        }];
        let out = table1(&rows);
        assert!(out.contains("Office 1"));
        assert!(out.contains("158"));
        assert!(out.contains("WPA"));
        assert!(out.contains("# ref. devices"));
    }

    #[test]
    fn capitalise_first_letter() {
        assert_eq!(capitalise("inter-arrival time"), "Inter-arrival time");
        assert_eq!(capitalise(""), "");
    }
}
