//! Evaluation pipeline, tables, plots and baselines for the wifiprint
//! suite — the harness behind §V of the paper.
//!
//! * [`PipelineConfig`] / [`StreamingEvaluator`] — the train/validate
//!   split, detection windows and per-parameter scoring of §V-A,
//! * [`tables`] — formatters regenerating Tables I, II and III,
//! * [`plot`] — ASCII histograms and TPR/FPR curves plus CSV export
//!   (Figs. 2–8),
//! * [`baseline`] — the Pang-et-al-style broadcast-size identifier the
//!   paper compares against in §V-B2,
//! * [`fusion`] — multi-parameter combination (the paper's §VIII future
//!   work),
//! * [`attacks`] — the §VII-A mimicry attacker and its evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attacks;
pub mod baseline;
pub mod fusion;
mod pipeline;
pub mod plot;
pub mod tables;

pub use pipeline::{evaluate_frames, PipelineConfig, StreamingEvaluator, TraceEvaluation};
