//! Evaluation pipeline, tables, plots and baselines for the wifiprint
//! suite — the harness behind §V of the paper.
//!
//! * [`PipelineConfig`] / [`StreamingEvaluator`] — the train/validate
//!   split, detection windows and per-parameter scoring of §V-A, driven
//!   by one fused `MultiEngine` (a single header parse per frame feeds
//!   every parameter),
//! * [`tables`] — formatters regenerating Tables I, II and III,
//! * [`plot`] — ASCII histograms and TPR/FPR curves plus CSV export
//!   (Figs. 2–8),
//! * [`baseline`] — the Pang-et-al-style broadcast-size identifier the
//!   paper compares against in §V-B2,
//! * [`fusion`] — multi-parameter combination (the paper's §VIII future
//!   work),
//! * [`attacks`] — the §VII-A mimicry attacker and its evaluation,
//! * [`linking`] — MAC-randomization linking accuracy
//!   (precision/recall/merge-rate vs rotation rate) against the
//!   rotation-policy scenarios' exact ledgers,
//! * [`robustness`] — accuracy-vs-fault-rate sweeps over degraded
//!   captures (seeded loss/reorder/corruption via the scenarios crate's
//!   `FaultInjector`), beyond the paper's clean-monitor assumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::pedantic)]
// Pedantic lints this crate opts out of, mirroring wifiprint-core:
#![allow(
    // Table counts and window indices stay far below 2^52; casts into
    // f64 for ratios and percentages are deliberate.
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    // Exact float compares pin sentinel values in tests and plots.
    clippy::float_cmp,
    // Getter-heavy report types: #[must_use] on every accessor is noise.
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    // Public items are re-exported from the crate root, so
    // module-qualified names repeat the module name.
    clippy::module_name_repetitions,
    // The table/plot formatters interleave many push_str/format calls;
    // collapsing them into single format! invocations hurts readability.
    clippy::format_push_string
)]

pub mod attacks;
pub mod baseline;
pub mod fusion;
pub mod linking;
mod pipeline;
pub mod plot;
pub mod robustness;
pub mod tables;

pub use pipeline::{
    evaluate_frames, evaluate_frames_supervised, PipelineConfig, StreamingEvaluator,
    TraceEvaluation,
};
